"""Setuptools shim.

Metadata lives in ``pyproject.toml``; this file exists so the package
can be installed editable on environments without the ``wheel``
package (offline/legacy ``pip install -e .`` falls back to
``setup.py develop``, which needs this shim).
"""

from setuptools import setup

setup()
