"""Random-variate helpers for workload generation.

The synthetic workload of §5.1 needs: uniform file-set weights
(``X ~ U[1,10]``), heavy-tailed Pareto inter-arrival times, and
per-request service demands. The trace-shaped workload adds Zipf
file-set popularity. All draws are vectorized NumPy against explicit
``Generator`` streams so every workload is reproducible from a seed.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pareto_gaps",
    "arrival_times_from_gaps",
    "zipf_weights",
    "lognormal_work",
]


def pareto_gaps(rng: np.random.Generator, n: int, alpha: float) -> np.ndarray:
    """``n`` Pareto-distributed gaps with shape ``alpha`` and scale 1.

    Inverse-CDF sampling: ``xm * (1 - U)^(-1/alpha)`` with ``xm = 1``.
    For ``1 < alpha < 2`` the distribution is heavy-tailed with finite
    mean but infinite variance — the regime the paper's "governed by a
    Pareto distribution that is heavy-tailed" implies. Gaps are later
    rescaled to a target span, so the scale parameter is immaterial.
    """
    if n < 1:
        raise ValueError(f"need n >= 1 gaps, got {n}")
    if alpha <= 1.0:
        raise ValueError(f"alpha must be > 1 for a finite mean, got {alpha}")
    u = rng.random(n)
    return (1.0 - u) ** (-1.0 / alpha)


def arrival_times_from_gaps(
    gaps: np.ndarray, duration: float, span_fraction: float = 0.99
) -> np.ndarray:
    """Turn raw gaps into arrival times spanning ``[g0, duration * span_fraction]``.

    The cumulative sum of gaps is linearly rescaled so the last arrival
    lands at ``duration * span_fraction``. Rescaling preserves the
    *relative* burst structure (ratios of gaps), which is what makes the
    workload bursty; only the absolute rate is pinned to produce the
    requested request count in the requested duration.
    """
    if not 0 < span_fraction <= 1:
        raise ValueError(f"span_fraction must be in (0, 1], got {span_fraction}")
    cum = np.cumsum(gaps)
    return cum * (duration * span_fraction / cum[-1])


def zipf_weights(n: int, s: float = 1.0) -> np.ndarray:
    """Normalized Zipf popularity weights ``w_i ∝ 1 / i^s`` for ranks 1..n.

    Used by the trace-shaped workload: real file-system traces
    (DFSTrace included) concentrate activity on a few hot subtrees.
    """
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    if s < 0:
        raise ValueError(f"Zipf exponent must be >= 0, got {s}")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    w = ranks**-s
    return w / w.sum()


def lognormal_work(
    rng: np.random.Generator, n: int, mean: float, sigma: float = 0.25
) -> np.ndarray:
    """``n`` per-request service demands, lognormal with the given *mean*.

    ``sigma`` is the shape in log space; ``mu`` is solved so that
    ``E[X] = mean`` exactly (``mu = ln(mean) - sigma^2 / 2``). A small
    sigma (default 0.25) models metadata operations: short and fairly
    uniform, with mild variability.
    """
    if mean <= 0:
        raise ValueError(f"mean work must be > 0, got {mean}")
    if sigma < 0:
        raise ValueError(f"sigma must be >= 0, got {sigma}")
    if sigma == 0:
        return np.full(n, mean, dtype=np.float64)
    mu = np.log(mean) - 0.5 * sigma * sigma
    return rng.lognormal(mean=mu, sigma=sigma, size=n)
