"""Trace-file persistence.

A minimal text format so that (a) generated workloads can be archived
alongside experiment results, and (b) *real* traces — converted to this
format — can be dropped in for the trace-driven figures, which is how
the original evaluation consumed DFSTrace.

Format: UTF-8 text, ``#``-prefixed header lines carrying metadata,
then one request per line: ``arrival<TAB>fileset<TAB>work``.

::

    # repro-trace v1
    # name: synthetic(seed=0)
    # duration: 12000.0
    12.5034	/fs/0003	2.7311
    ...
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Dict, List, TextIO, Union

from ..cluster.fileset import FileSet, FileSetCatalog
from ..cluster.request import MetadataRequest
from .synthetic import Workload

__all__ = ["save_trace", "load_trace", "TRACE_MAGIC"]

TRACE_MAGIC = "# repro-trace v1"


def save_trace(workload: Workload, path: Union[str, Path, TextIO]) -> None:
    """Write ``workload`` to ``path`` in the repro-trace format."""
    if hasattr(path, "write"):
        _write(workload, path)  # type: ignore[arg-type]
    else:
        with open(path, "w", encoding="utf-8") as fh:
            _write(workload, fh)


def _write(workload: Workload, fh: TextIO) -> None:
    fh.write(f"{TRACE_MAGIC}\n")
    fh.write(f"# name: {workload.name}\n")
    fh.write(f"# duration: {workload.duration!r}\n")
    for req in workload.requests:
        fh.write(f"{req.arrival!r}\t{req.fileset}\t{req.work!r}\n")


def load_trace(path: Union[str, Path, TextIO]) -> Workload:
    """Read a repro-trace file back into a :class:`Workload`.

    The file-set catalog is reconstructed from the requests themselves
    (total work and request count per file set), which is exactly the
    information a placement policy is entitled to derive from a trace.
    """
    if hasattr(path, "read"):
        return _read(path)  # type: ignore[arg-type]
    with open(path, "r", encoding="utf-8") as fh:
        return _read(fh)


def _read(fh: TextIO) -> Workload:
    first = fh.readline().rstrip("\n")
    if first != TRACE_MAGIC:
        raise ValueError(
            f"not a repro-trace file (expected {TRACE_MAGIC!r}, got {first!r})"
        )
    name = "unnamed-trace"
    duration: float | None = None
    requests: List[MetadataRequest] = []
    totals: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for lineno, line in enumerate(fh, start=2):
        line = line.rstrip("\n")
        if not line:
            continue
        if line.startswith("#"):
            body = line[1:].strip()
            if body.startswith("name:"):
                name = body[len("name:"):].strip()
            elif body.startswith("duration:"):
                duration = float(body[len("duration:"):].strip())
            continue
        parts = line.split("\t")
        if len(parts) != 3:
            raise ValueError(f"line {lineno}: expected 3 tab-separated fields")
        arrival, fileset, work = float(parts[0]), parts[1], float(parts[2])
        if arrival < 0 or work <= 0:
            raise ValueError(f"line {lineno}: invalid arrival/work {arrival}/{work}")
        requests.append(MetadataRequest(fileset=fileset, arrival=arrival, work=work))
        totals[fileset] = totals.get(fileset, 0.0) + work
        counts[fileset] = counts.get(fileset, 0) + 1
    if not requests:
        raise ValueError("trace contains no requests")
    if duration is None:
        duration = max(r.arrival for r in requests) * 1.001
    catalog = FileSetCatalog(
        [FileSet(n, totals[n], counts[n]) for n in sorted(totals)]
    )
    return Workload(name=name, catalog=catalog, requests=requests, duration=duration)
