"""Workload generation and trace I/O.

* :func:`generate_synthetic` — the paper's §5.1 synthetic workload
  (50 file sets, Pareto arrivals, ``X*c`` sizing)
* :func:`generate_trace_shaped` — the DFSTrace-shaped substitute
  (21 file sets, 112,590 requests, one hour; see DESIGN.md for the
  substitution rationale)
* :class:`Workload` — immutable request schedule + catalog + oracle
* :mod:`repro.workloads.calibrate` — the "scaling factor c" made explicit
* :func:`save_trace` / :func:`load_trace` — archival trace format
"""

from .calibrate import (
    offered_utilization,
    request_work_for_utilization,
    scaling_factor_c,
    weakest_server_overloaded,
)
from .distributions import (
    arrival_times_from_gaps,
    lognormal_work,
    pareto_gaps,
    zipf_weights,
)
from .io import load_trace, save_trace
from .scale import ArrayCatalog, ArrayWorkload, ScaleConfig, generate_scale
from .shifting import ShiftConfig, generate_shifting
from .synthetic import SyntheticConfig, Workload, generate_synthetic
from .trace import TraceConfig, generate_trace_shaped

__all__ = [
    "Workload",
    "SyntheticConfig",
    "generate_synthetic",
    "ShiftConfig",
    "generate_shifting",
    "TraceConfig",
    "generate_trace_shaped",
    "ArrayCatalog",
    "ArrayWorkload",
    "ScaleConfig",
    "generate_scale",
    "save_trace",
    "load_trace",
    "pareto_gaps",
    "arrival_times_from_gaps",
    "zipf_weights",
    "lognormal_work",
    "request_work_for_utilization",
    "offered_utilization",
    "scaling_factor_c",
    "weakest_server_overloaded",
]
