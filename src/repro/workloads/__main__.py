"""Workload utility CLI: ``python -m repro.workloads``.

Generate, inspect, and archive workloads without writing code::

    python -m repro.workloads generate --kind synthetic --seed 1 -o run1.trc
    python -m repro.workloads generate --kind trace --scale 0.25 -o t.trc
    python -m repro.workloads inspect run1.trc
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

import numpy as np

from .calibrate import offered_utilization
from .io import load_trace, save_trace
from .synthetic import SyntheticConfig, generate_synthetic
from .trace import TraceConfig, generate_trace_shaped


def _generate(args) -> int:
    if args.kind == "synthetic":
        cfg = SyntheticConfig()
        if args.scale != 1.0:
            cfg = replace(
                cfg,
                duration=cfg.duration * args.scale,
                target_requests=max(cfg.n_filesets, int(cfg.target_requests * args.scale)),
            )
        workload = generate_synthetic(cfg, seed=args.seed)
        capacity = cfg.total_capacity
    else:
        cfg = TraceConfig()
        if args.scale != 1.0:
            cfg = replace(
                cfg,
                duration=cfg.duration * args.scale,
                target_requests=max(cfg.n_filesets, int(cfg.target_requests * args.scale)),
            )
        workload = generate_trace_shaped(cfg, seed=args.seed)
        capacity = cfg.total_capacity
    save_trace(workload, args.output)
    print(
        f"wrote {args.output}: {len(workload)} requests, "
        f"{len(workload.catalog)} file sets, {workload.duration:.0f}s, "
        f"offered utilization {offered_utilization(workload, capacity):.2f} "
        f"of capacity {capacity:.0f}"
    )
    return 0


def _inspect(args) -> int:
    workload = load_trace(args.trace)
    arrivals = np.array([r.arrival for r in workload.requests])
    works = np.array([r.work for r in workload.requests])
    print(f"name:      {workload.name}")
    print(f"requests:  {len(workload)}")
    print(f"file sets: {len(workload.catalog)}")
    print(f"duration:  {workload.duration:.1f}s "
          f"(first arrival {arrivals.min():.2f}, last {arrivals.max():.2f})")
    print(f"work/req:  mean {works.mean():.3f}, p95 {np.percentile(works, 95):.3f}")
    print(f"total work: {workload.total_work:.0f} units")
    print("\nhottest file sets (by total work):")
    hot = sorted(workload.catalog, key=lambda fs: -fs.total_work)[:10]
    for fs in hot:
        share = workload.catalog.work_share(fs.name)
        print(f"  {fs.name:<24} {fs.n_requests:>8} reqs  {share:6.1%} of work")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.workloads")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate and archive a workload")
    gen.add_argument("--kind", choices=("synthetic", "trace"), default="synthetic")
    gen.add_argument("--seed", type=int, default=1)
    gen.add_argument("--scale", type=float, default=1.0)
    gen.add_argument("-o", "--output", required=True)
    gen.set_defaults(func=_generate)

    insp = sub.add_parser("inspect", help="summarize an archived trace")
    insp.add_argument("trace")
    insp.set_defaults(func=_inspect)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
