"""Planet-scale array-backed workloads.

The paper's generator (:mod:`repro.workloads.synthetic`) materializes a
Python :class:`~repro.cluster.request.MetadataRequest` per request —
right for 66k requests, hopeless for 20 million. This module generates
the request schedule *as columns* (arrival, work, file-set index) and
keeps it that way: :class:`ArrayWorkload` duck-types the
:class:`~repro.workloads.synthetic.Workload` surface the vectorized
client path consumes (``_arrivals`` / ``_works`` / ``_fs_idx`` /
``duration`` / ``catalog``), and :class:`ArrayCatalog` duck-types
:class:`~repro.cluster.fileset.FileSetCatalog` with lazy per-name
:class:`~repro.cluster.fileset.FileSet` construction.

Documented deviations from the §5.1 recipe, both deliberate at scale:

* File-set weights are Pareto (heavy-tailed), not ``U[1,10]`` — at a
  million file sets the interesting regime is skewed popularity, and
  the uniform draw concentrates to its mean.
* Arrivals are uniform over the run rather than per-file-set Pareto
  gap trains: burst microstructure is dropped, offered *rates* are
  preserved. The per-interval load each policy must balance is the
  same; generating 1M independent gap trains is what's intractable.

Both containers are immutable, so ``fork()`` returns ``self`` — which
is also what makes them zero-copy under the fork-based experiment
fan-out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List

import numpy as np

from ..cluster.fileset import FileSet
from ..sim.rng import StreamRegistry
from .calibrate import request_work_for_utilization
from .distributions import lognormal_work

__all__ = ["ArrayCatalog", "ArrayWorkload", "ScaleConfig", "generate_scale"]


class ArrayCatalog:
    """A file-set inventory held as arrays, materialized per name on demand."""

    def __init__(
        self, names: List[str], total_work: np.ndarray, n_requests: np.ndarray
    ) -> None:
        if not names:
            raise ValueError("catalog needs at least one file set")
        self._names = list(names)
        self._total_work = total_work
        self._n_requests = n_requests
        self._total = float(total_work.sum())
        self._index: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: str) -> bool:
        self._ensure_index()
        return name in self._index

    def __iter__(self) -> Iterator[FileSet]:
        for i, name in enumerate(self._names):
            yield FileSet(
                name=name,
                total_work=float(self._total_work[i]),
                n_requests=int(self._n_requests[i]),
            )

    def _ensure_index(self) -> None:
        if not self._index:
            self._index = {name: i for i, name in enumerate(self._names)}

    @property
    def names(self) -> List[str]:
        """All file-set names (generation order). The live list — at a
        million entries a defensive copy per access is the bug."""
        return self._names

    def get(self, name: str) -> FileSet:
        self._ensure_index()
        i = self._index[name]
        return FileSet(
            name=name,
            total_work=float(self._total_work[i]),
            n_requests=int(self._n_requests[i]),
        )

    @property
    def total_work(self) -> float:
        return self._total

    @property
    def total_requests(self) -> int:
        return int(self._n_requests.sum())

    def work_share(self, name: str) -> float:
        return self.get(name).total_work / self._total

    def weights(self) -> Dict[str, float]:
        return dict(zip(self._names, self._total_work.tolist()))


class ArrayWorkload:
    """An immutable columnar request schedule.

    Only the vectorized client path can drive it — there are no request
    objects to replay. Accessing :attr:`requests` says so loudly.
    """

    def __init__(
        self,
        name: str,
        catalog: ArrayCatalog,
        arrivals: np.ndarray,
        works: np.ndarray,
        fs_idx: np.ndarray,
        duration: float,
    ) -> None:
        if duration <= 0:
            raise ValueError(f"duration must be > 0, got {duration}")
        self.name = name
        self.catalog = catalog
        self.duration = float(duration)
        self._arrivals = arrivals
        self._works = works
        self._fs_idx = fs_idx
        self._fs_names = catalog.names

    @property
    def requests(self):
        raise TypeError(
            "ArrayWorkload holds no per-request objects; drive it with "
            "VectorizedClientPath (the scalar driver needs "
            "generate_synthetic)"
        )

    def fork(self) -> "ArrayWorkload":
        """Immutable, so a 'pristine copy' is the object itself."""
        return self

    def __len__(self) -> int:
        return int(self._arrivals.shape[0])

    @property
    def total_work(self) -> float:
        return float(self._works.sum())

    @property
    def request_count(self) -> int:
        return len(self)

    def work_between(self, t0: float, t1: float) -> Dict[str, float]:
        """Per-file-set work offered in ``[t0, t1)``."""
        lo = int(np.searchsorted(self._arrivals, t0, side="left"))
        hi = int(np.searchsorted(self._arrivals, t1, side="left"))
        sums = np.bincount(
            self._fs_idx[lo:hi],
            weights=self._works[lo:hi],
            minlength=len(self._fs_names),
        )
        return dict(zip(self._fs_names, sums.tolist()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return (
            f"<ArrayWorkload {self.name!r} requests={len(self)} "
            f"filesets={len(self.catalog)} duration={self.duration}s>"
        )


@dataclass(frozen=True)
class ScaleConfig:
    """Parameters of the planet-scale workload generator.

    ``utilization`` and ``total_capacity`` calibrate mean request work
    exactly as the paper-scale generator does; ``weight_alpha`` shapes
    the Pareto popularity tail (smaller = heavier).
    """

    n_filesets: int = 1_000_000
    target_requests: int = 20_000_000
    duration: float = 1_200.0
    weight_alpha: float = 1.2
    work_sigma: float = 0.25
    utilization: float = 0.6
    total_capacity: float = 5_000.0

    def __post_init__(self) -> None:
        if self.n_filesets < 1:
            raise ValueError("need at least one file set")
        if self.target_requests < 1:
            raise ValueError("need at least one request")
        if self.weight_alpha <= 0:
            raise ValueError(f"weight_alpha must be > 0, got {self.weight_alpha}")
        if not 0 < self.utilization:
            raise ValueError(f"utilization must be > 0, got {self.utilization}")


def generate_scale(config: ScaleConfig = ScaleConfig(), seed: int = 0) -> ArrayWorkload:
    """Generate a planet-scale workload, fully vectorized.

    Deterministic in ``(config, seed)`` via the repo's seed-stream
    registry. Request count equals ``target_requests`` exactly (the
    multinomial split over file sets replaces per-file-set rounding).
    """
    registry = StreamRegistry(seed)
    m = config.n_filesets
    n = config.target_requests
    # Heavy-tailed file-set popularity.
    weights = 1.0 + registry.stream("scale/weights").pareto(config.weight_alpha, m)
    prob = weights / weights.sum()
    cum = np.cumsum(prob)
    cum[-1] = 1.0
    fs_idx = np.searchsorted(
        cum, registry.stream("scale/filesets").uniform(0.0, 1.0, n), side="right"
    ).astype(np.int64)
    np.minimum(fs_idx, m - 1, out=fs_idx)
    arrivals = np.sort(registry.stream("scale/arrivals").uniform(0.0, config.duration, n))
    mean_work = request_work_for_utilization(
        n, config.duration, config.total_capacity, config.utilization
    )
    works = lognormal_work(
        registry.stream("scale/work"), n, mean_work, config.work_sigma
    )
    # fs_idx is arrival-ordered only by coincidence of the draws; the
    # catalog totals are order-free bincounts.
    total_work = np.bincount(fs_idx, weights=works, minlength=m)
    n_requests = np.bincount(fs_idx, minlength=m)
    names = [f"/fs/{i:07d}" for i in range(m)]
    catalog = ArrayCatalog(names, total_work, n_requests)
    return ArrayWorkload(
        name=f"scale(m={m}, n={n}, seed={seed})",
        catalog=catalog,
        arrivals=arrivals,
        works=works,
        fs_idx=fs_idx,
        duration=config.duration,
    )
