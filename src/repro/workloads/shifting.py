"""Non-stationary workloads: hot spots that move mid-run.

"Clusters must adapt to changing workloads and hot spots." (§3)

The §5 evaluation uses stationary demand (each file set's rate is fixed
for the whole run), which exercises adaptation to *server*
heterogeneity only. :func:`generate_shifting` produces the missing
stimulus: per-file-set popularity is re-drawn at a shift point, so a
file set that was cold becomes hot (and vice versa) halfway through.
A static placement — even a capacity-aware one — keeps the newly hot
file set wherever history put it; an adaptive system must notice and
re-home it. The hot-spot ablation bench measures exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..cluster.fileset import FileSet, FileSetCatalog
from ..cluster.request import MetadataRequest
from ..sim.rng import StreamRegistry
from .calibrate import request_work_for_utilization
from .distributions import arrival_times_from_gaps, lognormal_work, pareto_gaps
from .synthetic import SyntheticConfig, Workload

__all__ = ["ShiftConfig", "generate_shifting"]


@dataclass(frozen=True)
class ShiftConfig:
    """Parameters of the shifting workload.

    Attributes
    ----------
    base:
        The stationary configuration each phase is generated from.
    shift_at_fraction:
        Where in the run the popularity re-draw happens (0..1).
    hot_boost:
        Phase-2 multiplier applied to a few chosen file sets' weights —
        the "hot spot". The boosted sets are drawn from the *coldest*
        phase-1 sets so the shift is maximally disruptive to static
        placements.
    n_hot:
        Number of file sets boosted in phase 2.
    """

    base: SyntheticConfig = SyntheticConfig()
    shift_at_fraction: float = 0.5
    hot_boost: float = 8.0
    n_hot: int = 3

    def __post_init__(self) -> None:
        if not 0.0 < self.shift_at_fraction < 1.0:
            raise ValueError(
                f"shift_at_fraction must be in (0,1): {self.shift_at_fraction}"
            )
        if self.hot_boost < 1.0:
            raise ValueError(f"hot_boost must be >= 1: {self.hot_boost}")
        if self.n_hot < 1:
            raise ValueError(f"n_hot must be >= 1: {self.n_hot}")


def _phase_requests(
    names: List[str],
    weights: np.ndarray,
    n_requests: int,
    t0: float,
    duration: float,
    mean_work: float,
    cfg: SyntheticConfig,
    registry: StreamRegistry,
    tag: str,
) -> Tuple[List[MetadataRequest], Dict[str, float], Dict[str, int]]:
    """Generate one stationary phase offset to start at ``t0``."""
    n_j = np.maximum(1, np.rint(n_requests * weights / weights.sum()).astype(int))
    arrival_streams = registry.spawn(f"shift/{tag}/arrivals", len(names))
    work_streams = registry.spawn(f"shift/{tag}/work", len(names))
    span_rng = registry.stream(f"shift/{tag}/span")
    requests: List[MetadataRequest] = []
    totals: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for j, name in enumerate(names):
        n = int(n_j[j])
        gaps = pareto_gaps(arrival_streams[j], n, cfg.pareto_alpha)
        span = float(span_rng.uniform(0.95, 0.999))
        arrivals = arrival_times_from_gaps(gaps, duration, span) + t0
        works = lognormal_work(work_streams[j], n, mean_work, cfg.work_sigma)
        for t, w in zip(arrivals, works):
            requests.append(MetadataRequest(fileset=name, arrival=float(t), work=float(w)))
        totals[name] = float(works.sum())
        counts[name] = n
    return requests, totals, counts


def generate_shifting(
    config: ShiftConfig = ShiftConfig(), seed: int = 0
) -> Tuple[Workload, List[str]]:
    """Generate the two-phase workload.

    Returns ``(workload, hot_sets)`` where ``hot_sets`` are the file
    sets boosted in phase 2 (so experiments can track their journey).
    Total offered load stays at the base calibration in both phases —
    only its *distribution over file sets* shifts.
    """
    cfg = config.base
    registry = StreamRegistry(seed)
    names = [f"/fs/{j:04d}" for j in range(cfg.n_filesets)]
    x = registry.stream("shift/x").uniform(cfg.x_low, cfg.x_high, size=cfg.n_filesets)

    t_shift = cfg.duration * config.shift_at_fraction
    n1 = int(cfg.target_requests * config.shift_at_fraction)
    n2 = cfg.target_requests - n1
    mean_work = request_work_for_utilization(
        cfg.target_requests, cfg.duration, cfg.total_capacity, cfg.utilization
    )

    # Phase 1: the plain X weights.
    req1, tot1, cnt1 = _phase_requests(
        names, x, n1, 0.0, t_shift, mean_work, cfg, registry, "p1"
    )
    # Phase 2: boost the coldest phase-1 sets into hot spots.
    coldest = list(np.argsort(x)[: config.n_hot])
    weights2 = x.copy()
    weights2[coldest] *= config.hot_boost
    req2, tot2, cnt2 = _phase_requests(
        names, weights2, n2, t_shift, cfg.duration - t_shift, mean_work, cfg,
        registry, "p2",
    )

    filesets = [
        FileSet(
            name=name,
            total_work=tot1.get(name, 0.0) + tot2.get(name, 0.0),
            n_requests=cnt1.get(name, 0) + cnt2.get(name, 0),
        )
        for name in names
    ]
    workload = Workload(
        name=f"shifting(seed={seed})",
        catalog=FileSetCatalog(filesets),
        requests=req1 + req2,
        duration=cfg.duration,
    )
    hot_sets = [names[i] for i in coldest]
    return workload, hot_sets
