"""The paper's synthetic workload (§5.1) and the :class:`Workload` container.

"The synthetic workload consists of 66,401 requests against 50 file
sets in a period of two hundred minutes. The request inter-arrival
times in each file set are governed by a Pareto distribution that is
heavy-tailed." (§5.2.1) "The total amount of workload in each file set
is defined as Xc where X is randomly chosen from interval [1,10] and c
is a scaling factor tuned to avoid overload of the whole system." (§5.1)

Generation recipe (documented for auditability):

1. Draw ``X_j ~ U[1, 10]`` per file set; allocate the request budget
   proportionally (``N_j ∝ X_j``), so a file set's workload share is
   its ``X`` share.
2. Calibrate the mean per-request work so total offered load is a
   chosen fraction of total cluster capacity
   (:func:`repro.workloads.calibrate.request_work_for_utilization`).
3. Per file set, draw ``N_j`` Pareto(α) gaps and rescale them to span
   the experiment duration — burst structure preserved, rate pinned.
4. Draw per-request work lognormally around the calibrated mean.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..cluster.fileset import FileSet, FileSetCatalog
from ..cluster.request import MetadataRequest
from ..sim.rng import StreamRegistry
from .calibrate import request_work_for_utilization
from .distributions import arrival_times_from_gaps, lognormal_work, pareto_gaps

__all__ = ["Workload", "SyntheticConfig", "generate_synthetic"]


class Workload:
    """An immutable request schedule plus its file-set catalog.

    Provides the oracle queries prescient policies need
    (:meth:`work_between`) via pre-sorted NumPy arrays — O(log n) per
    window rather than a scan.
    """

    def __init__(
        self,
        name: str,
        catalog: FileSetCatalog,
        requests: List[MetadataRequest],
        duration: float,
    ) -> None:
        if duration <= 0:
            raise ValueError(f"duration must be > 0, got {duration}")
        self.name = name
        self.catalog = catalog
        self.requests = sorted(requests, key=lambda r: r.arrival)
        self.duration = float(duration)
        # Columnar views for vectorized oracle queries.
        self._fs_names = catalog.names
        fs_index = {n: i for i, n in enumerate(self._fs_names)}
        self._arrivals = np.array([r.arrival for r in self.requests], dtype=np.float64)
        self._works = np.array([r.work for r in self.requests], dtype=np.float64)
        self._fs_idx = np.array(
            [fs_index[r.fileset] for r in self.requests], dtype=np.int64
        )

    # ------------------------------------------------------------------ #
    def fork(self) -> "Workload":
        """A pristine copy of this workload for one simulation run.

        Requests carry per-run mutable state (``server``,
        ``service_start``, ``completion``), so a schedule can only be
        replayed through fresh request objects. ``fork`` rebuilds
        exactly those, while sharing everything immutable — the
        catalog and the columnar oracle arrays — with the parent.
        ``self.requests`` is already arrival-sorted, so the clone skips
        the sort and array construction of ``__init__`` entirely.
        """
        clone = object.__new__(Workload)
        clone.name = self.name
        clone.catalog = self.catalog
        clone.requests = [
            MetadataRequest(fileset=r.fileset, arrival=r.arrival, work=r.work)
            for r in self.requests
        ]
        clone.duration = self.duration
        clone._fs_names = self._fs_names
        clone._arrivals = self._arrivals
        clone._works = self._works
        clone._fs_idx = self._fs_idx
        return clone

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def total_work(self) -> float:
        """Total offered work units across all requests."""
        return float(self._works.sum())

    @property
    def request_count(self) -> int:
        """Number of requests in the schedule."""
        return len(self.requests)

    def work_between(self, t0: float, t1: float) -> Dict[str, float]:
        """Per-file-set work offered in ``[t0, t1)`` — the oracle query."""
        lo = int(np.searchsorted(self._arrivals, t0, side="left"))
        hi = int(np.searchsorted(self._arrivals, t1, side="left"))
        sums = np.bincount(
            self._fs_idx[lo:hi],
            weights=self._works[lo:hi],
            minlength=len(self._fs_names),
        )
        return dict(zip(self._fs_names, sums.tolist()))

    def work_matrix(self, interval: float) -> np.ndarray:
        """``(n_intervals, n_filesets)`` matrix of offered work per interval."""
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        n_int = int(np.ceil(self.duration / interval))
        idx = np.minimum((self._arrivals / interval).astype(np.int64), n_int - 1)
        flat = idx * len(self._fs_names) + self._fs_idx
        sums = np.bincount(
            flat, weights=self._works, minlength=n_int * len(self._fs_names)
        )
        return sums.reshape(n_int, len(self._fs_names))

    def rate_per_fileset(self) -> Dict[str, float]:
        """Long-run offered work rate (units/second) per file set."""
        return {
            name: fs.total_work / self.duration for name, fs in
            ((n, self.catalog.get(n)) for n in self._fs_names)
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return (
            f"<Workload {self.name!r} requests={len(self.requests)} "
            f"filesets={len(self.catalog)} duration={self.duration}s>"
        )


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of the §5.1 synthetic workload (paper defaults).

    ``utilization`` is the calibration target for the paper's ``c``:
    total offered work as a fraction of total cluster capacity.
    """

    n_filesets: int = 50
    duration: float = 12_000.0  # 200 minutes
    target_requests: int = 66_401
    x_low: float = 1.0
    x_high: float = 10.0
    pareto_alpha: float = 1.5
    work_sigma: float = 0.25
    utilization: float = 0.6
    total_capacity: float = 25.0  # powers {1,3,5,7,9}

    def __post_init__(self) -> None:
        if self.n_filesets < 1:
            raise ValueError("need at least one file set")
        if self.target_requests < self.n_filesets:
            raise ValueError("need at least one request per file set")
        if not 0 < self.x_low <= self.x_high:
            raise ValueError(f"bad X interval [{self.x_low}, {self.x_high}]")


def generate_synthetic(
    config: SyntheticConfig = SyntheticConfig(),
    seed: int = 0,
) -> Workload:
    """Generate the synthetic workload of §5.1.

    Deterministic in ``(config, seed)``. The realized request count is
    within rounding of ``config.target_requests`` (per-file-set budgets
    are rounded, matching how a real generator lands near its target).
    """
    registry = StreamRegistry(seed)
    rng_x = registry.stream("synthetic/x")
    # 1. file-set weights X ~ U[1,10]
    x = rng_x.uniform(config.x_low, config.x_high, size=config.n_filesets)
    # 2. request budget proportional to X (>= 1 each)
    n_j = np.maximum(1, np.rint(config.target_requests * x / x.sum()).astype(int))
    total_requests = int(n_j.sum())
    mean_work = request_work_for_utilization(
        total_requests, config.duration, config.total_capacity, config.utilization
    )
    arrival_streams = registry.spawn("synthetic/arrivals", config.n_filesets)
    work_streams = registry.spawn("synthetic/work", config.n_filesets)
    span_rng = registry.stream("synthetic/span")

    requests: List[MetadataRequest] = []
    filesets: List[FileSet] = []
    for j in range(config.n_filesets):
        name = f"/fs/{j:04d}"
        n = int(n_j[j])
        gaps = pareto_gaps(arrival_streams[j], n, config.pareto_alpha)
        span = float(span_rng.uniform(0.95, 0.999))
        arrivals = arrival_times_from_gaps(gaps, config.duration, span)
        works = lognormal_work(work_streams[j], n, mean_work, config.work_sigma)
        for t, w in zip(arrivals, works):
            requests.append(MetadataRequest(fileset=name, arrival=float(t), work=float(w)))
        filesets.append(
            FileSet(name=name, total_work=float(works.sum()), n_requests=n)
        )
    catalog = FileSetCatalog(filesets)
    return Workload(
        name=f"synthetic(seed={seed})",
        catalog=catalog,
        requests=requests,
        duration=config.duration,
    )
