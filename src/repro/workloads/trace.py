"""Trace-shaped workload: the DFSTrace substitute.

The paper sanity-checks its synthetic results against "a one-hour
DFSTrace workload that contains 21 file sets and 112,590 requests"
(§5.1, Figure 4). DFSTrace (the CMU Coda traces) is not redistributable
here, so — per the substitution policy in DESIGN.md — we generate a
workload matching its published aggregate shape:

* 21 file sets, 112,590 requests, 3600 seconds;
* activity concentrated on a few hot subtrees (Zipf popularity — file
  system traces are strongly skewed by volume);
* bursty arrivals (Pareto gaps with a heavier tail than the synthetic
  workload, α = 1.3, reflecting the open/stat storms of real clients).

The paper uses the trace only to show "the same scaling and tuning
properties on real workloads" as the synthetic runs; a generator that
matches the skew/burstiness envelope exercises exactly the same code
paths. Real traces can be substituted through
:mod:`repro.workloads.io`'s trace-file reader.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..cluster.fileset import FileSet, FileSetCatalog
from ..cluster.request import MetadataRequest
from ..sim.rng import StreamRegistry
from .calibrate import request_work_for_utilization
from .distributions import (
    arrival_times_from_gaps,
    lognormal_work,
    pareto_gaps,
    zipf_weights,
)
from .synthetic import Workload

__all__ = ["TraceConfig", "generate_trace_shaped"]


@dataclass(frozen=True)
class TraceConfig:
    """Parameters of the DFSTrace-shaped workload (published aggregates)."""

    n_filesets: int = 21
    duration: float = 3_600.0  # one hour
    target_requests: int = 112_590
    #: Zipf exponent of file-set popularity. 0.8 keeps a clear hot-set
    #: skew while the hottest subtree (~15% of load) remains servable
    #: by more than one machine of the paper's cluster — with s = 1.0
    #: the top subtree alone (>25% of load) exceeds every server but
    #: the two largest, a harsher regime than DFSTrace represents.
    zipf_s: float = 0.8
    pareto_alpha: float = 1.3
    work_sigma: float = 0.35
    utilization: float = 0.55
    total_capacity: float = 25.0

    def __post_init__(self) -> None:
        if self.n_filesets < 1:
            raise ValueError("need at least one file set")
        if self.target_requests < self.n_filesets:
            raise ValueError("need at least one request per file set")


def generate_trace_shaped(
    config: TraceConfig = TraceConfig(),
    seed: int = 0,
) -> Workload:
    """Generate the DFSTrace-shaped workload.

    Deterministic in ``(config, seed)``. File-set request budgets follow
    Zipf popularity with a small uniform perturbation (real traces are
    Zipf-ish, not exactly Zipf), then the same Pareto-gap/lognormal-work
    machinery as the synthetic generator.
    """
    registry = StreamRegistry(seed)
    perturb = registry.stream("trace/perturb")
    weights = zipf_weights(config.n_filesets, config.zipf_s)
    weights = weights * perturb.uniform(0.8, 1.2, size=config.n_filesets)
    weights = weights / weights.sum()
    n_j = np.maximum(
        1, np.rint(config.target_requests * weights).astype(int)
    )
    total_requests = int(n_j.sum())
    mean_work = request_work_for_utilization(
        total_requests, config.duration, config.total_capacity, config.utilization
    )
    arrival_streams = registry.spawn("trace/arrivals", config.n_filesets)
    work_streams = registry.spawn("trace/work", config.n_filesets)
    span_rng = registry.stream("trace/span")

    requests: List[MetadataRequest] = []
    filesets: List[FileSet] = []
    for j in range(config.n_filesets):
        name = f"/vol/{j:03d}"
        n = int(n_j[j])
        gaps = pareto_gaps(arrival_streams[j], n, config.pareto_alpha)
        span = float(span_rng.uniform(0.95, 0.999))
        arrivals = arrival_times_from_gaps(gaps, config.duration, span)
        works = lognormal_work(work_streams[j], n, mean_work, config.work_sigma)
        for t, w in zip(arrivals, works):
            requests.append(
                MetadataRequest(fileset=name, arrival=float(t), work=float(w))
            )
        filesets.append(FileSet(name=name, total_work=float(works.sum()), n_requests=n))
    catalog = FileSetCatalog(filesets)
    return Workload(
        name=f"trace-shaped(seed={seed})",
        catalog=catalog,
        requests=requests,
        duration=config.duration,
    )
