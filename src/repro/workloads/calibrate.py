"""Workload calibration: choosing the paper's scaling factor ``c``.

"The total amount of workload in each file set is defined as Xc where X
is randomly chosen from interval [1,10] and c is a scaling factor tuned
to avoid overload of the whole system." (§5.1)

We make the tuning explicit: given the cluster's total capacity and a
target system utilization, compute the per-request service demand (and
equivalently ``c``) that offers exactly that load. "Avoid overload of
the whole system" means total offered work must stay below total
capacity — individual servers can still overload under a bad placement
(that is the point of Figure 5's simple-randomization panel), but a
well-balanced placement must be stable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .synthetic import Workload

__all__ = [
    "request_work_for_utilization",
    "offered_utilization",
    "scaling_factor_c",
    "weakest_server_overloaded",
]


def request_work_for_utilization(
    n_requests: int, duration: float, total_capacity: float, utilization: float
) -> float:
    """Mean per-request work that offers ``utilization`` of total capacity.

    ``n_requests`` requests over ``duration`` seconds against an
    aggregate service rate of ``total_capacity`` work units per second:
    mean work ``w`` satisfies ``n * w / (duration * capacity) = ρ``.
    """
    if n_requests < 1:
        raise ValueError(f"n_requests must be >= 1, got {n_requests}")
    if duration <= 0 or total_capacity <= 0:
        raise ValueError("duration and total_capacity must be > 0")
    if not 0 < utilization < 1:
        raise ValueError(f"utilization must be in (0, 1), got {utilization}")
    return utilization * total_capacity * duration / n_requests


def offered_utilization(workload: "Workload", total_capacity: float) -> float:
    """Offered load of a generated workload as a fraction of capacity."""
    if total_capacity <= 0:
        raise ValueError("total_capacity must be > 0")
    return workload.total_work / (workload.duration * total_capacity)


def scaling_factor_c(total_work: float, sum_x: float) -> float:
    """The paper's ``c`` given realized total work and the ``X`` draws.

    Per-file-set work is ``X_j * c`` with ``sum_j X_j * c = total work``,
    so ``c = total_work / sum(X)``. Reported in EXPERIMENTS.md so the
    calibration is auditable.
    """
    if sum_x <= 0:
        raise ValueError("sum of X draws must be > 0")
    return total_work / sum_x


def weakest_server_overloaded(
    workload: "Workload", weakest_power: float, uniform_share: float
) -> bool:
    """Would a uniform placement overload the weakest server?

    ``uniform_share`` is the expected fraction of work landing on the
    weakest server under uniform hashing (``1/n`` for ``n`` servers).
    Figure 5's simple-randomization panel requires this to be ``True``
    for the paper's configuration — the check is used by tests to
    confirm the calibrated workload actually exercises the phenomenon.
    """
    offered = workload.total_work * uniform_share / workload.duration
    return offered > weakest_power
