"""Cross-system comparison tables and plain-text rendering.

The benchmark harness prints the same rows/series the paper reports;
these helpers build those tables from :class:`ClusterResult` objects
and render them as aligned ASCII (no plotting dependencies — results
are numbers first).
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence

from ..engine.record import ClusterResult
from .consistency import consistency_report
from .latency import aggregate_latency, per_server_mean

__all__ = ["comparison_rows", "ascii_table", "format_float"]


def format_float(x: float, digits: int = 3) -> str:
    """Fixed-point format with ``nan``/``None`` rendered as ``-``."""
    if x is None or (isinstance(x, float) and math.isnan(x)):
        return "-"
    return f"{x:.{digits}f}"


def comparison_rows(results: Sequence[ClusterResult]) -> List[Dict[str, object]]:
    """One summary row per system (the Figure 6 + §5.4 quantities)."""
    rows: List[Dict[str, object]] = []
    for res in results:
        agg = aggregate_latency(res)
        cons = consistency_report(res)
        row: Dict[str, object] = {
            "system": res.policy_name,
            "mean_latency": agg.mean,
            "std_latency": agg.std,
            "completed": res.completed,
            "unfinished": res.unfinished,
            "moves": res.total_moves,
            "moved_work_%": res.total_moved_work_share * 100.0,
            "state_entries": res.shared_state_entries,
            "consistency_cov": cons.cov,
            "jain": cons.jain,
        }
        for sid, (mean, count) in sorted(
            per_server_mean(res).items(), key=lambda kv: repr(kv[0])
        ):
            row[f"s{sid}_mean"] = mean
            row[f"s{sid}_req"] = count
        rows.append(row)
    return rows


def ascii_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    digits: int = 3,
) -> str:
    """Render dict-rows as an aligned ASCII table.

    Column order follows ``columns`` when given, else the key order of
    the first row. Floats are fixed-point; everything else ``str()``.
    """
    if not rows:
        return "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    rendered: List[List[str]] = [[str(c) for c in cols]]
    for row in rows:
        cells = []
        for c in cols:
            v = row.get(c)
            if isinstance(v, float):
                cells.append(format_float(v, digits))
            elif v is None:
                cells.append("-")
            else:
                cells.append(str(v))
        rendered.append(cells)
    widths = [max(len(r[i]) for r in rendered) for i in range(len(cols))]
    lines = []
    for i, cells in enumerate(rendered):
        lines.append("  ".join(c.rjust(w) for c, w in zip(cells, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
