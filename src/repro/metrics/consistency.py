"""Performance-consistency metrics (§5.2.2).

"Servers exhibit consistent average latency values in [the] ANU
randomization system, except server 0, the weakest server. ...
application workloads will observe consistent latency over any
non-idle server in the cluster once the system reaches balance."

Consistency is quantified two ways:

* **coefficient of variation** of per-server mean latency across the
  servers that matter (those serving at least ``min_share`` of
  requests — the paper explicitly discounts server 0 because it served
  0.37% of requests);
* **Jain's fairness index** over the same values (1.0 = perfectly
  consistent).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..engine.record import ClusterResult

__all__ = ["ConsistencyReport", "consistency_report", "jain_index", "coefficient_of_variation"]


def coefficient_of_variation(values: np.ndarray) -> float:
    """std/mean of ``values`` (population std); ``nan`` if degenerate."""
    if values.size < 2:
        return math.nan
    mean = values.mean()
    if mean == 0:
        return math.nan
    return float(values.std() / mean)


def jain_index(values: np.ndarray) -> float:
    """Jain's fairness index: ``(Σx)² / (n·Σx²)`` in (0, 1]."""
    if values.size == 0:
        return math.nan
    denom = values.size * float((values**2).sum())
    if denom == 0:
        return math.nan
    return float(values.sum()) ** 2 / denom


@dataclass(frozen=True)
class ConsistencyReport:
    """Consistency of one run's per-server latency.

    ``included`` are the servers counted (request share ≥ threshold);
    ``excluded`` the discounted ones with their request shares — the
    paper's server-0 caveat made explicit and auditable.
    """

    policy: str
    included: Dict[object, float]
    excluded: Dict[object, float]
    cov: float
    jain: float


def consistency_report(result: ClusterResult, min_share: float = 0.01) -> ConsistencyReport:
    """Consistency over servers serving at least ``min_share`` of requests."""
    if not 0 <= min_share < 1:
        raise ValueError(f"min_share must be in [0, 1), got {min_share}")
    included: Dict[object, float] = {}
    excluded: Dict[object, float] = {}
    for sid, tally in result.server_tally.items():
        share = result.request_share(sid)
        if share >= min_share and tally.count > 0:
            included[sid] = tally.mean
        else:
            excluded[sid] = share if not math.isnan(share) else 0.0
    values = np.array(list(included.values()), dtype=np.float64)
    return ConsistencyReport(
        policy=result.policy_name,
        included=included,
        excluded=excluded,
        cov=coefficient_of_variation(values),
        jain=jain_index(values),
    )
