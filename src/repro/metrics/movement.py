"""Load-movement metrics (Figure 7).

"Figure 7 illustrates both the number of file sets moved by ANU
randomization over the course of synthetic workload simulation and the
percentage of total workload that has been moved during the same
experiment." (§5.3)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..engine.record import ClusterResult, MovementRecord

__all__ = ["MovementSeries", "movement_series", "front_loadedness"]


@dataclass(frozen=True)
class MovementSeries:
    """Per-round movement plus cumulative views.

    Attributes
    ----------
    rounds:
        Tuning-round indices.
    moves:
        File sets moved in each round (Figure 7 left axis).
    cumulative_moves:
        Running total of file sets moved.
    cumulative_work_share:
        Running percentage of total workload moved (right axis), in
        [0, ∞) — a file set moved twice counts twice, as in the paper's
        cumulative accounting.
    """

    rounds: np.ndarray
    moves: np.ndarray
    cumulative_moves: np.ndarray
    cumulative_work_share: np.ndarray

    @property
    def total_moves(self) -> int:
        """Total file-set moves over the experiment."""
        return int(self.cumulative_moves[-1]) if self.cumulative_moves.size else 0


def movement_series(result: ClusterResult, kinds: Tuple[str, ...] = ("tune",)) -> MovementSeries:
    """Extract the Figure 7 series from a run.

    ``kinds`` filters reconfiguration types; the default counts only
    tuning rounds (the paper's Figure 7 scenario has no churn).
    """
    records: List[MovementRecord] = [m for m in result.movement if m.kind in kinds]
    rounds = np.array([m.round_index for m in records], dtype=np.int64)
    moves = np.array([m.moves for m in records], dtype=np.int64)
    shares = np.array([m.moved_work_share for m in records], dtype=np.float64)
    return MovementSeries(
        rounds=rounds,
        moves=moves,
        cumulative_moves=np.cumsum(moves),
        cumulative_work_share=np.cumsum(shares) * 100.0,
    )


def front_loadedness(series: MovementSeries, head_fraction: float = 0.2) -> float:
    """Share of all moves occurring in the first ``head_fraction`` rounds.

    The paper's claim — "During the first several rounds of tuning, ANU
    randomization actively moves load ... [then] preserves load
    locality" — shows up as front-loadedness well above
    ``head_fraction`` (what a uniform spread would give).
    """
    if not 0 < head_fraction <= 1:
        raise ValueError(f"head_fraction must be in (0, 1], got {head_fraction}")
    total = series.moves.sum()
    if total == 0:
        return 0.0
    head = int(np.ceil(len(series.moves) * head_fraction))
    return float(series.moves[:head].sum() / total)
