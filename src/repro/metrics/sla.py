"""Service-level views of cluster results.

"as cluster and grid systems extend to support Service Level
Agreements [7, 8], it is essential that application performance is
consistent over different servers in a heterogeneous cluster" (§5.2.2).

An SLA here is a latency target with a required attainment fraction
(e.g. "95% of requests within 5 s"). The module evaluates a run
globally, per server, and over time — the per-server view is the
paper's consistency argument restated operationally: a cluster is
consistent when *every busy server* attains the SLA, not just the
average.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..engine.record import ClusterResult

__all__ = ["SLA", "SLAReport", "evaluate_sla"]


@dataclass(frozen=True)
class SLA:
    """A latency service-level agreement.

    Attributes
    ----------
    latency_target:
        Response-time threshold in seconds.
    attainment:
        Required fraction of requests at or under the threshold.
    """

    latency_target: float
    attainment: float = 0.95

    def __post_init__(self) -> None:
        if self.latency_target <= 0:
            raise ValueError(f"latency_target must be > 0: {self.latency_target}")
        if not 0 < self.attainment <= 1:
            raise ValueError(f"attainment must be in (0, 1]: {self.attainment}")

    def met_by(self, fraction_within: float) -> bool:
        """Does an observed within-target fraction satisfy the SLA?"""
        return fraction_within >= self.attainment


@dataclass(frozen=True)
class SLAReport:
    """SLA evaluation of one run."""

    policy: str
    sla: SLA
    #: Fraction of all completed requests within target.
    global_attainment: float
    #: Whether the run as a whole met the SLA.
    global_met: bool
    #: Per-server attainment over that server's completed requests.
    per_server: Dict[object, float]
    #: Busy servers (share >= min_share) failing the SLA — the
    #: inconsistency the paper warns about.
    violating_servers: List[object]

    @property
    def consistent(self) -> bool:
        """SLA met on *every* busy server (the §5.2.2 criterion)."""
        return self.global_met and not self.violating_servers


def evaluate_sla(
    result: ClusterResult, sla: SLA, min_share: float = 0.01
) -> SLAReport:
    """Evaluate ``sla`` against a cluster run.

    Unfinished requests count as violations at the global level (a
    request that never completed certainly missed its target); servers
    below ``min_share`` of requests are exempt from the per-server
    consistency check, mirroring the paper's treatment of the
    near-idle weakest server.
    """
    lat = result.all_latencies
    within = int((lat <= sla.latency_target).sum()) if lat.size else 0
    denominator = max(result.submitted, 1)
    global_attainment = within / denominator

    per_server: Dict[object, float] = {}
    violating: List[object] = []
    for sid, tally in result.server_tally.items():
        if tally.count == 0:
            per_server[sid] = math.nan
            continue
        samples = tally.samples
        frac = float((samples <= sla.latency_target).mean())
        per_server[sid] = frac
        if result.request_share(sid) >= min_share and not sla.met_by(frac):
            violating.append(sid)

    return SLAReport(
        policy=result.policy_name,
        sla=sla,
        global_attainment=global_attainment,
        global_met=sla.met_by(global_attainment),
        per_server=per_server,
        violating_servers=sorted(violating, key=repr),
    )
