"""Robustness metrics for chaos runs.

A chaos run answers three questions the steady-state figures cannot:

* **How long was capacity gone?** Unavailability windows — fault
  instant to layout re-admission — summed over all failures and
  normalized by total server-time.
* **How fast were faults noticed?** Observed detection latency of every
  declared failure, compared against the heartbeat monitor's analytic
  bound ``period × (misses + 1)``.
* **Did consistency come back?** The paper's headline metric is the
  coefficient of variation of per-server latency; after the last fault
  heals, the per-interval CV must return to its pre-fault band. The
  time that takes is the *consistency recovery time*.

Everything here consumes a :class:`~repro.faults.chaos.ChaosResult`
and produces the plain-data :class:`RobustnessReport` that
``BENCH_robustness.json`` serializes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..faults.chaos import ChaosResult
from .consistency import coefficient_of_variation

__all__ = [
    "RobustnessReport",
    "robustness_report",
    "consistency_cv_series",
    "consistency_recovery_time",
]


def consistency_cv_series(result: ChaosResult) -> Tuple[np.ndarray, np.ndarray]:
    """Per-interval CV of per-server mean latency over the run.

    Groups the per-server latency series by report timestamp (failed
    servers skip reports, so the server set varies per interval) and
    computes the CV across the servers that reported a positive mean.
    Returns ``(times, cvs)``; intervals with fewer than two active
    servers yield ``nan``.
    """
    buckets: Dict[float, List[float]] = {}
    for series in result.base.server_latency.values():
        for t, v in zip(series.times(), series.values()):
            buckets.setdefault(float(t), []).append(float(v))
    times = np.array(sorted(buckets), dtype=np.float64)
    cvs = np.array(
        [
            coefficient_of_variation(
                np.array([v for v in buckets[t] if v > 0], dtype=np.float64)
            )
            for t in times
        ],
        dtype=np.float64,
    )
    return times, cvs


def consistency_recovery_time(
    result: ChaosResult, tolerance: float = 1.5
) -> Optional[float]:
    """Seconds from the last heal until consistency is back in band.

    The pre-fault band is the median per-interval CV before the first
    fault fires; recovery is the first interval after the *last* fault
    window closes whose CV is at most ``tolerance ×`` that baseline.
    Returns ``0.0`` if consistency never left the band, ``None`` if it
    never returned (or the run has no usable intervals), and ``nan``-free
    otherwise.
    """
    if tolerance <= 0:
        raise ValueError(f"tolerance must be > 0, got {tolerance}")
    times, cvs = consistency_cv_series(result)
    valid = ~np.isnan(cvs)
    if not valid.any():
        return None
    faults = [t for t, _, _ in result.applied]
    if not faults:
        return 0.0
    first_fault = min(faults)
    horizon = result.base.duration
    last_heal = max(
        (rec.unavailable_until(horizon) for rec in result.failures),
        default=max(faults),
    )
    last_heal = max(last_heal, max(faults))
    before = valid & (times < first_fault)
    baseline = float(np.median(cvs[before])) if before.any() else float(np.nanmedian(cvs))
    if math.isnan(baseline) or baseline <= 0:
        return None
    band = tolerance * baseline
    after = valid & (times >= last_heal)
    if not after.any():
        return None
    for t, cv in zip(times[after], cvs[after]):
        if cv <= band:
            return float(max(0.0, t - last_heal))
    return None


@dataclass(frozen=True)
class RobustnessReport:
    """Plain-data robustness summary of one chaos run."""

    seed: int
    fault_rate: Optional[float]
    faults_injected: int
    faults_skipped: int
    #: Server-seconds of lost capacity and its share of total server-time.
    server_downtime: float
    unavailability: float
    #: Observed failure-detection latencies vs the analytic bound.
    detection_latencies: Tuple[float, ...]
    detection_latency_bound: float
    #: Client-side hardening ledger.
    requests_injected: int
    requests_completed: int
    requests_failed: int
    requests_in_flight: int
    retries_per_request: float
    redirects: int
    timeouts: int
    #: Continuous-audit outcome.
    invariant_checks: int
    invariant_violations: int
    #: Consistency recovery after the last fault (None = not recovered).
    consistency_recovery_s: Optional[float]
    #: Whole-run aggregate latency (for cross-rate comparison).
    mean_latency: float
    #: Classified in-flight remainder at the horizon (defaults keep
    #: older pickled/row constructors valid): queued on a live server,
    #: awaiting backoff/re-location, or held in the dispatch latch.
    requests_in_flight_queued: int = 0
    requests_in_flight_backoff: int = 0
    requests_in_flight_dispatch: int = 0
    #: In-flight requests the classification cannot account for — zero
    #: by the conservation invariant.
    requests_lost: int = 0

    # ------------------------------------------------------------------ #
    @property
    def max_detection_latency(self) -> float:
        """Slowest observed declaration (0 if no fault was detected)."""
        return max(self.detection_latencies, default=0.0)

    @property
    def detection_within_bound(self) -> bool:
        """Every declaration beat the analytic bound."""
        return self.max_detection_latency <= self.detection_latency_bound + 1e-9

    def to_dict(self) -> Dict:
        """JSON-ready representation (``BENCH_robustness.json`` rows)."""
        return {
            "seed": self.seed,
            "fault_rate": self.fault_rate,
            "faults_injected": self.faults_injected,
            "faults_skipped": self.faults_skipped,
            "server_downtime_s": round(self.server_downtime, 3),
            "unavailability": round(self.unavailability, 6),
            "detection_latencies_s": [round(x, 3) for x in self.detection_latencies],
            "detection_latency_bound_s": self.detection_latency_bound,
            "detection_within_bound": self.detection_within_bound,
            "requests_injected": self.requests_injected,
            "requests_completed": self.requests_completed,
            "requests_failed": self.requests_failed,
            "requests_in_flight": self.requests_in_flight,
            "requests_in_flight_queued": self.requests_in_flight_queued,
            "requests_in_flight_backoff": self.requests_in_flight_backoff,
            "requests_in_flight_dispatch": self.requests_in_flight_dispatch,
            "requests_lost": self.requests_lost,
            "retries_per_request": round(self.retries_per_request, 6),
            "redirects": self.redirects,
            "timeouts": self.timeouts,
            "invariant_checks": self.invariant_checks,
            "invariant_violations": self.invariant_violations,
            "consistency_recovery_s": (
                round(self.consistency_recovery_s, 3)
                if self.consistency_recovery_s is not None
                else None
            ),
            "mean_latency_s": round(self.mean_latency, 6),
        }


def robustness_report(
    result: ChaosResult, fault_rate: Optional[float] = None
) -> RobustnessReport:
    """Distill a chaos run into its robustness observables."""
    mean = result.base.aggregate_mean_latency
    return RobustnessReport(
        seed=result.seed,
        fault_rate=fault_rate,
        faults_injected=result.faults_injected,
        faults_skipped=result.faults_skipped,
        server_downtime=result.server_downtime,
        unavailability=result.unavailability,
        detection_latencies=tuple(result.detection_latencies),
        detection_latency_bound=result.detection_latency_bound,
        requests_injected=result.requests_injected,
        requests_completed=result.requests_completed,
        requests_failed=result.requests_failed,
        requests_in_flight=result.requests_in_flight,
        retries_per_request=result.retries_per_request,
        redirects=result.redirects,
        timeouts=result.timeouts,
        invariant_checks=result.invariant_checks,
        invariant_violations=result.invariant_violations,
        consistency_recovery_s=consistency_recovery_time(result),
        mean_latency=mean if not math.isnan(mean) else 0.0,
        requests_in_flight_queued=result.requests_in_flight_queued,
        requests_in_flight_backoff=result.requests_in_flight_backoff,
        requests_in_flight_dispatch=result.requests_in_flight_dispatch,
        requests_lost=result.requests_lost,
    )
