"""Latency metrics over cluster results.

Helpers that turn a :class:`~repro.engine.record.ClusterResult` into
the quantities the paper plots: per-server latency-versus-time series
(Figures 4, 5), aggregate mean ± std (Figure 6a), per-server means
(Figure 6b), and steady-state window statistics used to judge
convergence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..engine.record import ClusterResult

__all__ = [
    "AggregateLatency",
    "aggregate_latency",
    "per_server_mean",
    "latency_series",
    "steady_state_means",
    "convergence_round",
]


@dataclass(frozen=True)
class AggregateLatency:
    """Figure 6(a): aggregate mean latency and its standard deviation."""

    policy: str
    mean: float
    std: float
    count: int


def aggregate_latency(result: ClusterResult) -> AggregateLatency:
    """Aggregate latency of all completed requests in a run."""
    return AggregateLatency(
        policy=result.policy_name,
        mean=result.aggregate_mean_latency,
        std=result.aggregate_std_latency,
        count=int(result.all_latencies.size),
    )


def per_server_mean(result: ClusterResult) -> Dict[object, Tuple[float, int]]:
    """Figure 6(b): per-server (mean latency, request count)."""
    return {
        sid: (tally.mean, tally.count)
        for sid, tally in result.server_tally.items()
    }


def latency_series(
    result: ClusterResult, resample_edges: Optional[Sequence[float]] = None
) -> Dict[object, Tuple[np.ndarray, np.ndarray]]:
    """Per-server (times, interval-mean-latency) series (Figures 4/5).

    With ``resample_edges`` the native per-tuning-interval samples are
    re-bucketed (useful to overlay runs with different tuning
    intervals on common axes).
    """
    out: Dict[object, Tuple[np.ndarray, np.ndarray]] = {}
    for sid, ts in result.server_latency.items():
        if resample_edges is None:
            out[sid] = (ts.times(), ts.values())
        else:
            edges = np.asarray(resample_edges, dtype=np.float64)
            out[sid] = (edges[1:], ts.resample(edges))
    return out


def steady_state_means(
    result: ClusterResult, from_time: Optional[float] = None
) -> Dict[object, float]:
    """Per-server mean interval latency after ``from_time``.

    Default window: the second half of the run — well past ANU's
    convergence ("several rounds of load placement tuning", §5.2.1).
    ``nan`` marks servers idle throughout the window.
    """
    t0 = from_time if from_time is not None else result.duration / 2.0
    out: Dict[object, float] = {}
    for sid, ts in result.server_latency.items():
        _, values = ts.window(t0, result.duration + 1.0)
        finite = values[~np.isnan(values)]
        out[sid] = float(finite.mean()) if finite.size else math.nan
    return out


def convergence_round(
    result: ClusterResult,
    tolerance: float = 0.5,
    min_quiet: int = 3,
) -> Optional[int]:
    """First tuning round after which active servers stay consistent.

    A round is "quiet" when every active (non-idle) server's interval
    latency is within ``tolerance`` (relative) of the across-server
    median for that round. Returns the first round index starting a
    streak of ``min_quiet`` quiet rounds, or ``None`` if never reached.
    This operationalizes the paper's "quickly adapts to heterogeneity
    and reaches load balance after several rounds".
    """
    series = [ts.values() for ts in result.server_latency.values()]
    if not series:
        return None
    n_rounds = min(len(v) for v in series)
    quiet_streak = 0
    for r in range(n_rounds):
        vals = np.array([v[r] for v in series])
        active = vals[~np.isnan(vals)]
        if active.size == 0:
            quiet_streak = 0
            continue
        med = float(np.median(active))
        if med <= 0:
            quiet_streak = 0
            continue
        if np.all(np.abs(active / med - 1.0) <= tolerance):
            quiet_streak += 1
            if quiet_streak >= min_quiet:
                return r - min_quiet + 2  # 1-based round index of streak start
        else:
            quiet_streak = 0
    return None
