"""Measurement extraction for the paper's figures.

* :mod:`repro.metrics.latency` — Figures 4/5 series, Figure 6 stats
* :mod:`repro.metrics.movement` — Figure 7 series
* :mod:`repro.metrics.consistency` — §5.2.2 consistency quantification
* :mod:`repro.metrics.robustness` — chaos-run robustness observables
* :mod:`repro.metrics.summary` — cross-system tables + ASCII rendering
"""

from .consistency import (
    ConsistencyReport,
    coefficient_of_variation,
    consistency_report,
    jain_index,
)
from .latency import (
    AggregateLatency,
    aggregate_latency,
    convergence_round,
    latency_series,
    per_server_mean,
    steady_state_means,
)
from .movement import MovementSeries, front_loadedness, movement_series
from .robustness import (
    RobustnessReport,
    consistency_cv_series,
    consistency_recovery_time,
    robustness_report,
)
from .sla import SLA, SLAReport, evaluate_sla
from .summary import ascii_table, comparison_rows, format_float

__all__ = [
    "AggregateLatency",
    "aggregate_latency",
    "per_server_mean",
    "latency_series",
    "steady_state_means",
    "convergence_round",
    "MovementSeries",
    "movement_series",
    "SLA",
    "SLAReport",
    "evaluate_sla",
    "front_loadedness",
    "ConsistencyReport",
    "consistency_report",
    "RobustnessReport",
    "robustness_report",
    "consistency_cv_series",
    "consistency_recovery_time",
    "jain_index",
    "coefficient_of_variation",
    "ascii_table",
    "comparison_rows",
    "format_float",
]
