"""Figure 5: server latency over time, synthetic workload, four systems.

Paper observations this reproduction must match in shape (§5.2.1):

* **simple randomization**: "the weakest server's performance keeps
  degrading during the simulation and there is unused capacity on more
  powerful servers";
* **dynamic prescient** and **virtual processor**: balanced "from the
  very beginning, time 0" (VP may show occasional inversions from its
  coarse workload unit);
* **ANU**: starts uniform-unaware, "quickly adapts to heterogeneity and
  reaches load balance after several rounds of load placement tuning".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ...engine.record import ClusterResult
from ...metrics.latency import convergence_round, latency_series
from ...metrics.summary import ascii_table, format_float
from ..cache import cached_synthetic
from ..config import ExperimentConfig, paper_config
from ..runner import run_comparison

__all__ = ["Fig5Data", "run", "render"]


@dataclass
class Fig5Data:
    """Results of the Figure 5 experiment."""

    config: ExperimentConfig
    results: Dict[str, ClusterResult]

    @property
    def anu_convergence_round(self) -> int | None:
        """Tuning round at which ANU's active servers become consistent."""
        return convergence_round(self.results["anu"])


def run(seed: int = 1, scale: float = 1.0) -> Fig5Data:
    """Execute the Figure 5 experiment at the given scale."""
    config = paper_config(seed=seed, scale=scale)
    workload = cached_synthetic(config.synthetic_config(), seed=seed)
    results = run_comparison(workload, config)
    return Fig5Data(config=config, results=results)


def render(data: Fig5Data, max_rows: int = 20) -> str:
    """Per-system, per-server latency-versus-time tables (downsampled)."""
    blocks: List[str] = [
        "Figure 5 — server latency over time (synthetic workload)",
        f"cluster powers: {data.config.powers}, tuning interval "
        f"{data.config.tuning_interval:.0f}s, scale {data.config.scale}",
        "",
    ]
    for system, result in data.results.items():
        series = latency_series(result)
        sids = sorted(series, key=repr)
        times = series[sids[0]][0]
        if times.size == 0:
            blocks.append(f"[{system}] (no tuning intervals elapsed)")
            continue
        stride = max(1, int(np.ceil(times.size / max_rows)))
        rows = []
        for i in range(0, times.size, stride):
            row: Dict[str, object] = {"t_min": times[i] / 60.0}
            for sid in sids:
                row[f"s{sid}"] = float(series[sid][1][i])
            rows.append(row)
        blocks.append(f"[{system}] interval mean latency (s) per server:")
        blocks.append(ascii_table(rows, digits=2))
        blocks.append("")
    conv = data.anu_convergence_round
    blocks.append(
        "ANU convergence round: "
        + (str(conv) if conv is not None else "not reached (see EXPERIMENTS.md)")
    )
    return "\n".join(blocks)
