"""Figure 7: load movement during the synthetic workload simulation.

"During the first several rounds of tuning, ANU randomization actively
moves load among servers ... During the whole simulation, which
consists of 100 rounds of tuning, our system totally moves 112 file
sets." (§5.3)

The reproduction reports the per-round file-set moves, the cumulative
percentage of workload moved, and a front-loadedness statistic that
operationalizes "actively moves load [early] ... preserves load
locality [after]".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ...engine.record import ClusterResult
from ...metrics.movement import MovementSeries, front_loadedness, movement_series
from ...metrics.summary import ascii_table
from .fig5 import Fig5Data
from .fig5 import run as run_fig5

__all__ = ["Fig7Data", "run", "render"]


@dataclass
class Fig7Data:
    """Movement results for the ANU run."""

    result: ClusterResult
    series: MovementSeries

    @property
    def total_moves(self) -> int:
        """Total file sets moved (paper: 112 over 100 rounds)."""
        return self.series.total_moves

    @property
    def rounds(self) -> int:
        """Number of tuning rounds observed."""
        return int(self.series.rounds.size)

    @property
    def front_loadedness(self) -> float:
        """Share of moves in the first 20% of rounds."""
        return front_loadedness(self.series)


def run(
    seed: int = 1, scale: float = 1.0, fig5: Optional[Fig5Data] = None
) -> Fig7Data:
    """Execute (or reuse) the synthetic run and extract ANU movement."""
    data = fig5 if fig5 is not None else run_fig5(seed=seed, scale=scale)
    result = data.results["anu"]
    return Fig7Data(result=result, series=movement_series(result))


def render(data: Fig7Data, max_rows: int = 25) -> str:
    """Per-round moves and cumulative workload-moved percentage."""
    s = data.series
    rows: List[Dict[str, object]] = []
    stride = max(1, int(np.ceil(s.rounds.size / max_rows)))
    for i in range(0, s.rounds.size, stride):
        rows.append(
            {
                "round": int(s.rounds[i]),
                "moves": int(s.moves[i]),
                "cum_moves": int(s.cumulative_moves[i]),
                "cum_workload_moved_%": float(s.cumulative_work_share[i]),
            }
        )
    return "\n".join(
        [
            "Figure 7 — load movement during the synthetic workload (ANU):",
            ascii_table(rows, digits=2),
            "",
            f"total file-set moves: {data.total_moves} over {data.rounds} rounds "
            f"(paper: 112 over 100 rounds)",
            f"front-loadedness (moves in first 20% of rounds): "
            f"{data.front_loadedness:.2f}",
        ]
    )
