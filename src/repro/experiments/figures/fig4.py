"""Figure 4: server latency over time, file-system-trace workload.

The paper uses a one-hour DFSTrace workload (21 file sets, 112,590
requests) "for comparison with synthetic workloads to ensure the sanity
of our results" — the trace run must show "the same scaling and tuning
properties" as Figure 5. We drive the identical four-system comparison
with the DFSTrace-shaped workload (see DESIGN.md's substitution note).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ...engine.record import ClusterResult
from ...metrics.latency import convergence_round
from ...workloads.trace import generate_trace_shaped
from ..config import ExperimentConfig, paper_config
from ..runner import run_comparison

__all__ = ["Fig4Data", "run", "render"]


@dataclass
class Fig4Data:
    """Results of the Figure 4 experiment."""

    config: ExperimentConfig
    results: Dict[str, ClusterResult]


def run(seed: int = 1, scale: float = 1.0) -> Fig4Data:
    """Execute the Figure 4 experiment at the given scale."""
    config = paper_config(seed=seed, scale=scale)
    workload = generate_trace_shaped(config.trace_config(), seed=seed)
    results = run_comparison(workload, config)
    return Fig4Data(config=config, results=results)


def render(data: Fig4Data, max_rows: int = 20) -> str:
    """Same rendering as Figure 5, over the trace workload."""
    from .fig5 import Fig5Data
    from .fig5 import render as render5

    text = render5(
        Fig5Data(config=data.config, results=data.results), max_rows=max_rows
    )
    return text.replace(
        "Figure 5 — server latency over time (synthetic workload)",
        "Figure 4 — server latency over time (DFSTrace-shaped workload)",
    )


def sanity_against_synthetic(trace: Fig4Data, synth: "object") -> Dict[str, bool]:
    """The paper's sanity contract: same qualitative properties.

    Checks, for both workloads: (1) simple randomization's weakest
    server is the worst performer by a wide margin, (2) ANU converges,
    (3) prescient beats or matches every other system on aggregate
    latency. Returns check-name → passed.
    """
    checks: Dict[str, bool] = {}
    for tag, data in (("trace", trace), ("synthetic", synth)):
        results = data.results
        simple = results["simple"]
        worst = max(simple.per_server_mean_latency, key=lambda s: simple.per_server_mean_latency[s])
        checks[f"{tag}:simple-weakest-degrades"] = worst == 0
        checks[f"{tag}:anu-converges"] = convergence_round(results["anu"]) is not None
        best = min(results.values(), key=lambda r: r.aggregate_mean_latency)
        checks[f"{tag}:prescient-near-best"] = (
            results["prescient"].aggregate_mean_latency
            <= best.aggregate_mean_latency * 1.25
        )
    return checks
