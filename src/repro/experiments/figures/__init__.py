"""One module per paper figure; each exposes ``run()`` and ``render()``."""

from . import fig4, fig5, fig6, fig7, fig8

#: Registry used by the CLI and the bench harness.
FIGURES = {
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
}

__all__ = ["fig4", "fig5", "fig6", "fig7", "fig8", "FIGURES"]
