"""Figure 6: aggregated metrics comparison.

(a) "the aggregate average latency of all requests in the synthetic
workload and its standard deviation" — prescient best, virtual
processors slightly worse, ANU "fairly close" to prescient.

(b) "the average latency of tasks served by each individual server" —
ANU's servers consistent except server 0, which served ~0.37% of the
requests, "most ... before ANU randomization reached load balance".

The figure reuses a Figure 5 run (same experiment, different views).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ...engine.record import ClusterResult
from ...metrics.consistency import consistency_report
from ...metrics.latency import aggregate_latency, per_server_mean
from ...metrics.summary import ascii_table
from .fig5 import Fig5Data
from .fig5 import run as run_fig5

__all__ = ["Fig6Data", "run", "render"]

#: Systems shown in Figure 6 (simple randomization is omitted by the
#: paper — its unbounded weakest-server backlog makes the aggregate
#: axis unreadable).
FIG6_SYSTEMS = ("anu", "prescient", "virtual")


@dataclass
class Fig6Data:
    """Results of the Figure 6 views."""

    results: Dict[str, ClusterResult]

    def aggregate_rows(self) -> List[Dict[str, object]]:
        """Figure 6(a) rows: system, mean, std."""
        rows = []
        for system in FIG6_SYSTEMS:
            agg = aggregate_latency(self.results[system])
            rows.append(
                {
                    "system": system,
                    "mean_latency": agg.mean,
                    "std_latency": agg.std,
                    "requests": agg.count,
                }
            )
        return rows

    def per_server_rows(self) -> List[Dict[str, object]]:
        """Figure 6(b) rows: per-server mean latency and request share."""
        rows = []
        for system in FIG6_SYSTEMS:
            result = self.results[system]
            for sid, (mean, count) in sorted(
                per_server_mean(result).items(), key=lambda kv: repr(kv[0])
            ):
                rows.append(
                    {
                        "system": system,
                        "server": sid,
                        "mean_latency": mean,
                        "requests": count,
                        "request_share_%": result.request_share(sid) * 100.0,
                    }
                )
        return rows


def run(
    seed: int = 1, scale: float = 1.0, fig5: Optional[Fig5Data] = None
) -> Fig6Data:
    """Execute (or reuse) the synthetic comparison and build the views."""
    data = fig5 if fig5 is not None else run_fig5(seed=seed, scale=scale)
    return Fig6Data(results=data.results)


def render(data: Fig6Data) -> str:
    """Both panels plus the consistency quantification."""
    blocks = [
        "Figure 6(a) — aggregate average latency and standard deviation:",
        ascii_table(data.aggregate_rows()),
        "",
        "Figure 6(b) — per-server average latency:",
        ascii_table(data.per_server_rows(), digits=3),
        "",
        "Consistency (CoV / Jain over servers with >=1% of requests):",
    ]
    cons_rows = []
    for system in FIG6_SYSTEMS:
        rep = consistency_report(data.results[system])
        cons_rows.append(
            {
                "system": system,
                "cov": rep.cov,
                "jain": rep.jain,
                "servers_included": len(rep.included),
                "servers_excluded": len(rep.excluded),
            }
        )
    blocks.append(ascii_table(cons_rows))
    return "\n".join(blocks)
