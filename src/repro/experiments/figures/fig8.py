"""Figure 8: virtual-processor performance versus VP count.

"We vary the number of virtual processors from 5 to 50, because we
simulate 5 servers and 50 file sets. ... With a small number of virtual
processors, the virtual processor system does not effectively balance
the synthetic workload ... The virtual processor system achieves
equivalent performance to ANU randomization when using 30 virtual
processors for the 50 file sets ... When the number of virtual
processors reaches 50, the virtual processor system outperforms ANU
randomization on latency and performs comparably to the dynamic
prescient system." (§5.4)

Each sweep point also reports the scheme's shared-state size — the
trade-off the section is actually about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ...engine.record import ClusterResult
from ...metrics.summary import ascii_table
from ..cache import cached_synthetic
from ..config import ExperimentConfig, paper_config
from ..runner import run_system

__all__ = ["Fig8Data", "run", "render", "DEFAULT_SWEEP"]

#: The paper sweeps 5 → 50 VPs for 5 servers / 50 file sets.
DEFAULT_SWEEP = (5, 10, 15, 20, 25, 30, 35, 40, 45, 50)


@dataclass
class Fig8Data:
    """Sweep results plus the reference systems."""

    config: ExperimentConfig
    sweep: Dict[int, ClusterResult]
    references: Dict[str, ClusterResult]

    def crossover_nv(self) -> Optional[int]:
        """Smallest VP count matching ANU's aggregate latency (paper: ~30)."""
        anu = self.references["anu"].aggregate_mean_latency
        for nv in sorted(self.sweep):
            if self.sweep[nv].aggregate_mean_latency <= anu:
                return nv
        return None


def run(
    seed: int = 1,
    scale: float = 1.0,
    sweep: Sequence[int] = DEFAULT_SWEEP,
    parallel: bool = False,
    max_workers: Optional[int] = None,
) -> Fig8Data:
    """Execute the VP sweep and the ANU/prescient reference runs.

    With ``parallel=True`` the sweep points fan out across a process
    pool (:mod:`repro.experiments.parallel`); results are identical to
    the sequential path — the sweep is one independent run per VP count.
    """
    config = paper_config(seed=seed, scale=scale)
    workload = cached_synthetic(config.synthetic_config(), seed=seed)
    if parallel:
        from ..parallel import run_comparison_parallel, run_vp_sweep

        references = run_comparison_parallel(
            workload, config, systems=("anu", "prescient"), max_workers=max_workers
        )
        sweep_results = run_vp_sweep(workload, config, sweep, max_workers=max_workers)
    else:
        references = {
            system: run_system(system, workload.fork(), config)
            for system in ("anu", "prescient")
        }
        sweep_results = {}
        for nv in sweep:
            sweep_results[nv] = run_system(
                "virtual", workload.fork(), config, n_virtual=nv
            )
    return Fig8Data(config=config, sweep=sweep_results, references=references)


def render(data: Fig8Data) -> str:
    """The sweep table (8a), the close-up comparison (8b) and crossover."""
    rows: List[Dict[str, object]] = []
    for nv in sorted(data.sweep):
        res = data.sweep[nv]
        rows.append(
            {
                "n_virtual": nv,
                "mean_latency": res.aggregate_mean_latency,
                "std_latency": res.aggregate_std_latency,
                "state_entries": res.shared_state_entries,
                "moves": res.total_moves,
            }
        )
    ref_rows: List[Dict[str, object]] = []
    for system, res in data.references.items():
        ref_rows.append(
            {
                "system": system,
                "mean_latency": res.aggregate_mean_latency,
                "std_latency": res.aggregate_std_latency,
                "state_entries": res.shared_state_entries,
            }
        )
    crossover = data.crossover_nv()
    return "\n".join(
        [
            "Figure 8(a) — virtual-processor system vs number of VPs:",
            ascii_table(rows),
            "",
            "Figure 8(b) — references (same workload):",
            ascii_table(ref_rows),
            "",
            "VP/ANU latency crossover at n_virtual = "
            + (str(crossover) if crossover is not None else "not reached")
            + " (paper: ~30 of 50 file sets)",
        ]
    )
