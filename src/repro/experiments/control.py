"""The controller-ablation sweep: which tuning rule holds up under stress?

The paper's multiplicative averaging rule is one point in a family —
``repro.control`` adds PI, pole-placement, brownout, and a demand-
forecasting wrapper behind the same :class:`~repro.control.Controller`
seam. This sweep measures all of them where the choice actually
matters: non-stationary and fault-injected regimes, at both the
paper's scale (5 heterogeneous servers, scalar engine) and planet
scale (1000 servers on the vectorized cohort path).

Scenarios (same arrival/work calibration as the headline benches):

* ``hotspot`` — file-set popularity re-draws mid-run: the coldest sets
  become the hottest (scalar: :func:`generate_shifting`; vector: the
  Pareto weight vector is permuted at half-time), so converged layouts
  are suddenly wrong.
* ``churn``  — servers crash mid-run and later recover (scalar:
  engine-scheduled failure; vector: a scripted
  :class:`~repro.engine.VectorChaosFaultLayer` timeline), forcing
  re-convergence over a changed membership.
* ``flash``  — a flash crowd: offered load surges ~1.5× inside a 15%
  window (cluster utilization 0.6 → 0.9), probing overreaction — a
  twitchy controller sheds half its regions chasing a transient.

Per (controller, scenario, mode) the bench records the paper's
consistency metrics (latency CoV, Jain index), **convergence round**
(first tuning round after which every later round re-assigns less than
5% of the occupied interval mass), and **oscillation** (mean per-round
re-assigned mass over the trailing half of the run) — the region-
length trace is captured from :class:`~repro.engine.MovesApplied`
probes, identically on both engines.

``python -m repro.experiments control`` writes ``BENCH_control.json``
(schema-gated by ``tools/check_bench_schema.py``, including the
semantic gate that at least one feedback controller beats the
multiplicative baseline on convergence or oscillation somewhere);
``--smoke`` runs a seconds-sized subset for CI.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cluster.cache import CacheConfig
from ..cluster.fileset import FileSet, FileSetCatalog
from ..cluster.request import MetadataRequest
from ..control import make_controller
from ..core.hashing import HashFamily
from ..core.interval import HALF
from ..engine import (
    ChaosConfig,
    ClusterConfig,
    MovesApplied,
    SimulationBuilder,
    VectorChaosFaultLayer,
    VectorizedClientPath,
)
from ..faults import FaultEvent, FaultKind, FaultSchedule
from ..metrics.consistency import consistency_report
from ..policies import ANURandomization, VectorANU
from ..sim.rng import StreamRegistry
from ..workloads import ShiftConfig, SyntheticConfig, generate_shifting, generate_synthetic
from ..policies.vector import relocate_mode_from_env
from ..workloads.calibrate import request_work_for_utilization
from ..workloads.distributions import lognormal_work
from ..workloads.scale import ArrayCatalog, ArrayWorkload
from ..workloads.synthetic import Workload
from .fanout import resolve_workers, shared_payload, stream_map
from .scale import format_point_label, scale_powers

__all__ = [
    "SCHEMA_VERSION",
    "CONTROL_CONTROLLERS",
    "CONTROL_SCENARIOS",
    "DEFAULT_POINTS",
    "SMOKE_POINTS",
    "ControlPoint",
    "trace_metrics",
    "run_control_point",
    "run_control_sweep",
    "render_control",
    "write_control_bench",
]

#: Bumped on any change to the BENCH_control.json row/payload shape.
SCHEMA_VERSION = 2

#: The controller family under ablation (registry names).
CONTROL_CONTROLLERS: Tuple[str, ...] = (
    "multiplicative",
    "pi",
    "pole",
    "brownout",
    "forecast",
)

CONTROL_SCENARIOS: Tuple[str, ...] = ("hotspot", "churn", "flash")

#: The reference every feedback controller is compared against.
BASELINE_CONTROLLER = "multiplicative"

#: Convergence tolerance: a round "has converged" when every later
#: round moves no region by more than this relative amount.
CONVERGENCE_TOL = 0.05

#: Flash-crowd shape: surge window as a fraction of the run, and the
#: extra offered load inside it as a fraction of the base rate.
FLASH_WINDOW = (0.40, 0.55)
FLASH_BOOST = 0.5


@dataclass(frozen=True)
class ControlPoint:
    """One engine mode / cluster size / workload size in the sweep."""

    #: ``"paper"`` (scalar engine, request objects) or ``"vector"``
    #: (cohort-drained array path).
    mode: str
    n_servers: int
    n_filesets: int
    n_requests: int
    duration: float = 1_200.0
    tuning_interval: float = 120.0

    def label(self) -> str:
        return f"{self.mode}:{format_point_label(self.n_servers, self.n_filesets)}"


#: The paper's cluster on the scalar engine, and the planet-scale
#: point the acceptance bar measures (≥1000 servers) on the vectorized
#: path.
DEFAULT_POINTS: Tuple[ControlPoint, ...] = (
    ControlPoint(
        mode="paper", n_servers=5, n_filesets=50, n_requests=66_401,
        duration=12_000.0,
    ),
    ControlPoint(
        mode="vector", n_servers=1_000, n_filesets=100_000,
        n_requests=2_000_000,
    ),
)

#: CI-sized: seconds, not minutes, same code paths end to end.
SMOKE_POINTS: Tuple[ControlPoint, ...] = (
    ControlPoint(
        mode="paper", n_servers=5, n_filesets=50, n_requests=4_000,
        duration=1_200.0,
    ),
    ControlPoint(
        mode="vector", n_servers=20, n_filesets=500, n_requests=30_000,
        duration=600.0, tuning_interval=60.0,
    ),
)


# --------------------------------------------------------------------- #
# workload construction
# --------------------------------------------------------------------- #
def _merge_workloads(name: str, parts: Sequence[Workload], duration: float) -> Workload:
    """Union of request schedules with summed per-file-set totals."""
    totals: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    requests: List[MetadataRequest] = []
    for part in parts:
        for fs in part.catalog:
            totals[fs.name] = totals.get(fs.name, 0.0) + fs.total_work
            counts[fs.name] = counts.get(fs.name, 0) + fs.n_requests
        requests.extend(part.requests)
    catalog = FileSetCatalog(
        [FileSet(n, totals[n], counts[n]) for n in sorted(totals)]
    )
    return Workload(name=name, catalog=catalog, requests=requests, duration=duration)


def _scalar_workload(point: ControlPoint, scenario: str, seed: int) -> Workload:
    """The scenario's request schedule for the scalar engine."""
    powers = scale_powers(point.n_servers)
    base_cfg = SyntheticConfig(
        n_filesets=point.n_filesets,
        duration=point.duration,
        target_requests=point.n_requests,
        total_capacity=sum(powers.values()),
    )
    if scenario == "hotspot":
        workload, _hot = generate_shifting(ShiftConfig(base=base_cfg), seed=seed)
        return workload
    if scenario == "flash":
        base = generate_synthetic(base_cfg, seed=seed)
        w0, w1 = FLASH_WINDOW
        window = (w1 - w0) * point.duration
        n_surge = max(point.n_filesets, int(point.n_requests * (w1 - w0) * FLASH_BOOST))
        surge_cfg = SyntheticConfig(
            n_filesets=point.n_filesets,
            duration=window,
            target_requests=n_surge,
            total_capacity=base_cfg.total_capacity,
            # Base runs at 0.6; the surge adds (w1-w0)·boost/(w1-w0) =
            # 0.3 inside the window, peaking utilization at ~0.9.
            utilization=base_cfg.utilization * FLASH_BOOST,
        )
        surge_raw = generate_synthetic(surge_cfg, seed=seed + 7919)
        t0 = w0 * point.duration
        surge = Workload(
            name="surge",
            catalog=surge_raw.catalog,
            requests=[
                MetadataRequest(fileset=r.fileset, arrival=r.arrival + t0, work=r.work)
                for r in surge_raw.requests
            ],
            duration=point.duration,
        )
        return _merge_workloads(
            f"flash(seed={seed})", (base, surge), point.duration
        )
    # churn: the stationary paper workload; the stress is membership.
    return generate_synthetic(base_cfg, seed=seed)


def _draw_filesets(stream, weights: np.ndarray, n: int) -> np.ndarray:
    """Sample ``n`` file-set indices proportional to ``weights``."""
    prob = weights / weights.sum()
    cum = np.cumsum(prob)
    cum[-1] = 1.0
    idx = np.searchsorted(cum, stream.uniform(0.0, 1.0, n), side="right")
    return np.minimum(idx, len(weights) - 1).astype(np.int64)


def _vector_workload(point: ControlPoint, scenario: str, seed: int) -> ArrayWorkload:
    """The scenario's columnar schedule for the vectorized path."""
    registry = StreamRegistry(seed)
    m, n, T = point.n_filesets, point.n_requests, point.duration
    capacity = sum(scale_powers(point.n_servers).values())
    weights = 1.0 + registry.stream(f"control/{scenario}/weights").pareto(1.2, m)
    mean_work = request_work_for_utilization(n, T, capacity, 0.6)
    if scenario == "hotspot":
        # Phase 2 permutes the popularity vector: the mega-hot sets of
        # phase 1 land on different servers' regions, so per-server
        # demand shifts hard at half-time.
        half = n // 2
        perm = registry.stream("control/hotspot/perm").permutation(m)
        fs1 = _draw_filesets(registry.stream("control/hotspot/fs1"), weights, half)
        fs2 = _draw_filesets(
            registry.stream("control/hotspot/fs2"), weights[perm], n - half
        )
        t1 = np.sort(registry.stream("control/hotspot/t1").uniform(0.0, T / 2, half))
        t2 = np.sort(
            registry.stream("control/hotspot/t2").uniform(T / 2, T, n - half)
        )
        arrivals = np.concatenate([t1, t2])
        fs_idx = np.concatenate([fs1, fs2])
    elif scenario == "flash":
        w0, w1 = FLASH_WINDOW
        n_surge = int(n * (w1 - w0) * FLASH_BOOST)
        base_t = registry.stream("control/flash/base_t").uniform(0.0, T, n)
        surge_t = registry.stream("control/flash/surge_t").uniform(
            w0 * T, w1 * T, n_surge
        )
        arrivals = np.concatenate([base_t, surge_t])
        fs_idx = _draw_filesets(
            registry.stream("control/flash/fs"), weights, n + n_surge
        )
        order = np.argsort(arrivals, kind="stable")
        arrivals = arrivals[order]
        fs_idx = fs_idx[order]
    else:  # churn: stationary arrivals; the fault layer is the stress.
        arrivals = np.sort(registry.stream("control/churn/t").uniform(0.0, T, n))
        fs_idx = _draw_filesets(registry.stream("control/churn/fs"), weights, n)
    works = lognormal_work(
        registry.stream(f"control/{scenario}/work"), len(arrivals), mean_work, 0.25
    )
    names = [f"/fs/{i:07d}" for i in range(m)]
    catalog = ArrayCatalog(
        names,
        np.bincount(fs_idx, weights=works, minlength=m),
        np.bincount(fs_idx, minlength=m),
    )
    return ArrayWorkload(
        name=f"control/{scenario}(seed={seed})",
        catalog=catalog,
        arrivals=arrivals,
        works=works,
        fs_idx=fs_idx,
        duration=T,
    )


def _churn_script(point: ControlPoint, chaos: ChaosConfig) -> FaultSchedule:
    """Deterministic crash-and-heal timeline for the vector churn runs.

    5% of the cluster (at least one server) crashes shortly after the
    controllers have converged; every outage outlives the detection
    bound so the compiled detector declares it, and heals before the
    run ends so re-admission is measured too.
    """
    k = max(1, point.n_servers // 20)
    start = 0.30 * point.duration
    outage = max(0.25 * point.duration, 3.0 * chaos.detection_latency_bound + 30.0)
    events = []
    for i in range(k):
        victim = ((i * point.n_servers) // k + point.n_servers // (2 * k)) % point.n_servers
        events.append(
            FaultEvent(start + 7.0 * i, FaultKind.CRASH, target=victim, duration=outage)
        )
    return FaultSchedule(events=tuple(events))


# --------------------------------------------------------------------- #
# trace metrics
# --------------------------------------------------------------------- #
def trace_metrics(
    trace: Sequence[Dict[object, float]], tol: float = CONVERGENCE_TOL
) -> Dict[str, object]:
    """Convergence and oscillation from a region-length trace.

    ``trace[0]`` is the initial layout, ``trace[r]`` the layout after
    tuning round ``r``. The per-round statistic is the total region
    mass moved — ``Σ|cur−prev| / HALF`` over the servers present in
    both snapshots — i.e. the fraction of the occupied half-interval
    the round re-assigned. It is bounded (≤ 2) and proportional to the
    work the round displaces, so it reads directly as reconfiguration
    cost; a churn event shows up as the re-convergence transient it
    causes, not as an artificial discontinuity.
    """
    changes: List[float] = []
    for prev, cur in zip(trace, trace[1:]):
        common = set(prev) & set(cur)
        moved = sum(abs(cur[sid] - prev[sid]) for sid in common)
        changes.append(moved / HALF)
    convergence_round: Optional[int] = None
    for r in range(len(changes)):
        if all(c < tol for c in changes[r:]):
            convergence_round = r + 1
            break
    tail = changes[len(changes) // 2:]
    oscillation = float(sum(tail) / len(tail)) if tail else 0.0
    return {
        "rounds": len(changes),
        "convergence_round": convergence_round,
        "oscillation": round(oscillation, 6),
    }


# --------------------------------------------------------------------- #
# the runs
# --------------------------------------------------------------------- #
def run_control_point(
    point: ControlPoint,
    scenario: str,
    controller_name: str,
    seed: int = 1,
    workload=None,
) -> Dict[str, object]:
    """One (point, scenario, controller) run; returns a bench row."""
    if point.mode not in ("paper", "vector"):
        raise ValueError(f"unknown mode {point.mode!r}")
    if scenario not in CONTROL_SCENARIOS:
        raise ValueError(f"unknown scenario {scenario!r}; know {CONTROL_SCENARIOS}")
    powers = scale_powers(point.n_servers)
    chaos = ChaosConfig(seed=seed)
    setup_start = time.perf_counter()
    if workload is None:
        workload = (
            _scalar_workload(point, scenario, seed)
            if point.mode == "paper"
            else _vector_workload(point, scenario, seed)
        )
    config = ClusterConfig(
        server_powers=powers,
        tuning_interval=point.tuning_interval,
        cache=CacheConfig(flush_work_scale=0.0, cold_factor=1.0, warmup_time=0.0),
        supply_knowledge=False,
    )
    family = HashFamily(seed=0)
    controller = make_controller(controller_name)
    server_ids = list(powers)
    if point.mode == "paper":
        policy = ANURandomization(server_ids, hash_family=family, controller=controller)
    else:
        policy = VectorANU(
            server_ids, hash_family=family, emit_moves=False, controller=controller
        )
    trace: List[Dict[object, float]] = []

    def snap(event: MovesApplied) -> None:
        if event.kind == "tune":
            trace.append(dict(policy.region_lengths))

    builder = (
        SimulationBuilder(workload.fork(), policy, config)
        .probe(MovesApplied, snap)
    )
    run_chaos = False
    if point.mode == "vector":
        builder.client_path(VectorizedClientPath())
        if scenario == "churn":
            builder.faults(
                VectorChaosFaultLayer(schedule=_churn_script(point, chaos), chaos=chaos)
            )
            run_chaos = True
    engine = builder.build()
    if point.mode == "paper" and scenario == "churn":
        victim = max(server_ids[:-1]) if len(server_ids) > 1 else server_ids[0]
        engine.schedule_failure(0.35 * point.duration, victim)
        engine.schedule_recovery(0.65 * point.duration, victim)
    trace.insert(0, dict(policy.region_lengths))
    drive_start = time.perf_counter()
    result = engine.run_chaos() if run_chaos else engine.run()
    drive_seconds = time.perf_counter() - drive_start
    setup_seconds = drive_start - setup_start
    base = result.base if run_chaos else result
    lat = base.all_latencies
    report = consistency_report(base, min_share=0.0)
    metrics = trace_metrics(trace)
    conv = metrics["convergence_round"]
    return {
        "controller": controller_name,
        "scenario": scenario,
        "mode": point.mode,
        "n_servers": point.n_servers,
        "n_filesets": point.n_filesets,
        "n_requests": int(base.submitted),
        "completed": int(base.completed),
        "duration_s": point.duration,
        "tuning_interval_s": point.tuning_interval,
        "rounds": metrics["rounds"],
        "convergence_round": conv,
        "convergence_time_s": (
            conv * point.tuning_interval if conv is not None else None
        ),
        "oscillation": metrics["oscillation"],
        "mean_latency": float(lat.mean()) if lat.size else float("nan"),
        "p99_latency": float(np.percentile(lat, 99)) if lat.size else float("nan"),
        "latency_cov": report.cov,
        "jain_index": report.jain,
        # VectorANU counts sheds itself; the scalar adapter's counter
        # lives on its ANUManager.
        "total_sheds": int(
            getattr(policy, "total_sheds", None)
            or getattr(getattr(policy, "manager", None), "total_sheds", 0)
        ),
        # The relocation ledger exists only on RelocationStats policies
        # (the vector path); paper-mode rows record null, not zero —
        # the scalar adapter is uninstrumented, not relocation-free.
        "relocated": (
            int(policy.relocated_total)
            if hasattr(policy, "relocated_total")
            else None
        ),
        "relocate_fraction": (
            round(float(policy.relocate_fraction), 6)
            if hasattr(policy, "relocate_fraction")
            else None
        ),
        "reshuffle_seconds": (
            round(float(policy.reshuffle_seconds), 4)
            if hasattr(policy, "reshuffle_seconds")
            else None
        ),
        "setup_seconds": round(setup_seconds, 4),
        "drive_seconds": round(drive_seconds, 4),
    }


def _feedback_wins(rows: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    """Where a feedback controller beats the multiplicative baseline.

    A win is strictly faster convergence (fewer rounds, or converging
    at all where the baseline never does) or strictly lower
    oscillation, on the same (scenario, mode) cell.
    """
    wins: List[Dict[str, object]] = []
    cells: Dict[Tuple[str, str], Dict[str, Dict[str, object]]] = {}
    for row in rows:
        cells.setdefault((row["scenario"], row["mode"]), {})[row["controller"]] = row
    for (scenario, mode), by_ctrl in sorted(cells.items()):
        baseline = by_ctrl.get(BASELINE_CONTROLLER)
        if baseline is None:
            continue
        for name, row in sorted(by_ctrl.items()):
            if name == BASELINE_CONTROLLER:
                continue
            conv, base_conv = row["convergence_round"], baseline["convergence_round"]
            if conv is not None and (base_conv is None or conv < base_conv):
                wins.append(
                    {
                        "scenario": scenario,
                        "mode": mode,
                        "controller": name,
                        "metric": "convergence_round",
                        "value": conv,
                        "baseline_value": base_conv,
                    }
                )
            if row["oscillation"] < baseline["oscillation"]:
                wins.append(
                    {
                        "scenario": scenario,
                        "mode": mode,
                        "controller": name,
                        "metric": "oscillation",
                        "value": row["oscillation"],
                        "baseline_value": baseline["oscillation"],
                    }
                )
    return wins


def _control_cell(job: Tuple[int, str, str]) -> Dict[str, object]:
    """One (point, scenario, controller) cell; fork-shared payload."""
    point_idx, scenario, controller_name = job
    points, workloads, seed = shared_payload()
    return run_control_point(
        points[point_idx],
        scenario,
        controller_name,
        seed=seed,
        workload=workloads[(point_idx, scenario)],
    )


def run_control_sweep(
    points: Sequence[ControlPoint] = DEFAULT_POINTS,
    controllers: Sequence[str] = CONTROL_CONTROLLERS,
    scenarios: Sequence[str] = CONTROL_SCENARIOS,
    seed: int = 1,
    workers: Optional[int] = None,
) -> Dict[str, object]:
    """The full sweep, one (point, scenario, controller) cell per job.

    One workload per (point, scenario), generated in the parent and
    shared across controllers so the ablation is apples-to-apples
    (identical arrivals, identical fault script); the cells fan out
    through :func:`stream_map` and merge in submission order, so the
    row list matches the sequential sweep's exactly.
    """
    points = list(points)
    workers = resolve_workers(workers)
    workloads: Dict[Tuple[int, str], object] = {}
    for i, point in enumerate(points):
        for scenario in scenarios:
            workloads[(i, scenario)] = (
                _scalar_workload(point, scenario, seed)
                if point.mode == "paper"
                else _vector_workload(point, scenario, seed)
            )
    jobs = [
        (i, scenario, controller_name)
        for i in range(len(points))
        for scenario in scenarios
        for controller_name in controllers
    ]
    rows = stream_map(
        _control_cell,
        jobs,
        payload=(points, workloads, seed),
        max_workers=workers,
        chunk_size=1,
    )
    return {
        "bench": "control",
        "schema_version": SCHEMA_VERSION,
        "seed": seed,
        "cpu_count": os.cpu_count(),
        "workers": workers,
        "relocate_mode": relocate_mode_from_env(),
        "baseline_controller": BASELINE_CONTROLLER,
        "controllers": list(controllers),
        "scenarios": list(scenarios),
        "feedback_wins": _feedback_wins(rows),
        "rows": rows,
    }


def render_control(payload: Dict[str, object]) -> str:
    """ASCII table of a sweep payload (the CLI's printed output)."""
    lines = [
        f"control sweep: seed={payload['seed']} "
        f"baseline={payload['baseline_controller']} "
        f"workers={payload['workers']} relocate={payload['relocate_mode']}",
        f"{'point':>22} {'scenario':>8} {'ctrl':>14} {'conv':>5} "
        f"{'osc':>8} {'cov':>7} {'jain':>6} {'p99':>8} {'sheds':>8} "
        f"{'drive(s)':>9}",
    ]
    for row in payload["rows"]:
        point = f"{row['mode']}:{format_point_label(row['n_servers'], row['n_filesets'])}"
        conv = row["convergence_round"]
        lines.append(
            f"{point:>22} {row['scenario']:>8} {row['controller']:>14} "
            f"{conv if conv is not None else '—':>5} "
            f"{row['oscillation']:>8.4f} {row['latency_cov']:>7.4f} "
            f"{row['jain_index']:>6.4f} {row['p99_latency']:>8.4f} "
            f"{row['total_sheds']:>8} {row['drive_seconds']:>9.3f}"
        )
    wins = payload["feedback_wins"]
    lines.append(
        f"feedback wins over {payload['baseline_controller']}: {len(wins)}"
    )
    for win in wins:
        base = win["baseline_value"]
        lines.append(
            f"  {win['mode']}/{win['scenario']}: {win['controller']} "
            f"{win['metric']} {win['value']} vs {base if base is not None else '—'}"
        )
    return "\n".join(lines)


def write_control_bench(payload: Dict[str, object], path) -> Path:
    """Serialize a sweep payload canonically (stable across runs)."""
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
