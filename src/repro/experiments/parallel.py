"""Parallel experiment execution with deterministic merge.

The simulations themselves are strictly sequential (a discrete-event
kernel is a serial dependency chain), but the *experiments* are
embarrassingly parallel: a four-system comparison is four independent
runs over copies of one workload, a seed sweep is independent end to
end, and the Figure 8 VP sweep is one run per VP count. This module
fans those units out through :func:`repro.experiments.fanout.stream_map`
— forked workers that inherit the workload copy-on-write instead of
receiving a pickled copy each — and merges the results in a fixed
order, so the output is *byte-identical* to the sequential harness
(asserted by ``tests/experiments/test_determinism.py`` via
:func:`~repro.experiments.cache.result_fingerprint`).

Determinism argument: each unit is a pure function of its inputs
``(system, shared workload, config)``; the kernel introduces no
wall-clock or cross-run state; fork-inherited arrays are the parent's
bytes by definition; and the merge iterates the caller's requested
order, never completion order. Parallelism therefore changes wall-clock
only.

Worker count resolution: explicit argument, else the
``REPRO_PARALLEL_WORKERS`` environment variable, else ``os.cpu_count()``.
With one worker (or one unit) everything runs in-process — the pool is
never spawned, so single-core machines and nested pools degrade
gracefully. Passing an :class:`~repro.experiments.cache.ExperimentCache`
short-circuits units whose results are already on disk.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..engine.record import ClusterResult
from ..workloads.synthetic import Workload, generate_synthetic
from .cache import ExperimentCache, result_fingerprint
from .config import SYSTEMS, ExperimentConfig
from .fanout import default_workers, shared_payload, stream_map
from .runner import run_system

__all__ = [
    "default_workers",
    "run_comparison_parallel",
    "run_seed_sweep",
    "run_vp_sweep",
    "result_fingerprint",
]


# ---------------------------------------------------------------------- #
# worker entry points (module-level: must be picklable by the pool)
# ---------------------------------------------------------------------- #
def _shared_system_job(args: Tuple[str, Optional[int]]) -> ClusterResult:
    # The workload rides the fork, not the job tuple: each worker forks
    # its own pristine request objects from the inherited schedule.
    system, n_virtual = args
    workload, config = shared_payload()
    return run_system(system, workload.fork(), config, n_virtual=n_virtual)


def _seed_job(args: Tuple[str, ExperimentConfig]) -> ClusterResult:
    # Workloads are generated inside the worker from the seed — shipping
    # a seed costs bytes, shipping 66k requests costs megabytes.
    system, config = args
    workload = generate_synthetic(config.synthetic_config(), seed=config.seed)
    return run_system(system, workload, config)


# ---------------------------------------------------------------------- #
# public sweeps
# ---------------------------------------------------------------------- #
def run_comparison_parallel(
    workload: Workload,
    config: ExperimentConfig,
    systems: Iterable[str] = SYSTEMS,
    max_workers: Optional[int] = None,
    cache: Optional[ExperimentCache] = None,
) -> Dict[str, ClusterResult]:
    """Parallel drop-in for :func:`repro.experiments.run_comparison`.

    Returns ``{system: result}`` in the order of ``systems``, with each
    result byte-identical to the sequential runner's. With ``cache``
    given, systems whose results are already stored are not re-run, and
    fresh results are stored for next time.
    """
    systems = tuple(systems)
    results: Dict[str, ClusterResult] = {}
    pending: List[str] = []
    for system in systems:
        hit = None
        if cache is not None:
            hit = cache.get_result(cache.result_key(system, workload, config))
        if hit is not None:
            results[system] = hit
        else:
            pending.append(system)
    out = stream_map(
        _shared_system_job,
        [(system, None) for system in pending],
        payload=(workload, config),
        max_workers=max_workers,
        chunk_size=1,
    )
    for system, result in zip(pending, out):
        results[system] = result
        if cache is not None:
            cache.put_result(cache.result_key(system, workload, config), result)
    return {system: results[system] for system in systems}


def run_seed_sweep(
    system: str,
    seeds: Sequence[int],
    config: Optional[ExperimentConfig] = None,
    max_workers: Optional[int] = None,
) -> Dict[int, ClusterResult]:
    """Run one system over many workload seeds in parallel.

    Returns ``{seed: result}`` in the order of ``seeds``. Each worker
    generates its own workload from the seed, so the fan-out ships only
    configuration.
    """
    base = config if config is not None else ExperimentConfig()
    jobs = [(system, replace(base, seed=int(seed))) for seed in seeds]
    out = stream_map(_seed_job, jobs, max_workers=max_workers, chunk_size=1)
    return {int(seed): result for seed, result in zip(seeds, out)}


def run_vp_sweep(
    workload: Workload,
    config: ExperimentConfig,
    sweep: Sequence[int],
    max_workers: Optional[int] = None,
    cache: Optional[ExperimentCache] = None,
) -> Dict[int, ClusterResult]:
    """The Figure 8 virtual-processor sweep, one run per VP count.

    Returns ``{n_virtual: result}`` in the order of ``sweep``.
    """
    sweep = [int(nv) for nv in sweep]
    results: Dict[int, ClusterResult] = {}
    pending: List[int] = []
    for nv in sweep:
        hit = None
        if cache is not None:
            hit = cache.get_result(cache.result_key("virtual", workload, config, n_virtual=nv))
        if hit is not None:
            results[nv] = hit
        else:
            pending.append(nv)
    out = stream_map(
        _shared_system_job,
        [("virtual", nv) for nv in pending],
        payload=(workload, config),
        max_workers=max_workers,
        chunk_size=1,
    )
    for nv, result in zip(pending, out):
        results[nv] = result
        if cache is not None:
            cache.put_result(cache.result_key("virtual", workload, config, n_virtual=nv), result)
    return {nv: results[nv] for nv in sweep}
