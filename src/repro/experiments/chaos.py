"""The ``chaos`` experiment scenario: robustness under seeded faults.

Sweeps fault rates over the paper's five-server ANU cluster, each run
driven by the full chaos harness (seeded fault injection, heartbeat
detection with hysteresis, hardened client, continuous invariant
audit), and reports the robustness observables into
``BENCH_robustness.json``:

* unavailability (server-seconds of lost capacity / total server-time);
* failure-detection latency against the heartbeat monitor's analytic
  bound ``period × (misses + 1)``;
* retries per request on the hardened client path;
* post-fault recovery time of the paper's consistency metric (the
  per-interval CV of per-server latency returning to its pre-fault
  band).

Every run is a pure function of ``(seed, scale, fault_rate)``: the
fault schedule is drawn from the seed, every stochastic component
(link faults, backoff jitter) derives from it, and each row carries the
run's :func:`~repro.faults.chaos.chaos_fingerprint` — so the bench is
bit-reproducible and the determinism test simply compares two sweeps.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

from ..core.hashing import HashFamily
from ..engine import SimulationBuilder
from ..faults import (
    ChaosConfig,
    ChaosResult,
    FaultSchedule,
    chaos_fingerprint,
    random_schedule,
)
from ..metrics.robustness import RobustnessReport, robustness_report
from ..policies import ANURandomization
from .config import ExperimentConfig, paper_config

__all__ = [
    "DEFAULT_FAULT_RATES",
    "run_chaos",
    "run_chaos_sweep",
    "render_chaos",
    "write_robustness_bench",
]

#: Faults per simulated second: quiet, moderate, and stormy. The quiet
#: rate still lands a few faults at the default 600 s scale.
DEFAULT_FAULT_RATES: Tuple[float, ...] = (0.005, 0.01, 0.02)

#: Default scale of a chaos run (0.05 × the 200-minute paper run = 600 s).
DEFAULT_SCALE = 0.05


def run_chaos(
    seed: int = 1,
    scale: float = DEFAULT_SCALE,
    fault_rate: float = 0.01,
    schedule: Optional[FaultSchedule] = None,
    chaos: Optional[ChaosConfig] = None,
    config: Optional[ExperimentConfig] = None,
) -> ChaosResult:
    """One chaos run over the paper's ANU cluster.

    The fault schedule (unless given explicitly) is drawn from ``seed``
    at ``fault_rate`` faults per simulated second; the harness seed is
    the same ``seed``, so the whole run replays from one integer.
    """
    from .cache import cached_synthetic  # late: cache imports runner

    config = config or paper_config(seed=seed, scale=scale)
    workload = cached_synthetic(config.synthetic_config(), seed=config.seed)
    chaos = chaos or ChaosConfig(seed=seed)
    if schedule is None:
        schedule = random_schedule(
            seed=seed,
            duration=workload.duration,
            server_ids=list(config.powers),
            fault_rate=fault_rate,
            # Outages must outlive the detection bound, or crashes heal
            # before the detector can declare them.
            min_outage=max(30.0, 3.0 * chaos.detection_latency_bound),
        )
    policy = ANURandomization(list(config.powers), hash_family=HashFamily(seed=0))
    return (
        SimulationBuilder(workload, policy, config.cluster_config())
        .chaos(schedule=schedule, chaos=chaos)
        .run()
    )


def run_chaos_sweep(
    seed: int = 1,
    scale: float = DEFAULT_SCALE,
    fault_rates: Sequence[float] = DEFAULT_FAULT_RATES,
) -> Dict:
    """Sweep fault rates; returns the ``BENCH_robustness.json`` payload."""
    if not fault_rates:
        raise ValueError("need at least one fault rate")
    chaos = ChaosConfig(seed=seed)
    rows = []
    for rate in fault_rates:
        result = run_chaos(seed=seed, scale=scale, fault_rate=rate, chaos=chaos)
        report = robustness_report(result, fault_rate=rate)
        row = report.to_dict()
        row["fingerprint"] = chaos_fingerprint(result)
        rows.append(row)
    return {
        "bench": "robustness",
        "seed": seed,
        "scale": scale,
        "detection_latency_bound_s": chaos.detection_latency_bound,
        "heartbeat": {
            "period_s": chaos.heartbeat_period,
            "misses": chaos.heartbeat_misses,
            "recoveries": chaos.heartbeat_recoveries,
        },
        "retry": {
            "request_timeout_s": chaos.retry.request_timeout,
            "max_attempts": chaos.retry.max_attempts,
            "backoff_base_s": chaos.retry.backoff_base,
            "backoff_cap_s": chaos.retry.backoff_cap,
            "jitter": chaos.retry.jitter,
        },
        "rows": rows,
    }


def write_robustness_bench(payload: Dict, path: Path) -> Path:
    """Serialize a sweep payload canonically (stable across runs)."""
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def render_chaos(payload: Dict) -> str:
    """ASCII table of a sweep payload (the CLI's printed output)."""
    lines = [
        f"chaos sweep: seed={payload['seed']} scale={payload['scale']} "
        f"detection bound={payload['detection_latency_bound_s']}s",
        f"{'rate':>8} {'faults':>6} {'unavail':>8} {'det.max':>8} "
        f"{'retries/req':>11} {'failed':>6} {'recov(s)':>8} {'violations':>10}",
    ]
    for row in payload["rows"]:
        det = max(row["detection_latencies_s"], default=0.0)
        recov = row["consistency_recovery_s"]
        lines.append(
            f"{row['fault_rate']:>8} {row['faults_injected']:>6} "
            f"{row['unavailability']:>8.4f} {det:>8.2f} "
            f"{row['retries_per_request']:>11.4f} {row['requests_failed']:>6} "
            f"{recov if recov is not None else '—':>8} "
            f"{row['invariant_violations']:>10}"
        )
    return "\n".join(lines)
