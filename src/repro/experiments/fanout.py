"""Zero-copy experiment fan-out: fork-shared payloads, streamed results.

The old fan-out pickled a full workload per job — for a four-system
comparison that is four multi-megabyte serializations *before any
simulation starts*, which is exactly why the cold-cache parallel path
used to lose to sequential. This module fixes the root cause:

* **Zero-copy payload.** The caller's large shared object (workload +
  config) is published to a module global *before* the pool forks;
  every worker inherits it through the fork's copy-on-write pages and
  reads it back with :func:`shared_payload`. Nothing big crosses a
  pipe — jobs are tuples of a few strings and ints.
* **Pre-warmed pool.** Workers are forked (and the payload snapshot
  taken) by a round of no-op warmup tasks before the first real job is
  dispatched, so job latency never includes process start-up.
* **Chunked, streamed results.** Jobs go out via ``Executor.map`` with
  an explicit chunk size; results come back in *submission* order as
  each completes (the deterministic merge is inherited, not rebuilt).
* **Loud failure.** A worker dying mid-stream surfaces one
  ``RuntimeError`` naming the failure; no partial result list ever
  escapes.

On platforms without the ``fork`` start method the payload is shipped
once per worker through the pool initializer — the old cost model, kept
as a documented fallback, behind the same API.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, List, Optional, Sequence

__all__ = ["default_workers", "shared_payload", "stream_map"]

#: The fork-shared payload (set for the duration of one stream_map call).
_PAYLOAD: Any = None


def shared_payload() -> Any:
    """The payload published by the :func:`stream_map` caller.

    In a forked worker this is the parent's object via copy-on-write;
    in-process (one worker / one job) it is the object itself.
    """
    return _PAYLOAD


def default_workers() -> int:
    """Worker count from ``REPRO_PARALLEL_WORKERS`` or the CPU count.

    The variable must be a positive integer; anything else raises a
    :class:`ValueError` naming the variable and the offending value —
    a silently ignored typo here would quietly serialize (or fail to
    bound) every sweep.
    """
    env = os.environ.get("REPRO_PARALLEL_WORKERS")
    if env is not None and env.strip():
        try:
            workers = int(env)
        except ValueError:
            raise ValueError(
                f"REPRO_PARALLEL_WORKERS must be a positive integer, got {env!r}"
            ) from None
        if workers < 1:
            raise ValueError(
                f"REPRO_PARALLEL_WORKERS must be >= 1, got {workers}"
            )
        return workers
    return os.cpu_count() or 1


def _set_payload(payload: Any) -> None:
    """Pool initializer for the no-fork fallback (payload via pickle)."""
    global _PAYLOAD
    _PAYLOAD = payload


def _warm() -> None:
    """No-op warmup task; running one per worker forces the forks."""


def stream_map(
    fn: Callable[[Any], Any],
    jobs: Sequence[Any],
    payload: Any = None,
    max_workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> List[Any]:
    """Run ``fn(job)`` for every job; results in submission order.

    ``fn`` and the jobs must be picklable (module-level function, small
    tuples); ``payload`` need not be — it travels by fork. With one
    worker or one job everything runs in-process and no pool exists.

    Raises ``RuntimeError`` if a worker process dies; nothing is
    returned in that case (no partial merge).
    """
    global _PAYLOAD
    jobs = list(jobs)
    if not jobs:
        return []
    workers = max_workers if max_workers is not None else default_workers()
    workers = min(max(1, workers), len(jobs))
    _PAYLOAD = payload
    try:
        if workers <= 1 or len(jobs) <= 1:
            return [fn(job) for job in jobs]
        if chunk_size is None:
            chunk_size = max(1, len(jobs) // (workers * 4))
        if "fork" in mp.get_all_start_methods():
            # The payload global is set above, *then* the workers fork:
            # each inherits it copy-on-write. The warmup round both
            # pre-forks the pool and pins the inheritance point before
            # any real job runs.
            pool = ProcessPoolExecutor(
                max_workers=workers, mp_context=mp.get_context("fork")
            )
        else:  # pragma: no cover - non-fork platforms
            pool = ProcessPoolExecutor(
                max_workers=workers,
                initializer=_set_payload,
                initargs=(payload,),
            )
        try:
            with pool:
                for future in [pool.submit(_warm) for _ in range(workers)]:
                    future.result()
                # Executor.map streams results back in submission order
                # as workers finish — deterministic merge for free, and
                # no end-of-run batch join.
                return list(pool.map(fn, jobs, chunksize=chunk_size))
        except BrokenProcessPool as exc:
            raise RuntimeError(
                "fan-out worker crashed mid-stream (pool broken); "
                "no partial results were merged"
            ) from exc
    finally:
        _PAYLOAD = None
