"""Zero-copy experiment fan-out: fork-shared payloads, streamed results.

The old fan-out pickled a full workload per job — for a four-system
comparison that is four multi-megabyte serializations *before any
simulation starts*, which is exactly why the cold-cache parallel path
used to lose to sequential. This module fixes the root cause:

* **Zero-copy payload.** The caller's large shared object (workload +
  config) is published to a module global *before* the pool forks;
  every worker inherits it through the fork's copy-on-write pages and
  reads it back with :func:`shared_payload`. Nothing big crosses a
  pipe — jobs are tuples of a few strings and ints.
* **Pre-warmed pool.** Workers are forked (and the payload snapshot
  taken) by a round of no-op warmup tasks before the first real job is
  dispatched, so job latency never includes process start-up.
* **Chunked, streamed results.** Jobs go out as explicit per-chunk
  futures; results are gathered in *submission* order as each completes
  (the deterministic merge is inherited, not rebuilt).
* **Crash containment.** A worker dying takes the whole pool with it
  (``BrokenProcessPool``); instead of aborting the sweep, the chunk
  being waited on is retried once in a fresh pool, and if that pool
  dies too the chunk runs in-process as a last resort. Only the
  genuinely poisonous case — the job itself raising — stays a loud,
  propagated error; no partial result list ever escapes.

On platforms without the ``fork`` start method the payload is shipped
once per worker through the pool initializer — the old cost model, kept
as a documented fallback, behind the same API.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import sys
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, List, Optional, Sequence

from ..knobs import env_int, register_knob

__all__ = ["default_workers", "resolve_workers", "shared_payload", "stream_map"]

register_knob(
    "REPRO_PARALLEL_WORKERS",
    kind="int",
    default=None,
    help="worker-process count for experiment fan-out (default: CPU count)",
)

#: The fork-shared payload (set for the duration of one stream_map call).
_PAYLOAD: Any = None


def shared_payload() -> Any:
    """The payload published by the :func:`stream_map` caller.

    In a forked worker this is the parent's object via copy-on-write;
    in-process (one worker / one job) it is the object itself.
    """
    return _PAYLOAD


def default_workers() -> int:
    """Worker count from ``REPRO_PARALLEL_WORKERS`` or the CPU count.

    The variable must be a positive integer; anything else raises a
    :class:`ValueError` naming the variable and the offending value —
    a silently ignored typo here would quietly serialize (or fail to
    bound) every sweep.
    """
    workers = env_int("REPRO_PARALLEL_WORKERS", default=None, minimum=1)
    if workers is not None:
        return workers
    return os.cpu_count() or 1


def resolve_workers(workers: Optional[int] = None) -> int:
    """An explicit worker count, or the environment/CPU default.

    The sweeps call this once up front and record the result in their
    payload, so every bench says how many workers produced it.
    """
    if workers is None:
        return default_workers()
    workers = int(workers)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def _set_payload(payload: Any) -> None:
    """Pool initializer for the no-fork fallback (payload via pickle)."""
    global _PAYLOAD
    _PAYLOAD = payload


def _warm() -> None:
    """No-op warmup task; running one per worker forces the forks."""


def _run_chunk(fn: Callable[[Any], Any], chunk: Sequence[Any]) -> List[Any]:
    """Run one chunk of jobs (module-level so it pickles)."""
    return [fn(job) for job in chunk]


def _new_pool(workers: int, payload: Any) -> ProcessPoolExecutor:
    """A warmed pool; workers fork after the payload global is set."""
    if "fork" in mp.get_all_start_methods():
        # The payload global is set by the caller, *then* the workers
        # fork: each inherits it copy-on-write. The warmup round both
        # pre-forks the pool and pins the inheritance point before any
        # real job runs.
        pool = ProcessPoolExecutor(
            max_workers=workers, mp_context=mp.get_context("fork")
        )
    else:  # pragma: no cover - non-fork platforms
        pool = ProcessPoolExecutor(
            max_workers=workers,
            initializer=_set_payload,
            initargs=(payload,),
        )
    for future in [pool.submit(_warm) for _ in range(workers)]:
        future.result()
    return pool


def stream_map(
    fn: Callable[[Any], Any],
    jobs: Sequence[Any],
    payload: Any = None,
    max_workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> List[Any]:
    """Run ``fn(job)`` for every job; results in submission order.

    ``fn`` and the jobs must be picklable (module-level function, small
    tuples); ``payload`` need not be — it travels by fork. With one
    worker or one job everything runs in-process and no pool exists.

    A worker *crash* (process death, not an exception from ``fn``)
    breaks the whole pool; the chunk being waited on is charged one
    retry in a fresh pool, and if that pool breaks too the chunk runs
    in-process — where a genuine error from ``fn`` still propagates
    loudly. Chunks that merely had their pool shot out from under them
    are resubmitted without being charged.
    """
    global _PAYLOAD
    jobs = list(jobs)
    if not jobs:
        return []
    workers = max_workers if max_workers is not None else default_workers()
    workers = min(max(1, workers), len(jobs))
    _PAYLOAD = payload
    try:
        if workers <= 1 or len(jobs) <= 1:
            return [fn(job) for job in jobs]
        if chunk_size is None:
            chunk_size = max(1, len(jobs) // (workers * 4))
        chunks = [jobs[i : i + chunk_size] for i in range(0, len(jobs), chunk_size)]
        results: List[Optional[List[Any]]] = [None] * len(chunks)
        retried: set = set()
        pool = _new_pool(workers, payload)
        try:
            futures = {
                i: pool.submit(_run_chunk, fn, chunk)
                for i, chunk in enumerate(chunks)
            }
            index = 0
            while index < len(chunks):
                try:
                    # Futures resolve in submission order — deterministic
                    # merge for free, and no end-of-run batch join.
                    results[index] = futures[index].result()
                    index += 1
                    continue
                except BrokenProcessPool:
                    pass
                # A worker died and took the pool (and every outstanding
                # future) with it. Only the chunk we were waiting on is
                # charged a retry; the rest are innocent bystanders and
                # resubmit for free.
                pool.shutdown(wait=False)
                if index in retried:
                    print(
                        f"fan-out: chunk {index} crashed its retry pool too; "
                        "running it in-process",
                        file=sys.stderr,
                    )
                    results[index] = _run_chunk(fn, chunks[index])
                    index += 1
                else:
                    retried.add(index)
                    print(
                        f"fan-out: worker crashed (pool broken); retrying "
                        f"chunk {index} in a fresh pool",
                        file=sys.stderr,
                    )
                pending = [j for j in range(index, len(chunks)) if results[j] is None]
                if pending:
                    pool = _new_pool(workers, payload)
                    futures = {
                        j: pool.submit(_run_chunk, fn, chunks[j]) for j in pending
                    }
            return [item for chunk_results in results for item in chunk_results]
        finally:
            pool.shutdown(wait=False)
    finally:
        _PAYLOAD = None
