"""The planet-scale sweep: ANU vs modern policies on the vectorized path.

The paper stops at 5 servers and 50 file sets. This sweep runs the same
question — does latency-feedback tuning beat static and
randomized-choice placement on heterogeneous servers? — from paper
scale up to ≥1000 servers and ≥1M file sets, entirely on the
vectorized client path, against the two modern baselines the
at-scale literature centers on:

* ``anu``  — :class:`~repro.policies.vector.VectorANU` (this paper);
* ``chbl`` — :class:`~repro.policies.bounded.BoundedLoadConsistentHashing`
  (Mirrokni et al.);
* ``jsq2`` — :class:`~repro.policies.jsq.JSQd` with d=2
  (Mukhopadhyay et al.).

Per (point, policy) the sweep records throughput (simulated events per
wall-clock second of drive time; setup — workload generation, hashing,
initial placement — is reported separately) and policy quality: mean /
p99 latency, the paper's consistency metrics (coefficient of variation
and Jain index over per-server mean latency), and shed counts.

``python -m repro.experiments scale`` writes ``BENCH_scale.json``; the
``--smoke`` variant runs a seconds-sized subset for CI. The JSON schema
is guarded by ``tools/check_bench_schema.py``.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cluster.cache import CacheConfig
from ..core.hashing import HashFamily
from ..engine import ClusterConfig, ExperimentSpec, VectorizedClientPath
from ..metrics.consistency import consistency_report
from ..policies import BoundedLoadConsistentHashing, JSQd, VectorANU
from ..policies.base import LoadManager
from ..workloads.scale import ArrayWorkload, ScaleConfig, generate_scale

__all__ = [
    "SCHEMA_VERSION",
    "EVENTS_PER_COMPLETED_REQUEST",
    "SCALE_POLICIES",
    "DEFAULT_POINTS",
    "SMOKE_POINTS",
    "ScalePoint",
    "make_scale_policy",
    "run_scale_point",
    "run_scale_sweep",
    "render_scale",
    "write_scale_bench",
]

#: Bumped on any change to the BENCH_scale.json row/payload shape.
SCHEMA_VERSION = 1

SCALE_POLICIES: Tuple[str, ...] = ("anu", "chbl", "jsq2")

#: Kernel events the scalar engine processes per completed request —
#: submission timeout, queue hand-off, service-completion timeout
#: (measured: ``events_processed / completed`` = 3.002 on the
#: paper-scale run). Throughput rows count the events the vectorized
#: path *replaces*, so ``events_per_sec`` is directly comparable to
#: the scalar engine's kernel-events/s in BENCH_perf.json.
EVENTS_PER_COMPLETED_REQUEST = 3

#: Cyclic heterogeneity: the paper's power pattern tiled across the
#: cluster, so every size keeps the same 9:1 spread.
_POWER_PATTERN = (1.0, 3.0, 5.0, 7.0, 9.0)


@dataclass(frozen=True)
class ScalePoint:
    """One cluster size / workload size in the sweep."""

    n_servers: int
    n_filesets: int
    n_requests: int
    duration: float = 1_200.0
    tuning_interval: float = 120.0

    def label(self) -> str:
        return f"{self.n_servers}s/{self.n_filesets}fs"


#: Paper scale → two orders of magnitude up → the planet-scale point
#: the acceptance bar measures (≥1000 servers, ≥1M file sets).
DEFAULT_POINTS: Tuple[ScalePoint, ...] = (
    ScalePoint(n_servers=5, n_filesets=50, n_requests=66_401, duration=12_000.0),
    ScalePoint(n_servers=100, n_filesets=10_000, n_requests=2_000_000),
    ScalePoint(n_servers=1_000, n_filesets=1_000_000, n_requests=20_000_000),
)

#: CI-sized: seconds, not minutes, same code path end to end.
SMOKE_POINTS: Tuple[ScalePoint, ...] = (
    ScalePoint(n_servers=5, n_filesets=50, n_requests=6_000),
    ScalePoint(n_servers=20, n_filesets=500, n_requests=30_000),
)


def scale_powers(n_servers: int) -> Dict[int, float]:
    """Server powers for a point (paper pattern, tiled)."""
    return {i: _POWER_PATTERN[i % len(_POWER_PATTERN)] for i in range(n_servers)}


def make_scale_policy(
    name: str, server_ids: List[object], emit_moves: bool = False
) -> LoadManager:
    """Instantiate a sweep policy over a shared hash family."""
    family = HashFamily(seed=0)
    if name == "anu":
        return VectorANU(server_ids, hash_family=family, emit_moves=emit_moves)
    if name == "chbl":
        return BoundedLoadConsistentHashing(server_ids, hash_family=family)
    if name.startswith("jsq"):
        d = int(name[3:]) if name[3:] else 2
        return JSQd(server_ids, hash_family=family, d=d, emit_moves=emit_moves)
    raise ValueError(f"unknown scale policy {name!r}; know {SCALE_POLICIES}")


def run_scale_point(
    point: ScalePoint,
    policy_name: str,
    seed: int = 1,
    workload: Optional[ArrayWorkload] = None,
    repeats: int = 1,
) -> Dict[str, object]:
    """One vectorized run; returns a BENCH_scale row.

    ``drive_seconds`` times :meth:`ClusterEngine.run` alone; workload
    generation, engine assembly, and the policy's initial placement
    (where the probe matrix is hashed) count as ``setup_seconds``.
    Events are counted at :data:`EVENTS_PER_COMPLETED_REQUEST` per
    completed request — the scalar kernel's measured per-request event
    cost — so throughput is comparable to the scalar engine's
    kernel-events/s. With ``repeats > 1`` the run is rebuilt and
    re-driven that many times (results are deterministic, so only
    timing varies); ``drive_seconds`` reports the best and
    ``drive_seconds_all`` every repeat — an honest floor on a shared,
    noisy host.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    powers = scale_powers(point.n_servers)
    setup_start = time.perf_counter()
    if workload is None:
        workload = generate_scale(
            ScaleConfig(
                n_filesets=point.n_filesets,
                target_requests=point.n_requests,
                duration=point.duration,
                total_capacity=sum(powers.values()),
            ),
            seed=seed,
        )
    config = ClusterConfig(
        server_powers=powers,
        tuning_interval=point.tuning_interval,
        cache=CacheConfig(flush_work_scale=0.0, cold_factor=1.0, warmup_time=0.0),
        supply_knowledge=False,
    )
    drives: List[float] = []
    for _ in range(repeats):
        policy = make_scale_policy(policy_name, list(powers))
        engine = ExperimentSpec(
            workload=workload.fork(),
            policy=policy,
            config=config,
            client_path=VectorizedClientPath(),
        ).build()
        drive_start = time.perf_counter()
        result = engine.run()
        drives.append(time.perf_counter() - drive_start)
    drive_seconds = min(drives)
    setup_seconds = time.perf_counter() - setup_start - sum(drives)
    events = EVENTS_PER_COMPLETED_REQUEST * result.completed
    lat = result.all_latencies
    report = consistency_report(result, min_share=0.0)
    return {
        "policy": result.policy_name,
        "n_servers": point.n_servers,
        "n_filesets": point.n_filesets,
        "n_requests": int(result.submitted),
        "completed": int(result.completed),
        "duration_s": point.duration,
        "tuning_interval_s": point.tuning_interval,
        "setup_seconds": round(setup_seconds, 4),
        "drive_seconds": round(drive_seconds, 4),
        "drive_seconds_all": [round(d, 4) for d in drives],
        "events": int(events),
        "events_per_sec": round(events / drive_seconds, 1) if drive_seconds else 0.0,
        "mean_latency": float(lat.mean()) if lat.size else float("nan"),
        "p99_latency": float(np.percentile(lat, 99)) if lat.size else float("nan"),
        "latency_cov": report.cov,
        "jain_index": report.jain,
        "total_sheds": int(getattr(policy, "total_sheds", 0)),
    }


def run_scale_sweep(
    points: Sequence[ScalePoint] = DEFAULT_POINTS,
    policies: Sequence[str] = SCALE_POLICIES,
    seed: int = 1,
    repeats: int = 1,
) -> Dict[str, object]:
    """The full sweep; one workload generation per point, shared across
    policies (``ArrayWorkload`` is immutable, so sharing is free)."""
    rows: List[Dict[str, object]] = []
    for point in points:
        powers = scale_powers(point.n_servers)
        workload = generate_scale(
            ScaleConfig(
                n_filesets=point.n_filesets,
                target_requests=point.n_requests,
                duration=point.duration,
                total_capacity=sum(powers.values()),
            ),
            seed=seed,
        )
        for policy_name in policies:
            rows.append(
                run_scale_point(
                    point, policy_name, seed=seed, workload=workload, repeats=repeats
                )
            )
    return {
        "bench": "scale",
        "schema_version": SCHEMA_VERSION,
        "seed": seed,
        "cpu_count": os.cpu_count(),
        "policies": list(policies),
        "rows": rows,
    }


def render_scale(payload: Dict[str, object]) -> str:
    """ASCII table of a sweep payload (the CLI's printed output)."""
    lines = [
        f"scale sweep: seed={payload['seed']} cpu_count={payload['cpu_count']}",
        f"{'point':>14} {'policy':>6} {'events/s':>12} {'drive(s)':>9} "
        f"{'mean lat':>9} {'p99 lat':>9} {'cov':>7} {'jain':>6} {'sheds':>8}",
    ]
    for row in payload["rows"]:
        point = f"{row['n_servers']}s/{row['n_filesets']}fs"
        lines.append(
            f"{point:>14} {row['policy']:>6} {row['events_per_sec']:>12,.0f} "
            f"{row['drive_seconds']:>9.3f} {row['mean_latency']:>9.4f} "
            f"{row['p99_latency']:>9.4f} {row['latency_cov']:>7.4f} "
            f"{row['jain_index']:>6.4f} {row['total_sheds']:>8}"
        )
    return "\n".join(lines)


def write_scale_bench(payload: Dict[str, object], path) -> Path:
    """Serialize a sweep payload canonically (stable across runs)."""
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
