"""The planet-scale sweep: ANU vs modern policies on the vectorized path.

The paper stops at 5 servers and 50 file sets. This sweep runs the same
question — does latency-feedback tuning beat static and
randomized-choice placement on heterogeneous servers? — from paper
scale up to ≥1000 servers and ≥1M file sets, entirely on the
vectorized client path, against the two modern baselines the
at-scale literature centers on:

* ``anu``  — :class:`~repro.policies.vector.VectorANU` (this paper);
* ``chbl`` — :class:`~repro.policies.bounded.BoundedLoadConsistentHashing`
  (Mirrokni et al.);
* ``jsq2`` — :class:`~repro.policies.jsq.JSQd` with d=2
  (Mukhopadhyay et al.).

Per (point, policy) the sweep records throughput (simulated events per
wall-clock second of drive time; setup — workload generation and
hashing/initial placement — is split into ``workload_seconds`` and
``placement_seconds``) and policy quality: mean / p99 latency, the
paper's consistency metrics (coefficient of variation and Jain index
over per-server mean latency), shed counts, and the relocation ledger
(``relocated``, ``relocate_fraction``, ``reshuffle_seconds`` — what the
incremental epoch-delta path shrinks).

The sweep fans its (point, policy) cells out through
:func:`repro.experiments.fanout.stream_map`: workloads are generated
once per point in the parent and travel to the workers by fork (zero
copies), results stream back in submission order, and the payload
records the ``workers`` count that produced it. ``--workers 1`` (or a
single-CPU host) runs every cell in-process — byte-identical rows
modulo timing fields. ``repeats > 1`` forces one worker, so the best-
of-N drive timing never races a sibling cell for the core.

``python -m repro.experiments scale`` writes ``BENCH_scale.json``; the
``--smoke`` variant runs a seconds-sized subset for CI. The JSON schema
is guarded by ``tools/check_bench_schema.py``.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cluster.cache import CacheConfig
from ..core.hashing import HashFamily
from ..engine import ClusterConfig, ExperimentSpec, VectorizedClientPath
from ..metrics.consistency import consistency_report
from ..policies import BoundedLoadConsistentHashing, JSQd, VectorANU
from ..policies.base import LoadManager
from ..policies.vector import relocate_mode_from_env
from ..workloads.scale import ArrayWorkload, ScaleConfig, generate_scale
from .fanout import resolve_workers, shared_payload, stream_map

__all__ = [
    "SCHEMA_VERSION",
    "EVENTS_PER_COMPLETED_REQUEST",
    "SCALE_POLICIES",
    "DEFAULT_POINTS",
    "SMOKE_POINTS",
    "ScalePoint",
    "format_point_label",
    "make_scale_policy",
    "run_scale_point",
    "run_scale_sweep",
    "render_scale",
    "write_scale_bench",
]

#: Bumped on any change to the BENCH_scale.json row/payload shape.
SCHEMA_VERSION = 2

SCALE_POLICIES: Tuple[str, ...] = ("anu", "chbl", "jsq2")

#: Kernel events the scalar engine processes per completed request —
#: submission timeout, queue hand-off, service-completion timeout
#: (measured: ``events_processed / completed`` = 3.002 on the
#: paper-scale run). Throughput rows count the events the vectorized
#: path *replaces*, so ``events_per_sec`` is directly comparable to
#: the scalar engine's kernel-events/s in BENCH_perf.json.
EVENTS_PER_COMPLETED_REQUEST = 3

#: Cyclic heterogeneity: the paper's power pattern tiled across the
#: cluster, so every size keeps the same 9:1 spread.
_POWER_PATTERN = (1.0, 3.0, 5.0, 7.0, 9.0)


def format_point_label(n_servers: int, n_filesets: int) -> str:
    """The canonical sweep-point label (``1000s/1000000fs``).

    One definition for every sweep (scale, chaos-scale, control) and
    every renderer — point labels in tables and in ``Point.label()``
    can never drift apart.
    """
    return f"{n_servers}s/{n_filesets}fs"


@dataclass(frozen=True)
class ScalePoint:
    """One cluster size / workload size in the sweep."""

    n_servers: int
    n_filesets: int
    n_requests: int
    duration: float = 1_200.0
    tuning_interval: float = 120.0

    def label(self) -> str:
        return format_point_label(self.n_servers, self.n_filesets)


#: Paper scale → two orders of magnitude up → the planet-scale point
#: the acceptance bar measures (≥1000 servers, ≥1M file sets).
DEFAULT_POINTS: Tuple[ScalePoint, ...] = (
    ScalePoint(n_servers=5, n_filesets=50, n_requests=66_401, duration=12_000.0),
    ScalePoint(n_servers=100, n_filesets=10_000, n_requests=2_000_000),
    ScalePoint(n_servers=1_000, n_filesets=1_000_000, n_requests=20_000_000),
)

#: CI-sized: seconds, not minutes, same code path end to end.
SMOKE_POINTS: Tuple[ScalePoint, ...] = (
    ScalePoint(n_servers=5, n_filesets=50, n_requests=6_000),
    ScalePoint(n_servers=20, n_filesets=500, n_requests=30_000),
)


def scale_powers(n_servers: int) -> Dict[int, float]:
    """Server powers for a point (paper pattern, tiled)."""
    return {i: _POWER_PATTERN[i % len(_POWER_PATTERN)] for i in range(n_servers)}


def make_scale_policy(
    name: str, server_ids: List[object], emit_moves: bool = False
) -> LoadManager:
    """Instantiate a sweep policy over a shared hash family."""
    family = HashFamily(seed=0)
    if name == "anu":
        return VectorANU(server_ids, hash_family=family, emit_moves=emit_moves)
    if name == "chbl":
        return BoundedLoadConsistentHashing(server_ids, hash_family=family)
    if name.startswith("jsq"):
        d = int(name[3:]) if name[3:] else 2
        return JSQd(server_ids, hash_family=family, d=d, emit_moves=emit_moves)
    raise ValueError(f"unknown scale policy {name!r}; know {SCALE_POLICIES}")


def _point_workload(point: ScalePoint, seed: int) -> ArrayWorkload:
    """Generate one point's columnar workload (the shared-setup step)."""
    powers = scale_powers(point.n_servers)
    return generate_scale(
        ScaleConfig(
            n_filesets=point.n_filesets,
            target_requests=point.n_requests,
            duration=point.duration,
            total_capacity=sum(powers.values()),
        ),
        seed=seed,
    )


def run_scale_point(
    point: ScalePoint,
    policy_name: str,
    seed: int = 1,
    workload: Optional[ArrayWorkload] = None,
    repeats: int = 1,
    workload_seconds: Optional[float] = None,
) -> Dict[str, object]:
    """One vectorized run; returns a BENCH_scale row.

    ``drive_seconds`` times :meth:`ClusterEngine.run` alone; setup is
    split into ``workload_seconds`` (columnar workload generation —
    measured here, or passed in by the sweep that generated the shared
    workload) and ``placement_seconds`` (engine assembly plus the
    policy's initial placement, where the probe matrix is hashed);
    ``setup_seconds`` is their sum. Events are counted at
    :data:`EVENTS_PER_COMPLETED_REQUEST` per completed request — the
    scalar kernel's measured per-request event cost — so throughput is
    comparable to the scalar engine's kernel-events/s. With
    ``repeats > 1`` the run is rebuilt and re-driven that many times
    (results are deterministic, so only timing varies);
    ``drive_seconds`` reports the best and ``drive_seconds_all`` every
    repeat — an honest floor on a shared, noisy host.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    powers = scale_powers(point.n_servers)
    workload_start = time.perf_counter()
    if workload is None:
        workload = _point_workload(point, seed)
        if workload_seconds is None:
            workload_seconds = time.perf_counter() - workload_start
    elif workload_seconds is None:
        workload_seconds = 0.0
    config = ClusterConfig(
        server_powers=powers,
        tuning_interval=point.tuning_interval,
        cache=CacheConfig(flush_work_scale=0.0, cold_factor=1.0, warmup_time=0.0),
        supply_knowledge=False,
    )
    placement_start = time.perf_counter()
    drives: List[float] = []
    for _ in range(repeats):
        policy = make_scale_policy(policy_name, list(powers))
        engine = ExperimentSpec(
            workload=workload.fork(),
            policy=policy,
            config=config,
            client_path=VectorizedClientPath(),
        ).build()
        drive_start = time.perf_counter()
        result = engine.run()
        drives.append(time.perf_counter() - drive_start)
    drive_seconds = min(drives)
    placement_seconds = time.perf_counter() - placement_start - sum(drives)
    events = EVENTS_PER_COMPLETED_REQUEST * result.completed
    lat = result.all_latencies
    report = consistency_report(result, min_share=0.0)
    return {
        "policy": result.policy_name,
        "n_servers": point.n_servers,
        "n_filesets": point.n_filesets,
        "n_requests": int(result.submitted),
        "completed": int(result.completed),
        "duration_s": point.duration,
        "tuning_interval_s": point.tuning_interval,
        "workload_seconds": round(workload_seconds, 4),
        "placement_seconds": round(placement_seconds, 4),
        "setup_seconds": round(workload_seconds + placement_seconds, 4),
        "drive_seconds": round(drive_seconds, 4),
        "drive_seconds_all": [round(d, 4) for d in drives],
        "events": int(events),
        "events_per_sec": round(events / drive_seconds, 1) if drive_seconds else 0.0,
        "mean_latency": float(lat.mean()) if lat.size else float("nan"),
        "p99_latency": float(np.percentile(lat, 99)) if lat.size else float("nan"),
        "latency_cov": report.cov,
        "jain_index": report.jain,
        "total_sheds": int(getattr(policy, "total_sheds", 0)),
        "relocated": int(getattr(policy, "relocated_total", 0)),
        "relocate_fraction": round(
            float(getattr(policy, "relocate_fraction", 0.0)), 6
        ),
        "reshuffle_seconds": round(
            float(getattr(policy, "reshuffle_seconds", 0.0)), 4
        ),
    }


def _scale_cell(job: Tuple[int, str]) -> Dict[str, object]:
    """One (point, policy) sweep cell; reads the fork-shared payload."""
    point_idx, policy_name = job
    points, workloads, workload_seconds, seed, repeats = shared_payload()
    return run_scale_point(
        points[point_idx],
        policy_name,
        seed=seed,
        workload=workloads[point_idx],
        repeats=repeats,
        workload_seconds=workload_seconds[point_idx],
    )


def run_scale_sweep(
    points: Sequence[ScalePoint] = DEFAULT_POINTS,
    policies: Sequence[str] = SCALE_POLICIES,
    seed: int = 1,
    repeats: int = 1,
    workers: Optional[int] = None,
) -> Dict[str, object]:
    """The full sweep, fanned out one (point, policy) cell per job.

    Workloads are generated once per point in the parent (the
    ``ArrayWorkload`` is immutable, so sharing is free) and reach the
    workers zero-copy through the fork; results merge in submission
    order, so the row list is identical to the sequential sweep's.
    ``repeats > 1`` pins the sweep to one worker — best-of-N drive
    timing on a core that sibling cells are racing for would be noise,
    not a floor.
    """
    points = list(points)
    workers = resolve_workers(workers)
    if repeats > 1:
        workers = 1
    workloads: List[ArrayWorkload] = []
    workload_seconds: List[float] = []
    for point in points:
        t0 = time.perf_counter()
        workloads.append(_point_workload(point, seed))
        workload_seconds.append(time.perf_counter() - t0)
    jobs = [(i, name) for i in range(len(points)) for name in policies]
    rows = stream_map(
        _scale_cell,
        jobs,
        payload=(points, workloads, workload_seconds, seed, repeats),
        max_workers=workers,
        chunk_size=1,
    )
    return {
        "bench": "scale",
        "schema_version": SCHEMA_VERSION,
        "seed": seed,
        "cpu_count": os.cpu_count(),
        "workers": workers,
        "relocate_mode": relocate_mode_from_env(),
        "policies": list(policies),
        "rows": rows,
    }


def render_scale(payload: Dict[str, object]) -> str:
    """ASCII table of a sweep payload (the CLI's printed output)."""
    lines = [
        f"scale sweep: seed={payload['seed']} cpu_count={payload['cpu_count']} "
        f"workers={payload['workers']} relocate={payload['relocate_mode']}",
        f"{'point':>14} {'policy':>6} {'events/s':>12} {'drive(s)':>9} "
        f"{'mean lat':>9} {'p99 lat':>9} {'cov':>7} {'jain':>6} {'sheds':>8} "
        f"{'reloc%':>7}",
    ]
    for row in payload["rows"]:
        point = format_point_label(row["n_servers"], row["n_filesets"])
        lines.append(
            f"{point:>14} {row['policy']:>6} {row['events_per_sec']:>12,.0f} "
            f"{row['drive_seconds']:>9.3f} {row['mean_latency']:>9.4f} "
            f"{row['p99_latency']:>9.4f} {row['latency_cov']:>7.4f} "
            f"{row['jain_index']:>6.4f} {row['total_sheds']:>8} "
            f"{100.0 * row['relocate_fraction']:>6.1f}%"
        )
    return "\n".join(lines)


def write_scale_bench(payload: Dict[str, object], path) -> Path:
    """Serialize a sweep payload canonically (stable across runs)."""
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
