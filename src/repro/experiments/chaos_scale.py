"""The chaos-at-scale sweep: fault injection on the vectorized path.

``BENCH_robustness.json`` proves the chaos harness on the paper's
five-server cluster; this sweep asks the same robustness questions —
how fast are faults detected, how much capacity is lost, does
consistency recover, is every request accounted for — from paper scale
up to ≥1000 servers and ≥100k file sets, entirely on the vectorized
client path, against the same three policies as the ``scale`` sweep:

* ``anu``  — :class:`~repro.policies.vector.VectorANU` (this paper);
* ``chbl`` — :class:`~repro.policies.bounded.BoundedLoadConsistentHashing`;
* ``jsq2`` — :class:`~repro.policies.jsq.JSQd` with d=2.

Each run compiles its ``(seed, fault_rate)`` schedule into a
deterministic event timeline (:mod:`repro.faults.timeline`), replays it
through :class:`~repro.engine.vector_faults.VectorChaosFaultLayer`
between cohort drains, and audits the array-native invariants
(conservation, moment accounting, mask-consistent assignment, layout
coverage) at every event and interval boundary. Rows carry the full
robustness report — detection latencies vs the analytic bound,
unavailability, consistency recovery time, the classified in-flight
remainder (``requests_lost`` must be 0) — plus the run's
:func:`~repro.faults.chaos.chaos_fingerprint`, so the bench is
bit-reproducible.

``python -m repro.experiments chaos-scale`` writes
``BENCH_chaos_scale.json``; ``--smoke`` runs a seconds-sized subset for
CI. The JSON schema is guarded by ``tools/check_bench_schema.py``.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster.cache import CacheConfig
from ..engine import (
    ChaosConfig,
    ClusterConfig,
    ExperimentSpec,
    VectorChaosFaultLayer,
    VectorizedClientPath,
)
from ..faults import FaultSchedule, chaos_fingerprint, random_schedule
from ..metrics.robustness import robustness_report
from ..workloads.scale import ArrayWorkload, ScaleConfig, generate_scale
from .scale import SCALE_POLICIES, make_scale_policy, scale_powers

__all__ = [
    "SCHEMA_VERSION",
    "CHAOS_SCALE_POLICIES",
    "DEFAULT_POINTS",
    "SMOKE_POINTS",
    "ChaosScalePoint",
    "run_chaos_scale_point",
    "run_chaos_scale_sweep",
    "render_chaos_scale",
    "write_chaos_scale_bench",
]

#: Bumped on any change to the BENCH_chaos_scale.json row/payload shape.
SCHEMA_VERSION = 1

CHAOS_SCALE_POLICIES: Tuple[str, ...] = SCALE_POLICIES


@dataclass(frozen=True)
class ChaosScalePoint:
    """One cluster size / workload size / fault intensity in the sweep."""

    n_servers: int
    n_filesets: int
    n_requests: int
    #: Expected faults per simulated second (Poisson, first 70% of run).
    fault_rate: float
    duration: float = 1_200.0
    tuning_interval: float = 120.0

    def label(self) -> str:
        return f"{self.n_servers}s/{self.n_filesets}fs"


#: Paper scale → two orders of magnitude up → the planet-scale point
#: the acceptance bar measures (≥1000 servers, ≥100k file sets). Fault
#: rates grow with the cluster so per-server fault exposure stays in
#: the same regime a large fleet actually sees.
DEFAULT_POINTS: Tuple[ChaosScalePoint, ...] = (
    ChaosScalePoint(
        n_servers=5, n_filesets=50, n_requests=66_401,
        fault_rate=0.002, duration=12_000.0,
    ),
    ChaosScalePoint(
        n_servers=100, n_filesets=10_000, n_requests=2_000_000,
        fault_rate=0.02,
    ),
    ChaosScalePoint(
        n_servers=1_000, n_filesets=100_000, n_requests=5_000_000,
        fault_rate=0.05,
    ),
)

#: CI-sized: seconds, not minutes, same code path end to end. Rates are
#: storm-level so faults actually land at these tiny horizons.
SMOKE_POINTS: Tuple[ChaosScalePoint, ...] = (
    ChaosScalePoint(
        n_servers=5, n_filesets=50, n_requests=6_000,
        fault_rate=0.02, duration=600.0, tuning_interval=60.0,
    ),
    ChaosScalePoint(
        n_servers=20, n_filesets=500, n_requests=30_000,
        fault_rate=0.02, duration=600.0, tuning_interval=60.0,
    ),
)


def point_schedule(
    point: ChaosScalePoint, seed: int, chaos: ChaosConfig
) -> FaultSchedule:
    """The point's deterministic fault script.

    Drawn from the same generator as the scalar chaos sweep; outages
    must outlive the detection bound, or crashes heal before the
    compiled detector can declare them.
    """
    return random_schedule(
        seed=seed,
        duration=point.duration,
        server_ids=list(scale_powers(point.n_servers)),
        fault_rate=point.fault_rate,
        min_outage=max(30.0, 3.0 * chaos.detection_latency_bound),
    )


def run_chaos_scale_point(
    point: ChaosScalePoint,
    policy_name: str,
    seed: int = 1,
    workload: Optional[ArrayWorkload] = None,
    schedule: Optional[FaultSchedule] = None,
) -> Dict[str, object]:
    """One vectorized chaos run; returns a BENCH_chaos_scale row.

    ``drive_seconds`` times the run alone; workload generation, engine
    assembly, schedule compilation, and initial placement count as
    ``setup_seconds``. The row is the full robustness report plus the
    run's chaos fingerprint and the churn ledger.
    """
    powers = scale_powers(point.n_servers)
    chaos = ChaosConfig(seed=seed)
    setup_start = time.perf_counter()
    if workload is None:
        workload = generate_scale(
            ScaleConfig(
                n_filesets=point.n_filesets,
                target_requests=point.n_requests,
                duration=point.duration,
                total_capacity=sum(powers.values()),
            ),
            seed=seed,
        )
    if schedule is None:
        schedule = point_schedule(point, seed, chaos)
    config = ClusterConfig(
        server_powers=powers,
        tuning_interval=point.tuning_interval,
        cache=CacheConfig(flush_work_scale=0.0, cold_factor=1.0, warmup_time=0.0),
        supply_knowledge=False,
    )
    policy = make_scale_policy(policy_name, list(powers))
    layer = VectorChaosFaultLayer(schedule=schedule, chaos=chaos)
    engine = ExperimentSpec(
        workload=workload.fork(),
        policy=policy,
        config=config,
        client_path=VectorizedClientPath(),
        faults=layer,
    ).build()
    drive_start = time.perf_counter()
    result = engine.run_chaos()
    drive_seconds = time.perf_counter() - drive_start
    setup_seconds = drive_start - setup_start
    report = robustness_report(result, fault_rate=point.fault_rate)
    row = report.to_dict()
    row.update(
        {
            "policy": policy_name,
            "n_servers": point.n_servers,
            "n_filesets": point.n_filesets,
            "n_requests": int(result.requests_injected),
            "duration_s": point.duration,
            "tuning_interval_s": point.tuning_interval,
            "setup_seconds": round(setup_seconds, 4),
            "drive_seconds": round(drive_seconds, 4),
            "failure_declarations": result.failure_declarations,
            "recovery_declarations": result.recovery_declarations,
            "total_sheds": int(getattr(policy, "total_sheds", 0)),
            "fingerprint": chaos_fingerprint(result),
        }
    )
    return row


def run_chaos_scale_sweep(
    points: Sequence[ChaosScalePoint] = DEFAULT_POINTS,
    policies: Sequence[str] = CHAOS_SCALE_POLICIES,
    seed: int = 1,
) -> Dict[str, object]:
    """The full sweep; one workload + schedule per point, shared across
    policies (both are immutable, so sharing is free — and it makes the
    per-point policy comparison apples-to-apples: identical arrivals,
    identical fault script)."""
    chaos = ChaosConfig(seed=seed)
    rows: List[Dict[str, object]] = []
    for point in points:
        powers = scale_powers(point.n_servers)
        workload = generate_scale(
            ScaleConfig(
                n_filesets=point.n_filesets,
                target_requests=point.n_requests,
                duration=point.duration,
                total_capacity=sum(powers.values()),
            ),
            seed=seed,
        )
        schedule = point_schedule(point, seed, chaos)
        for policy_name in policies:
            rows.append(
                run_chaos_scale_point(
                    point, policy_name, seed=seed,
                    workload=workload, schedule=schedule,
                )
            )
    return {
        "bench": "chaos_scale",
        "schema_version": SCHEMA_VERSION,
        "seed": seed,
        "cpu_count": os.cpu_count(),
        "policies": list(policies),
        "detection_latency_bound_s": chaos.detection_latency_bound,
        "heartbeat": {
            "period_s": chaos.heartbeat_period,
            "misses": chaos.heartbeat_misses,
            "recoveries": chaos.heartbeat_recoveries,
        },
        "rows": rows,
    }


def render_chaos_scale(payload: Dict[str, object]) -> str:
    """ASCII table of a sweep payload (the CLI's printed output)."""
    lines = [
        f"chaos-scale sweep: seed={payload['seed']} "
        f"detection bound={payload['detection_latency_bound_s']}s",
        f"{'point':>16} {'policy':>6} {'faults':>6} {'unavail':>8} "
        f"{'det.max':>8} {'recov(s)':>8} {'retries/req':>11} {'lost':>5} "
        f"{'violations':>10} {'drive(s)':>9}",
    ]
    for row in payload["rows"]:
        point = f"{row['n_servers']}s/{row['n_filesets']}fs"
        det = max(row["detection_latencies_s"], default=0.0)
        recov = row["consistency_recovery_s"]
        lines.append(
            f"{point:>16} {row['policy']:>6} {row['faults_injected']:>6} "
            f"{row['unavailability']:>8.4f} {det:>8.2f} "
            f"{recov if recov is not None else '—':>8} "
            f"{row['retries_per_request']:>11.4f} {row['requests_lost']:>5} "
            f"{row['invariant_violations']:>10} {row['drive_seconds']:>9.3f}"
        )
    return "\n".join(lines)


def write_chaos_scale_bench(payload: Dict[str, object], path) -> Path:
    """Serialize a sweep payload canonically (stable across runs)."""
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
