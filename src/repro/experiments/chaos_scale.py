"""The chaos-at-scale sweep: fault injection on the vectorized path.

``BENCH_robustness.json`` proves the chaos harness on the paper's
five-server cluster; this sweep asks the same robustness questions —
how fast are faults detected, how much capacity is lost, does
consistency recover, is every request accounted for — from paper scale
up to ≥1000 servers and ≥100k file sets, entirely on the vectorized
client path, against the same three policies as the ``scale`` sweep:

* ``anu``  — :class:`~repro.policies.vector.VectorANU` (this paper);
* ``chbl`` — :class:`~repro.policies.bounded.BoundedLoadConsistentHashing`;
* ``jsq2`` — :class:`~repro.policies.jsq.JSQd` with d=2.

Each run compiles its ``(seed, fault_rate)`` schedule into a
deterministic event timeline (:mod:`repro.faults.timeline`), replays it
through :class:`~repro.engine.vector_faults.VectorChaosFaultLayer`
between cohort drains, and audits the array-native invariants
(conservation, moment accounting, mask-consistent assignment, layout
coverage) at every event and interval boundary. Rows carry the full
robustness report — detection latencies vs the analytic bound,
unavailability, consistency recovery time, the classified in-flight
remainder (``requests_lost`` must be 0) — plus the run's
:func:`~repro.faults.chaos.chaos_fingerprint`, so the bench is
bit-reproducible.

Like the ``scale`` sweep, the (point, policy) cells fan out through
:func:`repro.experiments.fanout.stream_map`: the per-point workload
*and* fault schedule are generated once in the parent and reach the
workers by fork (zero copies), results merge in submission order, and
the payload records the ``workers`` count. One worker (or one CPU)
runs everything in-process — rows byte-identical to the sequential
sweep modulo timing fields.

``python -m repro.experiments chaos-scale`` writes
``BENCH_chaos_scale.json``; ``--smoke`` runs a seconds-sized subset for
CI. The JSON schema is guarded by ``tools/check_bench_schema.py``.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster.cache import CacheConfig
from ..engine import (
    ChaosConfig,
    ClusterConfig,
    ExperimentSpec,
    VectorChaosFaultLayer,
    VectorizedClientPath,
)
from ..faults import FaultSchedule, chaos_fingerprint, random_schedule
from ..metrics.robustness import robustness_report
from ..policies.vector import relocate_mode_from_env
from ..workloads.scale import ArrayWorkload, ScaleConfig, generate_scale
from .fanout import resolve_workers, shared_payload, stream_map
from .scale import (
    SCALE_POLICIES,
    format_point_label,
    make_scale_policy,
    scale_powers,
)

__all__ = [
    "SCHEMA_VERSION",
    "CHAOS_SCALE_POLICIES",
    "DEFAULT_POINTS",
    "SMOKE_POINTS",
    "ChaosScalePoint",
    "run_chaos_scale_point",
    "run_chaos_scale_sweep",
    "render_chaos_scale",
    "write_chaos_scale_bench",
]

#: Bumped on any change to the BENCH_chaos_scale.json row/payload shape.
SCHEMA_VERSION = 2

CHAOS_SCALE_POLICIES: Tuple[str, ...] = SCALE_POLICIES


@dataclass(frozen=True)
class ChaosScalePoint:
    """One cluster size / workload size / fault intensity in the sweep."""

    n_servers: int
    n_filesets: int
    n_requests: int
    #: Expected faults per simulated second (Poisson, first 70% of run).
    fault_rate: float
    duration: float = 1_200.0
    tuning_interval: float = 120.0

    def label(self) -> str:
        return format_point_label(self.n_servers, self.n_filesets)


#: Paper scale → two orders of magnitude up → the planet-scale point
#: the acceptance bar measures (≥1000 servers, ≥100k file sets). Fault
#: rates grow with the cluster so per-server fault exposure stays in
#: the same regime a large fleet actually sees.
DEFAULT_POINTS: Tuple[ChaosScalePoint, ...] = (
    ChaosScalePoint(
        n_servers=5, n_filesets=50, n_requests=66_401,
        fault_rate=0.002, duration=12_000.0,
    ),
    ChaosScalePoint(
        n_servers=100, n_filesets=10_000, n_requests=2_000_000,
        fault_rate=0.02,
    ),
    ChaosScalePoint(
        n_servers=1_000, n_filesets=100_000, n_requests=5_000_000,
        fault_rate=0.05,
    ),
)

#: CI-sized: seconds, not minutes, same code path end to end. Rates are
#: storm-level so faults actually land at these tiny horizons.
SMOKE_POINTS: Tuple[ChaosScalePoint, ...] = (
    ChaosScalePoint(
        n_servers=5, n_filesets=50, n_requests=6_000,
        fault_rate=0.02, duration=600.0, tuning_interval=60.0,
    ),
    ChaosScalePoint(
        n_servers=20, n_filesets=500, n_requests=30_000,
        fault_rate=0.02, duration=600.0, tuning_interval=60.0,
    ),
)


def point_schedule(
    point: ChaosScalePoint, seed: int, chaos: ChaosConfig
) -> FaultSchedule:
    """The point's deterministic fault script.

    Drawn from the same generator as the scalar chaos sweep; outages
    must outlive the detection bound, or crashes heal before the
    compiled detector can declare them.
    """
    return random_schedule(
        seed=seed,
        duration=point.duration,
        server_ids=list(scale_powers(point.n_servers)),
        fault_rate=point.fault_rate,
        min_outage=max(30.0, 3.0 * chaos.detection_latency_bound),
    )


def _point_workload(point: ChaosScalePoint, seed: int) -> ArrayWorkload:
    """Generate one point's columnar workload (the shared-setup step)."""
    powers = scale_powers(point.n_servers)
    return generate_scale(
        ScaleConfig(
            n_filesets=point.n_filesets,
            target_requests=point.n_requests,
            duration=point.duration,
            total_capacity=sum(powers.values()),
        ),
        seed=seed,
    )


def run_chaos_scale_point(
    point: ChaosScalePoint,
    policy_name: str,
    seed: int = 1,
    workload: Optional[ArrayWorkload] = None,
    schedule: Optional[FaultSchedule] = None,
    workload_seconds: Optional[float] = None,
) -> Dict[str, object]:
    """One vectorized chaos run; returns a BENCH_chaos_scale row.

    ``drive_seconds`` times the run alone; setup splits into
    ``workload_seconds`` (workload generation — measured here, or
    passed by the sweep that generated the shared workload) and
    ``placement_seconds`` (schedule compilation, engine assembly, and
    initial placement); ``setup_seconds`` is their sum. The row is the
    full robustness report plus the run's chaos fingerprint, the churn
    ledger, and the relocation ledger.
    """
    powers = scale_powers(point.n_servers)
    chaos = ChaosConfig(seed=seed)
    workload_start = time.perf_counter()
    if workload is None:
        workload = _point_workload(point, seed)
        if workload_seconds is None:
            workload_seconds = time.perf_counter() - workload_start
    elif workload_seconds is None:
        workload_seconds = 0.0
    placement_start = time.perf_counter()
    if schedule is None:
        schedule = point_schedule(point, seed, chaos)
    config = ClusterConfig(
        server_powers=powers,
        tuning_interval=point.tuning_interval,
        cache=CacheConfig(flush_work_scale=0.0, cold_factor=1.0, warmup_time=0.0),
        supply_knowledge=False,
    )
    policy = make_scale_policy(policy_name, list(powers))
    layer = VectorChaosFaultLayer(schedule=schedule, chaos=chaos)
    engine = ExperimentSpec(
        workload=workload.fork(),
        policy=policy,
        config=config,
        client_path=VectorizedClientPath(),
        faults=layer,
    ).build()
    drive_start = time.perf_counter()
    result = engine.run_chaos()
    drive_seconds = time.perf_counter() - drive_start
    placement_seconds = drive_start - placement_start
    report = robustness_report(result, fault_rate=point.fault_rate)
    row = report.to_dict()
    row.update(
        {
            "policy": policy_name,
            "n_servers": point.n_servers,
            "n_filesets": point.n_filesets,
            "n_requests": int(result.requests_injected),
            "duration_s": point.duration,
            "tuning_interval_s": point.tuning_interval,
            "workload_seconds": round(workload_seconds, 4),
            "placement_seconds": round(placement_seconds, 4),
            "setup_seconds": round(workload_seconds + placement_seconds, 4),
            "drive_seconds": round(drive_seconds, 4),
            "failure_declarations": result.failure_declarations,
            "recovery_declarations": result.recovery_declarations,
            "total_sheds": int(getattr(policy, "total_sheds", 0)),
            "relocated": int(getattr(policy, "relocated_total", 0)),
            "relocate_fraction": round(
                float(getattr(policy, "relocate_fraction", 0.0)), 6
            ),
            "reshuffle_seconds": round(
                float(getattr(policy, "reshuffle_seconds", 0.0)), 4
            ),
            "fingerprint": chaos_fingerprint(result),
        }
    )
    return row


def _chaos_scale_cell(job: Tuple[int, str]) -> Dict[str, object]:
    """One (point, policy) sweep cell; reads the fork-shared payload."""
    point_idx, policy_name = job
    points, workloads, schedules, workload_seconds, seed = shared_payload()
    return run_chaos_scale_point(
        points[point_idx],
        policy_name,
        seed=seed,
        workload=workloads[point_idx],
        schedule=schedules[point_idx],
        workload_seconds=workload_seconds[point_idx],
    )


def run_chaos_scale_sweep(
    points: Sequence[ChaosScalePoint] = DEFAULT_POINTS,
    policies: Sequence[str] = CHAOS_SCALE_POLICIES,
    seed: int = 1,
    workers: Optional[int] = None,
) -> Dict[str, object]:
    """The full sweep, fanned out one (point, policy) cell per job.

    One workload + schedule per point, generated in the parent and
    shared across policies (both are immutable, so sharing is free —
    and it makes the per-point policy comparison apples-to-apples:
    identical arrivals, identical fault script). Cells travel through
    :func:`stream_map`, so results merge in submission order and the
    row list matches the sequential sweep's exactly.
    """
    points = list(points)
    workers = resolve_workers(workers)
    chaos = ChaosConfig(seed=seed)
    workloads: List[ArrayWorkload] = []
    schedules: List[FaultSchedule] = []
    workload_seconds: List[float] = []
    for point in points:
        t0 = time.perf_counter()
        workloads.append(_point_workload(point, seed))
        workload_seconds.append(time.perf_counter() - t0)
        schedules.append(point_schedule(point, seed, chaos))
    jobs = [(i, name) for i in range(len(points)) for name in policies]
    rows = stream_map(
        _chaos_scale_cell,
        jobs,
        payload=(points, workloads, schedules, workload_seconds, seed),
        max_workers=workers,
        chunk_size=1,
    )
    return {
        "bench": "chaos_scale",
        "schema_version": SCHEMA_VERSION,
        "seed": seed,
        "cpu_count": os.cpu_count(),
        "workers": workers,
        "relocate_mode": relocate_mode_from_env(),
        "policies": list(policies),
        "detection_latency_bound_s": chaos.detection_latency_bound,
        "heartbeat": {
            "period_s": chaos.heartbeat_period,
            "misses": chaos.heartbeat_misses,
            "recoveries": chaos.heartbeat_recoveries,
        },
        "rows": rows,
    }


def render_chaos_scale(payload: Dict[str, object]) -> str:
    """ASCII table of a sweep payload (the CLI's printed output)."""
    lines = [
        f"chaos-scale sweep: seed={payload['seed']} "
        f"detection bound={payload['detection_latency_bound_s']}s "
        f"workers={payload['workers']} relocate={payload['relocate_mode']}",
        f"{'point':>16} {'policy':>6} {'faults':>6} {'unavail':>8} "
        f"{'det.max':>8} {'recov(s)':>8} {'retries/req':>11} {'lost':>5} "
        f"{'violations':>10} {'drive(s)':>9}",
    ]
    for row in payload["rows"]:
        point = format_point_label(row["n_servers"], row["n_filesets"])
        det = max(row["detection_latencies_s"], default=0.0)
        recov = row["consistency_recovery_s"]
        lines.append(
            f"{point:>16} {row['policy']:>6} {row['faults_injected']:>6} "
            f"{row['unavailability']:>8.4f} {det:>8.2f} "
            f"{recov if recov is not None else '—':>8} "
            f"{row['retries_per_request']:>11.4f} {row['requests_lost']:>5} "
            f"{row['invariant_violations']:>10} {row['drive_seconds']:>9.3f}"
        )
    return "\n".join(lines)


def write_chaos_scale_bench(payload: Dict[str, object], path) -> Path:
    """Serialize a sweep payload canonically (stable across runs)."""
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
