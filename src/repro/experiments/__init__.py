"""The figure-by-figure reproduction harness.

``python -m repro.experiments --all`` regenerates every figure of the
paper's evaluation as text tables; ``repro.experiments.figures.figN``
exposes each experiment programmatically (``run()`` → structured data,
``render()`` → the printed rows/series).
"""

from .config import (
    PAPER_POWERS,
    PAPER_TUNING_INTERVAL,
    SYSTEMS,
    ExperimentConfig,
    paper_config,
)
from .cache import (
    ExperimentCache,
    cached_synthetic,
    default_cache,
    result_fingerprint,
    workload_fingerprint,
)
from .chaos import (
    DEFAULT_FAULT_RATES,
    render_chaos,
    run_chaos,
    run_chaos_sweep,
    write_robustness_bench,
)
from .figures import FIGURES
from .parallel import (
    default_workers,
    run_comparison_parallel,
    run_seed_sweep,
    run_vp_sweep,
)
from .report import run_all_figures, run_figure
from .runner import make_policy, run_comparison, run_system
from .scale import (
    DEFAULT_POINTS,
    SCALE_POLICIES,
    SMOKE_POINTS,
    ScalePoint,
    render_scale,
    run_scale_point,
    run_scale_sweep,
    write_scale_bench,
)

__all__ = [
    "PAPER_POWERS",
    "PAPER_TUNING_INTERVAL",
    "SYSTEMS",
    "ExperimentConfig",
    "paper_config",
    "FIGURES",
    "run_figure",
    "run_all_figures",
    "make_policy",
    "run_system",
    "run_comparison",
    "ExperimentCache",
    "cached_synthetic",
    "default_cache",
    "result_fingerprint",
    "workload_fingerprint",
    "default_workers",
    "run_comparison_parallel",
    "run_seed_sweep",
    "run_vp_sweep",
    "DEFAULT_FAULT_RATES",
    "run_chaos",
    "run_chaos_sweep",
    "render_chaos",
    "write_robustness_bench",
    "ScalePoint",
    "SCALE_POLICIES",
    "DEFAULT_POINTS",
    "SMOKE_POINTS",
    "run_scale_point",
    "run_scale_sweep",
    "render_scale",
    "write_scale_bench",
]
