"""Rendering and orchestration of the full figure suite."""

from __future__ import annotations

from typing import Dict, Optional

from .figures import FIGURES
from .figures.fig5 import Fig5Data

__all__ = ["run_figure", "run_all_figures"]


def run_figure(name: str, seed: int = 1, scale: float = 1.0) -> str:
    """Run one figure end-to-end and return its rendered text."""
    if name not in FIGURES:
        raise ValueError(f"unknown figure {name!r}; options: {sorted(FIGURES)}")
    mod = FIGURES[name]
    data = mod.run(seed=seed, scale=scale)
    return mod.render(data)


def run_all_figures(seed: int = 1, scale: float = 1.0) -> Dict[str, str]:
    """Run every figure; shares the synthetic run across 5/6/7.

    Returns figure name → rendered text, in paper order.
    """
    from .figures import fig4, fig5, fig6, fig7, fig8

    out: Dict[str, str] = {}
    data4 = fig4.run(seed=seed, scale=scale)
    out["fig4"] = fig4.render(data4)
    data5: Fig5Data = fig5.run(seed=seed, scale=scale)
    out["fig5"] = fig5.render(data5)
    out["fig6"] = fig6.render(fig6.run(fig5=data5))
    out["fig7"] = fig7.render(fig7.run(fig5=data5))
    out["fig8"] = fig8.render(fig8.run(seed=seed, scale=scale))
    return out
