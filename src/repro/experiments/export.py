"""CSV export of figure data.

The harness prints figures as text tables; this module additionally
writes the underlying series as CSV files so they can be re-plotted by
any external tool (the repository deliberately has no plotting
dependency). One file per figure panel, with a header comment carrying
the provenance (figure id, seed, scale).

::

    from repro.experiments import figures, export
    data = figures.fig5.run(seed=1, scale=0.2)
    export.export_fig5(data, "out/")      # out/fig5_<system>.csv per system
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Union

from .figures.fig5 import Fig5Data
from .figures.fig7 import Fig7Data
from .figures.fig8 import Fig8Data

__all__ = ["export_fig5", "export_fig7", "export_fig8", "write_csv"]

PathLike = Union[str, Path]


def write_csv(path: PathLike, header: List[str], rows: List[List[object]], comment: str = "") -> Path:
    """Write one CSV file; returns its path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="", encoding="utf-8") as fh:
        if comment:
            fh.write(f"# {comment}\n")
        writer = csv.writer(fh)
        writer.writerow(header)
        writer.writerows(rows)
    return path


def export_fig5(data: Fig5Data, out_dir: PathLike) -> List[Path]:
    """One CSV per system: time vs per-server interval latency."""
    out = []
    for system, result in data.results.items():
        sids = sorted(result.server_latency, key=repr)
        times = result.server_latency[sids[0]].times()
        rows = []
        for i, t in enumerate(times):
            row: List[object] = [float(t)]
            for sid in sids:
                row.append(float(result.server_latency[sid].values()[i]))
            rows.append(row)
        path = write_csv(
            Path(out_dir) / f"fig5_{system}.csv",
            header=["time_s"] + [f"server_{sid}" for sid in sids],
            rows=rows,
            comment=f"figure 5, system={system}, seed/scale per run config",
        )
        out.append(path)
    return out


def export_fig7(data: Fig7Data, out_dir: PathLike) -> Path:
    """Per-round movement + cumulative workload-moved percentage."""
    s = data.series
    rows = [
        [int(r), int(m), int(c), float(w)]
        for r, m, c, w in zip(
            s.rounds, s.moves, s.cumulative_moves, s.cumulative_work_share
        )
    ]
    return write_csv(
        Path(out_dir) / "fig7_movement.csv",
        header=["round", "moves", "cumulative_moves", "cumulative_workload_moved_pct"],
        rows=rows,
        comment="figure 7, ANU load movement",
    )


def export_fig8(data: Fig8Data, out_dir: PathLike) -> Path:
    """VP sweep: Nv vs latency vs shared state, plus reference rows."""
    rows: List[List[object]] = []
    for nv in sorted(data.sweep):
        res = data.sweep[nv]
        rows.append(
            [f"vp{nv}", nv, res.aggregate_mean_latency, res.aggregate_std_latency,
             res.shared_state_entries]
        )
    for system, res in data.references.items():
        rows.append(
            [system, "", res.aggregate_mean_latency, res.aggregate_std_latency,
             res.shared_state_entries]
        )
    return write_csv(
        Path(out_dir) / "fig8_vp_sweep.csv",
        header=["system", "n_virtual", "mean_latency", "std_latency", "state_entries"],
        rows=rows,
        comment="figure 8, VP sweep + references",
    )
