"""Policy factory and experiment execution.

:func:`make_policy` maps the paper's system names to configured
:class:`LoadManager` instances; :func:`run_system` executes one
system × workload combination; :func:`run_comparison` runs the full
four-system sweep used by Figures 4–6.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..core.hashing import HashFamily
from ..core.tuning import TuningPolicy
from ..engine import SimulationBuilder
from ..engine.record import ClusterResult
from ..policies import (
    ANURandomization,
    DynamicPrescient,
    LoadManager,
    SimpleRandomization,
    TableBinPacking,
    VirtualProcessorSystem,
)
from ..workloads.synthetic import Workload
from .config import ExperimentConfig

__all__ = ["make_policy", "run_system", "run_comparison"]


def make_policy(
    system: str,
    config: ExperimentConfig,
    n_virtual: Optional[int] = None,
    tuning_policy: Optional[TuningPolicy] = None,
    controller: Optional[object] = None,
) -> LoadManager:
    """Instantiate one of the paper's systems by name.

    ``system`` ∈ {"simple", "anu", "prescient", "virtual", "table"}.
    ``n_virtual`` overrides the VP count (Figure 8 sweep); the default
    is the paper's ``v = 5`` → ``5 N`` VPs. ``controller`` plugs a
    :class:`repro.control.Controller` into the ANU system (takes
    precedence over ``tuning_policy``).
    """
    server_ids = list(config.powers)
    # The hash family is fixed infrastructure (every node derives the
    # same family from one agreed constant); it does not vary with the
    # workload seed. Sensitivity to the family choice is measured by
    # the multi-seed robustness bench and reported in EXPERIMENTS.md.
    family = HashFamily(seed=0)
    if system == "simple":
        return SimpleRandomization(server_ids, hash_family=family)
    if system == "anu":
        return ANURandomization(
            server_ids,
            hash_family=family,
            policy=tuning_policy,
            controller=controller,
        )
    if system == "prescient":
        return DynamicPrescient(server_ids, tuning_interval=config.tuning_interval)
    if system == "virtual":
        return VirtualProcessorSystem(
            server_ids,
            n_virtual=n_virtual,
            v=5.0,
            hash_family=family,
            tuning_interval=config.tuning_interval,
        )
    if system == "table":
        return TableBinPacking(server_ids, hash_family=family)
    raise ValueError(
        f"unknown system {system!r}; expected simple/anu/prescient/virtual/table"
    )


def run_system(
    system: str,
    workload: Workload,
    config: ExperimentConfig,
    n_virtual: Optional[int] = None,
    tuning_policy: Optional[TuningPolicy] = None,
    controller: Optional[object] = None,
) -> ClusterResult:
    """Run one system against one workload; returns the full result."""
    policy = make_policy(
        system,
        config,
        n_virtual=n_virtual,
        tuning_policy=tuning_policy,
        controller=controller,
    )
    sim = SimulationBuilder(workload, policy, config.cluster_config()).build()
    return sim.run()


def run_comparison(
    workload: Workload,
    config: ExperimentConfig,
    systems: Iterable[str] = ("simple", "anu", "prescient", "virtual"),
) -> Dict[str, ClusterResult]:
    """Run the four-system comparison of Figures 4/5/6.

    Each system gets a fresh simulation over the *same* workload
    object (schedules are immutable request descriptions; per-run
    mutable fields are reset by re-instantiating requests).
    """
    results: Dict[str, ClusterResult] = {}
    for system in systems:
        # Requests carry per-run mutable state (server, completion);
        # rebuild a pristine copy of the schedule for each system.
        results[system] = run_system(system, workload.fork(), config)
    return results


def _fresh_workload(workload: Workload) -> Workload:
    """Copy a workload with pristine (un-served) request objects.

    Thin wrapper over :meth:`Workload.fork` kept for its many existing
    import sites; new code should call ``workload.fork()`` directly.
    """
    return workload.fork()
