"""Canonical experiment configuration (the paper's §5.1 setup).

Every figure module builds on these constants so the whole harness
shares one source of truth. ``scale`` lets benches trade run length
for fidelity: ``scale=1.0`` is the paper-sized experiment (200 minutes,
66,401 requests); smaller scales shrink duration and request count
proportionally while keeping rates, utilization and the tuning cadence
identical — the dynamics are the same, just observed for less time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from ..cluster.cache import CacheConfig
from ..engine.record import ClusterConfig
from ..workloads.synthetic import SyntheticConfig
from ..workloads.trace import TraceConfig

__all__ = [
    "PAPER_POWERS",
    "PAPER_TUNING_INTERVAL",
    "SYSTEMS",
    "ExperimentConfig",
    "paper_config",
]

#: The paper's five-server heterogeneous cluster: "Servers 0, 1, 2, 3,
#: and 4 have processing power 1, 3, 5, 7, and 9 respectively to stress
#: heterogeneity" (§5.1).
PAPER_POWERS: Dict[int, float] = {0: 1.0, 1: 3.0, 2: 5.0, 3: 7.0, 4: 9.0}

#: "we use two minutes as the load placement tuning interval" (§5.1).
PAPER_TUNING_INTERVAL: float = 120.0

#: The four systems of the evaluation, in the paper's order.
SYSTEMS = ("simple", "anu", "prescient", "virtual")


@dataclass(frozen=True)
class ExperimentConfig:
    """One experiment's full parameterization."""

    powers: Dict[int, float] = field(default_factory=lambda: dict(PAPER_POWERS))
    tuning_interval: float = PAPER_TUNING_INTERVAL
    seed: int = 1
    scale: float = 1.0
    cache: CacheConfig = field(default_factory=CacheConfig)

    def __post_init__(self) -> None:
        if not 0 < self.scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {self.scale}")

    @property
    def total_capacity(self) -> float:
        """Aggregate service rate of the cluster."""
        return sum(self.powers.values())

    def synthetic_config(self) -> SyntheticConfig:
        """The §5.1 synthetic workload, scaled."""
        base = SyntheticConfig(total_capacity=self.total_capacity)
        if self.scale == 1.0:
            return base
        return replace(
            base,
            duration=base.duration * self.scale,
            target_requests=max(
                base.n_filesets, int(base.target_requests * self.scale)
            ),
        )

    def trace_config(self) -> TraceConfig:
        """The DFSTrace-shaped workload, scaled."""
        base = TraceConfig(total_capacity=self.total_capacity)
        if self.scale == 1.0:
            return base
        return replace(
            base,
            duration=base.duration * self.scale,
            target_requests=max(
                base.n_filesets, int(base.target_requests * self.scale)
            ),
        )

    def cluster_config(self) -> ClusterConfig:
        """Driver configuration for this experiment."""
        return ClusterConfig(
            server_powers=dict(self.powers),
            tuning_interval=self.tuning_interval,
            cache=self.cache,
        )


def paper_config(seed: int = 1, scale: float = 1.0) -> ExperimentConfig:
    """The paper's configuration at the requested scale."""
    return ExperimentConfig(seed=seed, scale=scale)
