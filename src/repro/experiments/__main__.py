"""Command-line entry point: ``python -m repro.experiments``.

Examples::

    python -m repro.experiments --figure fig5
    python -m repro.experiments --figure fig8 --scale 0.2 --seed 7
    python -m repro.experiments --all --scale 0.1
"""

from __future__ import annotations

import argparse
import sys
import time

from .figures import FIGURES
from .report import run_all_figures, run_figure


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the figures of Wu & Burns, HPDC 2004.",
    )
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--figure", choices=sorted(FIGURES), help="run one figure")
    group.add_argument("--all", action="store_true", help="run every figure")
    parser.add_argument("--seed", type=int, default=1, help="workload seed")
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="experiment scale in (0, 1]; 1.0 is the paper-sized run",
    )
    args = parser.parse_args(argv)

    t0 = time.time()
    if args.all:
        for name, text in run_all_figures(seed=args.seed, scale=args.scale).items():
            print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
            print(text)
    else:
        print(run_figure(args.figure, seed=args.seed, scale=args.scale))
    print(f"\n[done in {time.time() - t0:.1f}s]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
