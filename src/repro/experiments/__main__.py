"""Command-line entry point: ``python -m repro.experiments``.

Examples::

    python -m repro.experiments --figure fig5
    python -m repro.experiments --figure fig8 --scale 0.2 --seed 7
    python -m repro.experiments --all --scale 0.1
    python -m repro.experiments chaos --seed 1
    python -m repro.experiments chaos --smoke --out /tmp/bench.json
    python -m repro.experiments scale --smoke
    python -m repro.experiments scale --out BENCH_scale.json
    python -m repro.experiments chaos-scale --smoke
    python -m repro.experiments chaos-scale --out BENCH_chaos_scale.json
    python -m repro.experiments control --smoke
    python -m repro.experiments control --out BENCH_control.json
"""

from __future__ import annotations

import argparse
import sys
import time

from .figures import FIGURES
from .report import run_all_figures, run_figure


def chaos_main(argv=None) -> int:
    """The ``chaos`` subcommand: fault-rate sweep → BENCH_robustness.json."""
    from .chaos import (
        DEFAULT_FAULT_RATES,
        DEFAULT_SCALE,
        render_chaos,
        run_chaos_sweep,
        write_robustness_bench,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments chaos",
        description="Robustness sweep: seeded fault injection under "
        "continuous invariant checking.",
    )
    parser.add_argument("--seed", type=int, default=1, help="chaos + workload seed")
    parser.add_argument(
        "--scale", type=float, default=DEFAULT_SCALE, help="experiment scale in (0, 1]"
    )
    parser.add_argument(
        "--fault-rates",
        type=float,
        nargs="+",
        default=list(DEFAULT_FAULT_RATES),
        help="faults per simulated second, one run each",
    )
    parser.add_argument(
        "--out",
        default="BENCH_robustness.json",
        help="output path for the bench JSON",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny single-rate run (CI): scale 0.02, one fault rate",
    )
    args = parser.parse_args(argv)

    scale = 0.02 if args.smoke else args.scale
    # Smoke keeps the run tiny but picks the stormiest rate so faults
    # actually land (the quiet rate draws ~0 events at this scale).
    rates = [max(args.fault_rates)] if args.smoke else args.fault_rates
    t0 = time.time()
    payload = run_chaos_sweep(seed=args.seed, scale=scale, fault_rates=rates)
    write_robustness_bench(payload, args.out)
    print(render_chaos(payload))
    violations = sum(row["invariant_violations"] for row in payload["rows"])
    print(f"\nwrote {args.out}", file=sys.stderr)
    print(f"[done in {time.time() - t0:.1f}s]", file=sys.stderr)
    if violations:
        print(f"INVARIANT VIOLATIONS: {violations}", file=sys.stderr)
        return 1
    return 0


def scale_main(argv=None) -> int:
    """The ``scale`` subcommand: vectorized sweep → BENCH_scale.json."""
    from .scale import (
        DEFAULT_POINTS,
        SCALE_POLICIES,
        SMOKE_POINTS,
        render_scale,
        run_scale_sweep,
        write_scale_bench,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments scale",
        description="Planet-scale vectorized sweep: ANU vs bounded-load "
        "consistent hashing vs JSQ(d), up to 1000 servers / 1M file sets.",
    )
    parser.add_argument("--seed", type=int, default=1, help="workload seed")
    parser.add_argument(
        "--policies",
        nargs="+",
        default=list(SCALE_POLICIES),
        help=f"policies to sweep (default: {' '.join(SCALE_POLICIES)})",
    )
    parser.add_argument(
        "--out",
        default="BENCH_scale.json",
        help="output path for the bench JSON",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-sized subset (CI): tiny points, same code path",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=1,
        help="drive each run N times and report the best (timing noise); "
        "repeats > 1 forces --workers 1 so drive timing owns its core",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan-out processes (default: REPRO_PARALLEL_WORKERS or CPU count)",
    )
    args = parser.parse_args(argv)

    points = SMOKE_POINTS if args.smoke else DEFAULT_POINTS
    t0 = time.time()
    payload = run_scale_sweep(
        points=points,
        policies=args.policies,
        seed=args.seed,
        repeats=args.repeats,
        workers=args.workers,
    )
    write_scale_bench(payload, args.out)
    print(render_scale(payload))
    print(f"\nwrote {args.out}", file=sys.stderr)
    print(f"[done in {time.time() - t0:.1f}s]", file=sys.stderr)
    return 0


def chaos_scale_main(argv=None) -> int:
    """The ``chaos-scale`` subcommand: vectorized chaos → BENCH_chaos_scale.json."""
    from .chaos_scale import (
        CHAOS_SCALE_POLICIES,
        DEFAULT_POINTS,
        SMOKE_POINTS,
        render_chaos_scale,
        run_chaos_scale_sweep,
        write_chaos_scale_bench,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments chaos-scale",
        description="Chaos at planet scale: compiled fault timelines on the "
        "vectorized path, paper scale up to 1000 servers / 100k file sets.",
    )
    parser.add_argument("--seed", type=int, default=1, help="chaos + workload seed")
    parser.add_argument(
        "--policies",
        nargs="+",
        default=list(CHAOS_SCALE_POLICIES),
        help=f"policies to sweep (default: {' '.join(CHAOS_SCALE_POLICIES)})",
    )
    parser.add_argument(
        "--out",
        default="BENCH_chaos_scale.json",
        help="output path for the bench JSON",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-sized subset (CI): tiny points, same code path",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan-out processes (default: REPRO_PARALLEL_WORKERS or CPU count)",
    )
    args = parser.parse_args(argv)

    points = SMOKE_POINTS if args.smoke else DEFAULT_POINTS
    t0 = time.time()
    payload = run_chaos_scale_sweep(
        points=points, policies=args.policies, seed=args.seed, workers=args.workers
    )
    write_chaos_scale_bench(payload, args.out)
    print(render_chaos_scale(payload))
    violations = sum(row["invariant_violations"] for row in payload["rows"])
    lost = sum(row["requests_lost"] for row in payload["rows"])
    print(f"\nwrote {args.out}", file=sys.stderr)
    print(f"[done in {time.time() - t0:.1f}s]", file=sys.stderr)
    if violations or lost:
        print(
            f"INVARIANT VIOLATIONS: {violations}, LOST REQUESTS: {lost}",
            file=sys.stderr,
        )
        return 1
    return 0


def control_main(argv=None) -> int:
    """The ``control`` subcommand: controller ablation → BENCH_control.json."""
    from .control import (
        CONTROL_CONTROLLERS,
        CONTROL_SCENARIOS,
        DEFAULT_POINTS,
        SMOKE_POINTS,
        render_control,
        run_control_sweep,
        write_control_bench,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments control",
        description="Controller ablation: multiplicative / PI / pole-placement "
        "/ brownout / forecast under hotspot, churn, and flash-crowd stress, "
        "at paper scale and 1000-server vector scale.",
    )
    parser.add_argument("--seed", type=int, default=1, help="workload seed")
    parser.add_argument(
        "--controllers",
        nargs="+",
        default=list(CONTROL_CONTROLLERS),
        help=f"controllers to sweep (default: {' '.join(CONTROL_CONTROLLERS)})",
    )
    parser.add_argument(
        "--scenarios",
        nargs="+",
        default=list(CONTROL_SCENARIOS),
        help=f"scenarios to sweep (default: {' '.join(CONTROL_SCENARIOS)})",
    )
    parser.add_argument(
        "--out",
        default="BENCH_control.json",
        help="output path for the bench JSON",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-sized subset (CI): tiny points, same code path",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan-out processes (default: REPRO_PARALLEL_WORKERS or CPU count)",
    )
    args = parser.parse_args(argv)

    points = SMOKE_POINTS if args.smoke else DEFAULT_POINTS
    t0 = time.time()
    payload = run_control_sweep(
        points=points,
        controllers=args.controllers,
        scenarios=args.scenarios,
        seed=args.seed,
        workers=args.workers,
    )
    write_control_bench(payload, args.out)
    print(render_control(payload))
    print(f"\nwrote {args.out}", file=sys.stderr)
    print(f"[done in {time.time() - t0:.1f}s]", file=sys.stderr)
    return 0


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "chaos":
        return chaos_main(argv[1:])
    if argv and argv[0] == "scale":
        return scale_main(argv[1:])
    if argv and argv[0] == "chaos-scale":
        return chaos_scale_main(argv[1:])
    if argv and argv[0] == "control":
        return control_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the figures of Wu & Burns, HPDC 2004.",
    )
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--figure", choices=sorted(FIGURES), help="run one figure")
    group.add_argument("--all", action="store_true", help="run every figure")
    parser.add_argument("--seed", type=int, default=1, help="workload seed")
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="experiment scale in (0, 1]; 1.0 is the paper-sized run",
    )
    args = parser.parse_args(argv)

    t0 = time.time()
    if args.all:
        for name, text in run_all_figures(seed=args.seed, scale=args.scale).items():
            print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
            print(text)
    else:
        print(run_figure(args.figure, seed=args.seed, scale=args.scale))
    print(f"\n[done in {time.time() - t0:.1f}s]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
