"""Content-addressed caching for workloads and experiment results.

Every figure and benchmark replays deterministic simulations: the same
``(workload, config, system)`` triple always produces the same
:class:`~repro.engine.record.ClusterResult`, and the same
``(SyntheticConfig, seed)`` pair always produces the same 66k–112k
request schedule. This module stops the harness from recomputing those
fixed points:

* an in-process memo for synthetic workloads
  (:func:`cached_synthetic`) — each caller still receives a pristine
  copy, because requests carry per-run mutable state;
* an on-disk, content-hash-keyed store (:class:`ExperimentCache`) for
  both workloads and results, shared across processes and sessions;
* :func:`result_fingerprint` — a canonical SHA-256 digest over every
  measured field of a result, used by the determinism tests to assert
  that parallel and sequential execution are *byte-identical*.

Cache keys mix in ``repro.__version__`` and a schema version, so stale
entries from older code are simply never hit. Environment knobs:

``REPRO_CACHE=off``
    Disable the on-disk cache entirely (in-process memo still applies).
    Accepted values: ``on/off``, ``1/0``, ``true/false``, ``yes/no``
    (case-insensitive); anything else raises a :class:`ValueError`.
``REPRO_CACHE_DIR=<path>``
    Override the on-disk location (default ``~/.cache/repro-sim``).

Corrupt or truncated cache files (killed writer on a non-atomic
filesystem, disk error, partial copy) are treated as misses, *deleted*,
and recomputed — a bad entry can never wedge the harness or survive to
poison the next run.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from .. import __version__
from ..engine.record import ClusterResult
from ..knobs import env_flag, register_knob
from ..workloads.synthetic import SyntheticConfig, Workload, generate_synthetic
from .config import ExperimentConfig

__all__ = [
    "cached_synthetic",
    "clear_memo",
    "workload_fingerprint",
    "result_fingerprint",
    "ExperimentCache",
    "default_cache",
]

#: Bump when the pickled layout of Workload/ClusterResult changes.
_SCHEMA = 1

register_knob(
    "REPRO_CACHE",
    kind="flag",
    default=True,
    help="enable/disable the on-disk workload+result cache",
)
register_knob(
    "REPRO_CACHE_DIR",
    kind="path",
    default="~/.cache/repro-sim",
    help="override the on-disk cache location",
)


def _cache_enabled_from_env() -> bool:
    """Parse ``REPRO_CACHE`` strictly; a typo must not silently enable."""
    return env_flag("REPRO_CACHE", default=True)

# ---------------------------------------------------------------------- #
# in-process workload memo
# ---------------------------------------------------------------------- #
_workload_memo: Dict[Tuple[SyntheticConfig, int], Workload] = {}


def cached_synthetic(
    config: SyntheticConfig,
    seed: int,
    cache: Optional["ExperimentCache"] = None,
) -> Workload:
    """Memoized :func:`generate_synthetic`.

    Returns a *fresh copy* (pristine, un-served request objects) on
    every call — the memo holds a master that is never handed out.
    With ``cache`` given (or the default cache enabled), misses also
    consult and populate the on-disk store.
    """
    key = (config, int(seed))
    master = _workload_memo.get(key)
    if master is None:
        store = cache if cache is not None else default_cache()
        master = store.get_workload(config, seed) if store.enabled else None
        if master is None:
            master = generate_synthetic(config, seed=seed)
            if store.enabled:
                store.put_workload(config, seed, master)
        _workload_memo[key] = master
    return master.fork()


def clear_memo() -> None:
    """Drop the in-process workload memo (tests and memory pressure)."""
    _workload_memo.clear()


# ---------------------------------------------------------------------- #
# fingerprints
# ---------------------------------------------------------------------- #
def _hash_update(h, *parts: object) -> None:
    for part in parts:
        h.update(repr(part).encode("utf-8"))
        h.update(b"\x00")


def workload_fingerprint(workload: Workload) -> str:
    """Content hash of a workload's schedule (names, times, work)."""
    h = hashlib.sha256()
    _hash_update(h, "workload", _SCHEMA, workload.duration, workload.catalog.names)
    h.update(np.ascontiguousarray(workload._arrivals).tobytes())
    h.update(np.ascontiguousarray(workload._works).tobytes())
    h.update(np.ascontiguousarray(workload._fs_idx).tobytes())
    return h.hexdigest()


def result_fingerprint(result: ClusterResult) -> str:
    """Canonical digest over every measured field of a result.

    Two results with equal fingerprints are byte-identical in all the
    data the figures consume: per-request latencies, per-server series
    and tallies, the movement log, counters, and the event count. This
    is the equality the parallel runner is held to.
    """
    h = hashlib.sha256()
    _hash_update(
        h,
        "result",
        _SCHEMA,
        result.policy_name,
        result.duration,
        result.submitted,
        result.completed,
        result.shared_state_entries,
        result.events_processed,
    )
    h.update(np.ascontiguousarray(result.all_latencies, dtype=np.float64).tobytes())
    for m in result.movement:
        _hash_update(h, "move", m.round_index, m.time, m.kind, m.moves, m.moved_work_share)
    for sid in sorted(result.server_latency, key=repr):
        series = result.server_latency[sid]
        _hash_update(h, "series", sid, len(series))
        h.update(series.times().tobytes())
        h.update(series.values().tobytes())
        tally = result.server_tally[sid]
        _hash_update(h, "tally", sid, tally.count, tally.mean, tally.minimum, tally.maximum)
        _hash_update(
            h,
            "server",
            sid,
            result.server_requests.get(sid),
            result.server_utilization.get(sid),
        )
    return h.hexdigest()


def _config_token(config: ExperimentConfig) -> str:
    """Canonical JSON of an experiment configuration."""
    return json.dumps(asdict(config), sort_keys=True, default=repr)


def _synthetic_token(config: SyntheticConfig, seed: int) -> str:
    return json.dumps({"cfg": asdict(config), "seed": int(seed)}, sort_keys=True)


# ---------------------------------------------------------------------- #
# on-disk store
# ---------------------------------------------------------------------- #
class ExperimentCache:
    """Content-hash-keyed pickle store for workloads and results.

    Entries are written atomically (temp file + rename) so concurrent
    workers can share one directory. Keys embed the package version and
    a schema version; entries written by incompatible code are never
    read. The store degrades to a no-op when disabled.
    """

    def __init__(self, root: Optional[os.PathLike] = None, enabled: Optional[bool] = None) -> None:
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR") or (
                Path.home() / ".cache" / "repro-sim"
            )
        self.root = Path(root)
        if enabled is None:
            enabled = _cache_enabled_from_env()
        self.enabled = bool(enabled)
        #: Hit/miss counters (diagnostics and tests).
        self.hits = 0
        self.misses = 0
        #: Corrupt/truncated entries deleted on read.
        self.evictions = 0

    # -- keys ----------------------------------------------------------- #
    def _key(self, kind: str, token: str) -> str:
        h = hashlib.sha256()
        _hash_update(h, kind, __version__, _SCHEMA, token)
        return h.hexdigest()

    def workload_key(self, config: SyntheticConfig, seed: int) -> str:
        """Cache key of a synthetic workload."""
        return self._key("workload", _synthetic_token(config, seed))

    def result_key(
        self,
        system: str,
        workload: Workload,
        config: ExperimentConfig,
        n_virtual: Optional[int] = None,
    ) -> str:
        """Cache key of one ``system × workload × config`` result."""
        token = json.dumps(
            {
                "system": system,
                "workload": workload_fingerprint(workload),
                "config": _config_token(config),
                "n_virtual": n_virtual,
            },
            sort_keys=True,
        )
        return self._key("result", token)

    # -- raw IO --------------------------------------------------------- #
    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def _load(self, key: str):
        if not self.enabled:
            return None
        path = self._path(key)
        try:
            fh = open(path, "rb")
        except OSError:
            # Plain miss: no entry (or unreadable filesystem).
            self.misses += 1
            return None
        try:
            with fh:
                value = pickle.load(fh)
        except Exception:
            # The file exists but does not decode: corrupt or truncated.
            # Delete it so the recomputed value can take its place —
            # leaving it would repeat the failed decode on every read.
            self.evictions += 1
            self.misses += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        self.hits += 1
        return value

    def _store(self, key: str, value) -> None:
        if not self.enabled:
            return
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            # Read-only or full filesystem: caching is best-effort.
            pass

    # -- typed helpers --------------------------------------------------- #
    def get_workload(self, config: SyntheticConfig, seed: int) -> Optional[Workload]:
        """Load a cached workload, or ``None`` on a miss."""
        return self._load(self.workload_key(config, seed))

    def put_workload(self, config: SyntheticConfig, seed: int, workload: Workload) -> None:
        """Store a workload under its content key."""
        self._store(self.workload_key(config, seed), workload)

    def get_result(self, key: str) -> Optional[ClusterResult]:
        """Load a cached result by key, or ``None`` on a miss."""
        return self._load(key)

    def put_result(self, key: str, result: ClusterResult) -> None:
        """Store a result under ``key``."""
        self._store(key, result)

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        state = "on" if self.enabled else "off"
        return f"<ExperimentCache {state} root={str(self.root)!r} hits={self.hits} misses={self.misses}>"


_default: Optional[ExperimentCache] = None


def default_cache() -> ExperimentCache:
    """Process-wide cache honouring the ``REPRO_CACHE*`` environment."""
    global _default
    if _default is None:
        _default = ExperimentCache()
    return _default
