"""Epoch batching: wall-clock latency observations -> report batches.

The simulator's :class:`~repro.cluster.server.FileServer` closes a
measurement window every tuning interval and emits one
:class:`~repro.core.tuning.LatencyReport`. A live deployment has no
simulated server object to do that bookkeeping — observations arrive
as (server, latency) samples over the wire, whenever clients send them.
:class:`EpochBatcher` is the missing half: it accumulates samples per
server and, when the service's epoch timer fires, closes the window
and emits exactly the report batch a row of simulated file servers
would have produced — same mean/``nan`` convention, same
``idle_rounds`` counter, same previous-window mean for the burst
filter. Controllers cannot tell whether their reports came from the
simulator or from sockets, which is precisely what the digital-twin
parity harness relies on.

The batcher is deliberately pure bookkeeping: no clocks, no sockets,
no thresholds. The caller owns the epoch timer and passes the window
boundaries in.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Tuple

from ..core.errors import ConfigurationError
from ..core.tuning import LatencyReport

__all__ = ["EpochBatcher"]


class EpochBatcher:
    """Accumulates per-server latency samples into per-epoch reports.

    Mirrors ``FileServer.interval_report`` semantics per server:

    * a server with no samples this epoch reports ``mean_latency=nan``
      and an incremented ``idle_rounds`` (reset to zero on activity);
    * every report carries the server's *previous* epoch mean, so the
      delegate's burst filter works unchanged;
    * the report batch covers every tracked server, active or idle —
      the controller's idle-probe path needs the idle rows.
    """

    def __init__(self, server_ids: Iterable[object] = ()) -> None:
        self._sums: Dict[object, float] = {}
        self._counts: Dict[object, int] = {}
        self._idle_rounds: Dict[object, int] = {}
        self._prev_mean: Dict[object, float] = {}
        for sid in server_ids:
            self.track(sid)

    # ------------------------------------------------------------------ #
    # membership
    # ------------------------------------------------------------------ #
    def track(self, server_id: object) -> None:
        """Start batching for ``server_id`` (idempotent)."""
        if server_id in self._sums:
            return
        self._sums[server_id] = 0.0
        self._counts[server_id] = 0
        self._idle_rounds[server_id] = 0
        self._prev_mean[server_id] = math.nan

    def forget(self, server_id: object) -> None:
        """Stop batching for ``server_id`` (idempotent); drops samples."""
        self._sums.pop(server_id, None)
        self._counts.pop(server_id, None)
        self._idle_rounds.pop(server_id, None)
        self._prev_mean.pop(server_id, None)

    @property
    def server_ids(self) -> List[object]:
        """Servers currently tracked (insertion order)."""
        return list(self._sums)

    # ------------------------------------------------------------------ #
    # the observe path
    # ------------------------------------------------------------------ #
    def observe(self, server_id: object, latency: float, count: int = 1) -> None:
        """Record ``count`` completed requests with total-mean ``latency``.

        ``latency`` is the *mean* latency of the batch (a single
        request's latency when ``count == 1``); the batcher weights it
        by ``count`` so pre-aggregated client reports fold in exactly.
        Samples for untracked servers are rejected loudly — a report
        for a server the layout does not know is a protocol bug, not
        noise to swallow.
        """
        if server_id not in self._sums:
            raise ConfigurationError(
                f"latency sample for untracked server {server_id!r}"
            )
        if count < 1:
            raise ConfigurationError(f"sample count must be >= 1, got {count}")
        if not math.isfinite(latency) or latency < 0:
            raise ConfigurationError(
                f"latency must be a finite non-negative number, got {latency!r}"
            )
        self._sums[server_id] += latency * count
        self._counts[server_id] += count

    def pending(self, server_id: object) -> int:
        """Samples accumulated for ``server_id`` in the open epoch."""
        return self._counts.get(server_id, 0)

    # ------------------------------------------------------------------ #
    # epoch close
    # ------------------------------------------------------------------ #
    def close_epoch(self, window: Tuple[float, float] = (0.0, 0.0)) -> List[LatencyReport]:
        """Close the open epoch; one report per tracked server.

        ``window`` is the wall-clock ``(start, end)`` of the epoch,
        recorded on every report for diagnostics (the simulator puts
        simulated time there; the service puts monotonic offsets).
        """
        reports: List[LatencyReport] = []
        for sid in self._sums:
            count = self._counts[sid]
            if count:
                mean = self._sums[sid] / count
                self._idle_rounds[sid] = 0
            else:
                mean = math.nan
                self._idle_rounds[sid] += 1
            reports.append(
                LatencyReport(
                    server_id=sid,
                    mean_latency=mean,
                    request_count=count,
                    window=window,
                    idle_rounds=self._idle_rounds[sid],
                    prev_mean_latency=self._prev_mean[sid],
                )
            )
            self._prev_mean[sid] = mean
            self._sums[sid] = 0.0
            self._counts[sid] = 0
        return reports

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        open_samples = sum(self._counts.values())
        return f"<EpochBatcher servers={len(self._sums)} pending={open_samples}>"
