"""Brownout-style service-level control of region lengths.

Brownout (Klein et al.; the rubbis exemplars in SNIPPETS.md) regulates
a saturated *service level* ``θ ∈ [θ_min, 1]`` per replica with a
pole-placed update over an estimated process gain:

``θ += (1/alpha)·(1 − pole)·(setpoint − latency)``, ``alpha ≈ latency/θ``

which simplifies to the multiplicative saturated form implemented
here: ``θ *= 1 + (1 − pole)·(setpoint/latency − 1)``. We reuse the
idea with the mapped-region share as the dimmer: each server's target
length is proportional to its service level, the setpoint is the
system-average latency (a relative objective — chasing an absolute
latency target would fight the offered load), and the measured latency
is EWMA-smoothed before entering the loop, exactly as the exemplar
smooths its monitor output.

The level vector and the smoother are replicated delegate state
(:meth:`~repro.control.base.Controller.fork` copies them), and the
saturation bounds make the controller robust to measurement spikes: a
single pathological window can at worst slam a level to ``min_level``,
never to zero — so every server keeps a probe-sized region and
re-entry is built in (no separate idle seeding needed for levels).
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Sequence

from ..core.errors import ConfigurationError
from ..core.interval import HALF
from ..core.tuning import LatencyReport
from .base import Controller

__all__ = ["BrownoutController"]


class BrownoutController(Controller):
    """Saturated per-server service levels drive the region shares."""

    name = "brownout"
    stateless = False

    def __init__(
        self,
        pole: float = 0.6,
        smoothing: float = 0.5,
        min_level: float = 0.02,
        floor_length: float = 1e-4,
    ) -> None:
        if not 0.0 <= pole < 1.0:
            raise ConfigurationError(f"pole must be in [0, 1), got {pole}")
        if not 0.0 < smoothing <= 1.0:
            raise ConfigurationError(
                f"smoothing must be in (0, 1], got {smoothing}"
            )
        if not 0.0 < min_level < 1.0:
            raise ConfigurationError(
                f"min_level must be in (0, 1), got {min_level}"
            )
        self.pole = float(pole)
        self.smoothing = float(smoothing)
        self.min_level = float(min_level)
        self.floor_length = float(floor_length)
        self._validate_common()
        #: Replicated state: per-server service level in [min_level, 1].
        self._level: Dict[object, float] = {}
        #: Replicated state: EWMA-smoothed latency per server.
        self._smooth: Dict[object, float] = {}

    def observe(
        self,
        current_lengths: Mapping[object, float],
        reports: Sequence[LatencyReport],
    ) -> Dict[object, float]:
        by_id = self._reports_by_id(current_lengths, reports)
        setpoint = self.system_average(reports)
        targets: Dict[object, float] = {}
        for sid, length in current_lengths.items():
            report = by_id.get(sid)
            level = self._level.get(sid, 1.0)
            if (
                report is not None
                and not report.is_idle
                and not math.isnan(setpoint)
                and setpoint > 0
            ):
                latency = max(report.mean_latency, 1e-12)
                prev = self._smooth.get(sid, latency)
                smoothed = self.smoothing * latency + (1.0 - self.smoothing) * prev
                self._smooth[sid] = smoothed
                # θ *= 1 + (1-pole)·(setpoint/ŷ − 1), saturated.
                level *= 1.0 + (1.0 - self.pole) * (setpoint / smoothed - 1.0)
                level = min(max(level, self.min_level), 1.0)
                self._level[sid] = level
            # Idle (or report-less) servers hold their level: the
            # saturation floor already guarantees a probe-sized share.
            targets[sid] = level * HALF
        return targets
