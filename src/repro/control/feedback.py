"""Classical feedback controllers over the region-length actuator.

Both controllers below treat each server's relative latency error
``e_i = (avg − latency_i) / avg`` as the process variable and its
mapped-region length as the actuator — positive error (faster than the
system average) grows the region, negative shrinks it. Downstream
normalization makes the update effectively zero-sum, so only relative
magnitudes matter.

* :class:`PIController` — proportional-integral with conditional
  anti-windup: the integrator only accumulates while the actuator is
  unsaturated, the textbook cure for limit-cycling against the
  per-round step clamp.
* :class:`PolePlacementController` — first-order pole placement in the
  style of the brownout literature (see SNIPPETS rubbis exemplar): the
  process gain is estimated as ``alpha ≈ latency / length`` and the
  update ``Δlength = (1 − pole)·error / alpha`` places the closed-loop
  pole at ``pole``, i.e. the latency gap contracts by ``(1 − pole)``
  per round. Stateless — pole placement needs no memory, which keeps
  delegate fail-over trivially free.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Sequence

from ..core.errors import ConfigurationError
from ..core.tuning import LatencyReport
from .base import Controller

__all__ = ["PIController", "PolePlacementController"]


class PIController(Controller):
    """Proportional-integral control of relative latency error.

    Per server: ``factor = 1 + kp·e + ki·I`` with ``I`` the running
    error integral, the factor clamped to ``[1/max_step, max_step]``.
    The integral is replicated delegate state — :meth:`fork` copies it,
    so a failed-over delegate resumes with the identical integrator.
    """

    name = "pi"
    stateless = False

    def __init__(
        self,
        kp: float = 0.8,
        ki: float = 0.25,
        max_step: float = 1.5,
        deadband: float = 0.05,
        floor_length: float = 1e-4,
    ) -> None:
        if kp <= 0:
            raise ConfigurationError(f"kp must be > 0, got {kp}")
        if ki < 0:
            raise ConfigurationError(f"ki must be >= 0, got {ki}")
        if max_step <= 1.0:
            raise ConfigurationError(f"max_step must be > 1, got {max_step}")
        if deadband < 0:
            raise ConfigurationError(f"deadband must be >= 0, got {deadband}")
        self.kp = float(kp)
        self.ki = float(ki)
        self.max_step = float(max_step)
        self.deadband = float(deadband)
        self.floor_length = float(floor_length)
        self._validate_common()
        #: Replicated state: per-server error integral.
        self._integral: Dict[object, float] = {}

    def observe(
        self,
        current_lengths: Mapping[object, float],
        reports: Sequence[LatencyReport],
    ) -> Dict[object, float]:
        by_id = self._reports_by_id(current_lengths, reports)
        avg = self.system_average(reports)
        lo, hi = 1.0 / self.max_step, self.max_step
        targets: Dict[object, float] = {}
        for sid, length in current_lengths.items():
            report = by_id.get(sid)
            if report is None or report.is_idle or math.isnan(avg) or avg <= 0:
                idle_rounds = report.idle_rounds if report is not None else 1
                targets[sid] = self._idle_target(length, idle_rounds)
                continue
            latency = max(report.mean_latency, 1e-12)
            error = (avg - latency) / avg
            if abs(error) <= self.deadband:
                error = 0.0
            integral = self._integral.get(sid, 0.0)
            factor = 1.0 + self.kp * error + self.ki * (integral + error)
            if lo < factor < hi:
                # Conditional anti-windup: integrate only while the
                # actuator is unsaturated, so the integral cannot wind
                # far past what the clamp will ever let it apply.
                self._integral[sid] = integral + error
            factor = min(max(factor, lo), hi)
            targets[sid] = length * factor
        return targets


class PolePlacementController(Controller):
    """First-order pole placement on the latency gap (stateless).

    ``Δlength = (1 − pole)·length·(avg/latency − 1)``: with process
    gain estimated as ``latency/length``, the closed-loop latency gap
    decays by ``(1 − pole)`` per round. ``pole → 1`` is sluggish,
    ``pole → 0`` one-shot (and oscillatory against model error); the
    per-round step stays clamped to ``[1/max_step, max_step]``.
    """

    name = "pole"
    stateless = True

    def __init__(
        self,
        pole: float = 0.5,
        max_step: float = 1.5,
        deadband: float = 0.05,
        floor_length: float = 1e-4,
    ) -> None:
        if not 0.0 <= pole < 1.0:
            raise ConfigurationError(f"pole must be in [0, 1), got {pole}")
        if max_step <= 1.0:
            raise ConfigurationError(f"max_step must be > 1, got {max_step}")
        if deadband < 0:
            raise ConfigurationError(f"deadband must be >= 0, got {deadband}")
        self.pole = float(pole)
        self.max_step = float(max_step)
        self.deadband = float(deadband)
        self.floor_length = float(floor_length)
        self._validate_common()

    def observe(
        self,
        current_lengths: Mapping[object, float],
        reports: Sequence[LatencyReport],
    ) -> Dict[object, float]:
        by_id = self._reports_by_id(current_lengths, reports)
        avg = self.system_average(reports)
        targets: Dict[object, float] = {}
        for sid, length in current_lengths.items():
            report = by_id.get(sid)
            if report is None or report.is_idle or math.isnan(avg) or avg <= 0:
                idle_rounds = report.idle_rounds if report is not None else 1
                targets[sid] = self._idle_target(length, idle_rounds)
                continue
            latency = max(report.mean_latency, 1e-12)
            if abs(latency / avg - 1.0) <= self.deadband:
                targets[sid] = length
                continue
            target = length + (1.0 - self.pole) * length * (avg / latency - 1.0)
            lo, hi = length / self.max_step, length * self.max_step
            targets[sid] = min(max(target, lo), hi)
        return targets
