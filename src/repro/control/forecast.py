"""Demand forecasting as a controller *wrapper*.

Every controller in this package is reactive: it moves load only after
a latency imbalance has already been observed. Under non-stationary
demand (the hotspot and flash-crowd scenarios of the control bench)
that means at least one full tuning interval of degraded latency
before any response. :class:`ForecastingController` adds the
feed-forward term: a Holt (double-exponential: level + trend) forecast
of each server's next-interval request demand, used to *pre-scale* the
wrapped controller's targets — a server whose demand is forecast to
rise gets its region trimmed before the latency ever shows it, and
vice versa.

The pre-scale is deliberately gentle: ``(forecast / level)^(-strength)``
clamped to ``[1/prescale_cap, prescale_cap]``, so under stationary
demand (forecast ≈ level) the wrapper is a near-no-op and the wrapped
controller's behaviour — including its convergence proof obligations —
is preserved. Forecast state is replicated delegate state like any
other (:meth:`fork` deep-copies the wrapper *and* the inner
controller).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..core.errors import ConfigurationError
from ..core.tuning import LatencyReport
from .base import Controller
from .multiplicative import MultiplicativeController

__all__ = ["ForecastingController"]


class ForecastingController(Controller):
    """Holt per-server demand forecast pre-scaling an inner controller."""

    stateless = False

    def __init__(
        self,
        inner: Optional[Controller] = None,
        alpha: float = 0.5,
        beta: float = 0.3,
        horizon: float = 1.0,
        strength: float = 0.5,
        prescale_cap: float = 1.3,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        if not 0.0 <= beta <= 1.0:
            raise ConfigurationError(f"beta must be in [0, 1], got {beta}")
        if horizon < 0:
            raise ConfigurationError(f"horizon must be >= 0, got {horizon}")
        if strength < 0:
            raise ConfigurationError(f"strength must be >= 0, got {strength}")
        if prescale_cap <= 1.0:
            raise ConfigurationError(
                f"prescale_cap must be > 1, got {prescale_cap}"
            )
        self.inner = inner if inner is not None else MultiplicativeController()
        self.name = f"forecast+{self.inner.name}"
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.horizon = float(horizon)
        self.strength = float(strength)
        self.prescale_cap = float(prescale_cap)
        #: Replicated state: per-server Holt (level, trend) on request
        #: counts.
        self._holt: Dict[object, Tuple[float, float]] = {}

    # The inner controller owns the scalar knobs the consumers read.
    @property
    def floor_length(self) -> float:  # type: ignore[override]
        return self.inner.floor_length

    @property
    def averaging(self) -> str:  # type: ignore[override]
        return self.inner.averaging

    def system_average(self, reports: Sequence[LatencyReport]) -> float:
        return self.inner.system_average(reports)

    def observe(
        self,
        current_lengths: Mapping[object, float],
        reports: Sequence[LatencyReport],
    ) -> Dict[object, float]:
        by_id = self._reports_by_id(current_lengths, reports)
        targets = self.inner.observe(current_lengths, reports)
        lo, hi = 1.0 / self.prescale_cap, self.prescale_cap
        for sid in current_lengths:
            report = by_id.get(sid)
            if report is None or report.is_idle:
                # No demand signal: decay any stored trend toward zero
                # rather than extrapolating a stale one forever.
                held = self._holt.get(sid)
                if held is not None:
                    self._holt[sid] = (held[0], (1.0 - self.beta) * held[1])
                continue
            demand = float(report.request_count)
            held = self._holt.get(sid)
            if held is None:
                self._holt[sid] = (demand, 0.0)
                continue
            level, trend = held
            new_level = self.alpha * demand + (1.0 - self.alpha) * (level + trend)
            new_trend = self.beta * (new_level - level) + (1.0 - self.beta) * trend
            self._holt[sid] = (new_level, new_trend)
            forecast = max(new_level + self.horizon * new_trend, 1e-9)
            # Demand forecast rising → trim the region ahead of the
            # latency signal; falling → grow it. Neutral at no change.
            scale = (forecast / max(new_level, 1e-9)) ** (-self.strength)
            targets[sid] *= min(max(scale, lo), hi)
        return targets
