"""The paper's multiplicative averaging rule as a :class:`Controller`.

This is the reference controller: it *is* the
:class:`~repro.core.tuning.TuningPolicy` decision procedure, lifted
behind the protocol by composition rather than reimplementation —
``observe`` delegates to ``compute_targets`` verbatim, so the
refactored path is bit-for-bit the pre-refactor path (pinned by the
golden-fingerprint tests in ``tests/engine/test_equivalence.py`` and
the direct equivalence battery in ``tests/control/test_golden.py``).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from ..core.tuning import LatencyReport, TuningPolicy
from .base import Controller

__all__ = ["MultiplicativeController"]


class MultiplicativeController(Controller):
    """Scale regions by ``(avg / latency) ** gain`` around the average.

    All knobs live on the wrapped :class:`TuningPolicy` (the public
    configuration surface predating this package); the controller adds
    nothing but the protocol.
    """

    name = "multiplicative"
    stateless = True

    def __init__(self, policy: Optional[TuningPolicy] = None) -> None:
        #: The wrapped policy — the single source of every knob.
        self.policy = policy if policy is not None else TuningPolicy()

    @property
    def floor_length(self) -> float:  # type: ignore[override]
        return self.policy.floor_length

    @property
    def averaging(self) -> str:  # type: ignore[override]
        return self.policy.averaging

    def observe(
        self,
        current_lengths: Mapping[object, float],
        reports: Sequence[LatencyReport],
    ) -> Dict[object, float]:
        return self.policy.compute_targets(current_lengths, reports)

    def system_average(self, reports: Sequence[LatencyReport]) -> float:
        return self.policy.system_average(reports)
