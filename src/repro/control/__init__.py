"""``repro.control`` — the pluggable tuning-controller layer.

One protocol (:class:`Controller`), several decision procedures:

======================  ==============================================
``multiplicative``      The paper's averaging rule (the default;
                        bit-for-bit the old ``TuningPolicy`` path).
``pi``                  Proportional-integral with anti-windup.
``pole``                First-order pole placement (stateless).
``brownout``            Saturated service-level dimmer with EWMA
                        smoothing (rubbis/brownout style).
``forecast``            Holt demand-forecast wrapper around any of the
                        above (default inner: multiplicative).
======================  ==============================================

Every consumer of tuning decisions — the scalar
:class:`~repro.core.delegate.Delegate`, :class:`~repro.core.anu.ANUManager`,
the vectorized :class:`~repro.policies.vector.VectorANU`, the
distributed control plane, and the convergence analysis — resolves its
controller through :func:`as_controller`, so the default lives in
exactly one place (:func:`default_controller`) and the scalar and
vector paths can never silently diverge.

Layering: this package sits beside ``repro.core`` (it imports only the
core tuning primitives) and strictly below the engine — importing
``repro.engine``, ``repro.experiments``, or ``repro.cluster`` from
here is banned by ``tools/check_layering.py``.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

from ..core.errors import ConfigurationError
from ..core.tuning import TuningPolicy
from .base import Controller
from .batch import EpochBatcher
from .brownout import BrownoutController
from .feedback import PIController, PolePlacementController
from .forecast import ForecastingController
from .multiplicative import MultiplicativeController

__all__ = [
    "Controller",
    "EpochBatcher",
    "MultiplicativeController",
    "PIController",
    "PolePlacementController",
    "BrownoutController",
    "ForecastingController",
    "CONTROLLERS",
    "default_controller",
    "make_controller",
    "as_controller",
]

#: Registry used by the experiment CLI and the control ablation bench.
CONTROLLERS: Dict[str, Type[Controller]] = {
    MultiplicativeController.name: MultiplicativeController,
    PIController.name: PIController,
    PolePlacementController.name: PolePlacementController,
    BrownoutController.name: BrownoutController,
    "forecast": ForecastingController,
}


def default_controller() -> Controller:
    """The system-wide default tuning rule — the paper's.

    This is *the* factory behind every ``controller=None`` default
    (scalar delegate, ANU manager, vector ANU, convergence analysis):
    change it here and every path changes together.
    """
    return MultiplicativeController(TuningPolicy())


def make_controller(name: str, **kwargs) -> Controller:
    """Instantiate a registered controller by name.

    ``forecast`` accepts an ``inner=<Controller>`` keyword (default:
    multiplicative) alongside its own knobs.
    """
    try:
        cls = CONTROLLERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown controller {name!r}; options: {sorted(CONTROLLERS)}"
        ) from None
    return cls(**kwargs)


def as_controller(obj: Optional[object]) -> Controller:
    """Coerce the accepted spellings of "a tuning rule" to a Controller.

    ``None`` → :func:`default_controller`; a :class:`Controller` passes
    through; a bare :class:`TuningPolicy` (the pre-refactor
    configuration surface, still accepted everywhere) wraps into a
    :class:`MultiplicativeController`.
    """
    if obj is None:
        return default_controller()
    if isinstance(obj, Controller):
        return obj
    if isinstance(obj, TuningPolicy):
        return MultiplicativeController(obj)
    raise ConfigurationError(
        f"expected a Controller, TuningPolicy, or None; got {type(obj).__name__}"
    )
