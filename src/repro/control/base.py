"""The :class:`Controller` protocol — one seam for every tuning rule.

The paper's delegate "examines all latencies and comes up with an
'average' value for the whole system [and] scales down the mapped
regions for servers above the average" (§4). *How* the regions are
scaled is a pluggable decision procedure: the paper's multiplicative
rule is one controller among several (PI, pole placement, brownout,
demand forecasting), all speaking the same contract:

``observe(current_lengths, reports) -> raw targets``

* ``current_lengths`` is the replicated layout state (mapped-region
  length per server), ``reports`` the round's
  :class:`~repro.core.tuning.LatencyReport` batch.
* The returned targets are *not yet normalized*; every consumer runs
  them through :meth:`~repro.core.layout.LayoutEngine.apply_targets`
  (or ``floor_and_normalize``), which floors sub-``floor_length``
  regions to zero and rescales the rest to the half-occupancy sum.

**The fail-over contract.** The paper's delegate is stateless: "if the
delegate fails, the next elected delegate runs the same protocol with
the same information" (§4). Controllers with internal state (PI
integrators, EWMA filters) model that state as *replicated alongside
the layout*: :meth:`fork` produces the exact controller a newly
elected delegate would reconstruct from the replicated state, and two
forks fed identical report sequences must emit identical targets (the
property tests pin this). :meth:`system_average` must remain a pure
function of the reports — the distributed control plane asserts that
an out-of-band forked delegate reaches the manager's average exactly.
"""

from __future__ import annotations

import copy
import math
from abc import ABC, abstractmethod
from typing import Dict, Mapping, Sequence

from ..core.errors import ConfigurationError
from ..core.interval import HALF
from ..core.tuning import AVERAGING_RULES, LatencyReport

__all__ = ["Controller"]


class Controller(ABC):
    """One tuning decision procedure: latency reports in, targets out.

    Subclasses override :meth:`observe`; everything else has sensible
    shared behaviour. Class attributes double as the default knobs —
    instances may shadow them.
    """

    #: Registry / bench name of the rule (subclasses override).
    name: str = "controller"
    #: ``True`` when :meth:`observe` reads no internal state. Stateful
    #: controllers must still be fork-deterministic (see module doc).
    stateless: bool = True
    #: Regions thinner than this are floored to zero when the layout
    #: engine applies the targets (mirrors ``TuningPolicy.floor_length``).
    floor_length: float = 1e-4
    #: Averaging rule for :meth:`system_average` (key into
    #: :data:`~repro.core.tuning.AVERAGING_RULES`).
    averaging: str = "weighted"
    #: Idle-server probe: every ``idle_backoff`` idle rounds, grow the
    #: idle server's region to at least ``idle_seed`` so a parked server
    #: gets re-tested (the paper's weak servers "mostly sit idle").
    idle_seed: float = 0.03
    idle_backoff: int = 5

    # ------------------------------------------------------------------ #
    @abstractmethod
    def observe(
        self,
        current_lengths: Mapping[object, float],
        reports: Sequence[LatencyReport],
    ) -> Dict[object, float]:
        """New raw target lengths for one tuning round.

        Must return a target for *every* server in ``current_lengths``
        and raise :class:`~repro.core.errors.ConfigurationError` on
        reports from servers outside the layout (use
        :meth:`_reports_by_id`).
        """

    def system_average(self, reports: Sequence[LatencyReport]) -> float:
        """The delegate's "average" latency over the *active* reporters.

        Pure in the reports — never reads or writes controller state
        (the distributed control plane's divergence assertion relies on
        this).
        """
        active = [r for r in reports if not r.is_idle]
        if not active:
            return math.nan
        return AVERAGING_RULES[self.averaging](active)

    def fork(self) -> "Controller":
        """The controller a freshly elected delegate reconstructs.

        Deep copy: identical configuration *and* identical replicated
        state, fully isolated from this instance. Stateless controllers
        could return ``self``, but a copy keeps the contract uniform
        (and trivially safe against future state).
        """
        return copy.deepcopy(self)

    # ------------------------------------------------------------------ #
    # shared helpers
    # ------------------------------------------------------------------ #
    def _reports_by_id(
        self,
        current_lengths: Mapping[object, float],
        reports: Sequence[LatencyReport],
    ) -> Dict[object, LatencyReport]:
        """Index reports by server, rejecting out-of-layout reporters."""
        by_id = {r.server_id: r for r in reports}
        unknown = set(by_id) - set(current_lengths)
        if unknown:
            raise ConfigurationError(
                f"reports from servers not in the layout: "
                f"{sorted(map(repr, unknown))}"
            )
        return by_id

    def _idle_target(self, length: float, idle_rounds: int = 1) -> float:
        """Target for a server that served nothing this round."""
        if idle_rounds % self.idle_backoff == 0:
            return max(length, self.idle_seed)
        return length

    def _validate_common(self) -> None:
        """Shared knob validation (call from subclass ``__init__``)."""
        if self.averaging not in AVERAGING_RULES:
            raise ConfigurationError(
                f"unknown averaging rule {self.averaging!r}; "
                f"options: {sorted(AVERAGING_RULES)}"
            )
        if not 0.0 <= self.idle_seed <= HALF:
            raise ConfigurationError(
                f"idle_seed {self.idle_seed} outside [0, 1/2]"
            )
        if self.idle_backoff < 1:
            raise ConfigurationError(
                f"idle_backoff must be >= 1, got {self.idle_backoff}"
            )
        if not 0.0 < self.floor_length < HALF:
            raise ConfigurationError(
                f"floor_length {self.floor_length} outside (0, 1/2)"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return f"<{type(self).__name__} name={self.name!r}>"
