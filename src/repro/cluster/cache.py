"""Server cache model: why moving a file set is expensive.

"It is very costly to move workload of a file set from one server to
another in shared-disk clusters. The releasing server needs to flush
its cache, writing all dirty data to stable storage. The acquiring
server must initialize the file set. Furthermore, the acquiring server
starts with a cold cache, which hinders initial performance." (§5.3)

:class:`CacheModel` turns a shed into two concrete costs:

* **flush work** charged to the *releasing* server — a synchronous
  busy period proportional to the file set's workload share (dirty
  state scales with how hot the file set was);
* a **cold-cache penalty** at the *acquiring* server — requests to the
  moved file set cost ``cold_factor ×`` their work until the warmup
  window elapses.

Setting ``flush_work_scale = 0`` and ``cold_factor = 1`` disables the
model (useful for isolating pure queueing effects in ablations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["CacheConfig", "CacheModel"]


@dataclass(frozen=True)
class CacheConfig:
    """Tunable costs of moving a file set.

    Attributes
    ----------
    flush_work_scale:
        Flush busy-work charged to the releasing server, in units of the
        file set's *mean request work* (a hot file set has more dirty
        cache to write back).
    cold_factor:
        Multiplier (≥ 1) on request work at the acquiring server while
        the file set's cache is cold.
    warmup_time:
        Seconds after acquisition during which the cold factor applies.
    """

    flush_work_scale: float = 4.0
    cold_factor: float = 1.5
    warmup_time: float = 30.0

    def __post_init__(self) -> None:
        if self.flush_work_scale < 0:
            raise ValueError(f"flush_work_scale must be >= 0: {self.flush_work_scale}")
        if self.cold_factor < 1.0:
            raise ValueError(f"cold_factor must be >= 1: {self.cold_factor}")
        if self.warmup_time < 0:
            raise ValueError(f"warmup_time must be >= 0: {self.warmup_time}")

    @property
    def enabled(self) -> bool:
        """``False`` when the configuration is a no-op."""
        return self.flush_work_scale > 0 or (
            self.cold_factor > 1.0 and self.warmup_time > 0
        )


class CacheModel:
    """Tracks cache warmth of (server, file set) pairs.

    The cluster driver notifies the model on every shed; servers consult
    :meth:`work_multiplier` when computing a request's service demand.
    """

    def __init__(self, config: CacheConfig | None = None) -> None:
        self.config = config or CacheConfig()
        # (server_id, fileset) -> time at which the cache becomes warm.
        self._warm_at: Dict[Tuple[object, str], float] = {}
        #: Total flush work charged so far (diagnostic).
        self.total_flush_work = 0.0
        #: Number of sheds processed (diagnostic).
        self.sheds_seen = 0

    def on_shed(
        self, fileset: str, source: object, target: object, now: float, mean_request_work: float
    ) -> float:
        """Record a move; returns the flush work to charge to ``source``.

        The acquiring server's cache for the file set becomes cold until
        ``now + warmup_time``.
        """
        self.sheds_seen += 1
        self._warm_at[(target, fileset)] = now + self.config.warmup_time
        # The releasing server's copy is gone; if the set ever returns
        # it starts cold again.
        self._warm_at.pop((source, fileset), None)
        flush = self.config.flush_work_scale * mean_request_work
        self.total_flush_work += flush
        return flush

    def work_multiplier(self, server: object, fileset: str, now: float) -> float:
        """Service-work multiplier for a request at ``server`` at ``now``."""
        warm_at = self._warm_at.get((server, fileset))
        if warm_at is None or now >= warm_at:
            if warm_at is not None:
                del self._warm_at[(server, fileset)]  # expired; keep map small
            return 1.0
        return self.config.cold_factor

    def is_cold(self, server: object, fileset: str, now: float) -> bool:
        """``True`` while the pair is inside its warmup window."""
        return self.work_multiplier(server, fileset, now) > 1.0
