"""Deprecated shim: cluster simulation through the real control plane.

The message-level tuning path is now the
:class:`~repro.engine.control.DistributedControlPlane` layer of a
:class:`~repro.engine.engine.ClusterEngine`.
:class:`DistributedClusterSimulation` survives as a thin deprecated
subclass assembling exactly that composition.

Migration::

    # before
    sim = DistributedClusterSimulation(wl, policy, cfg, delegate_crashes=[200.0])
    # after
    sim = (SimulationBuilder(wl, policy, cfg)
           .distributed(delegate_crashes=[200.0])
           .build())
"""

from __future__ import annotations

import warnings
from typing import List, Optional, TYPE_CHECKING

from ..engine.control import DistributedControlPlane
from ..engine.engine import ClusterEngine
from ..engine.record import ClusterConfig
from ..policies.anu import ANURandomization
from .cluster import ClusterSimulation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..workloads.synthetic import Workload

__all__ = ["DistributedClusterSimulation"]


class DistributedClusterSimulation(ClusterSimulation):
    """Deprecated: use ``SimulationBuilder(...).distributed(...)``.

    Parameters
    ----------
    workload, policy, config:
        As for the engine; ``policy`` must be :class:`ANURandomization`
        (the control plane speaks ANU's protocol — reports in, interval
        mapping out).
    delegate_crashes:
        Simulated times at which the *current* delegate crashes (see
        :class:`~repro.engine.control.DistributedControlPlane`).
    """

    def __init__(
        self,
        workload: "Workload",
        policy: ANURandomization,
        config: ClusterConfig,
        delegate_crashes: Optional[List[float]] = None,
    ) -> None:
        if type(self) is DistributedClusterSimulation:
            warnings.warn(
                "DistributedClusterSimulation is deprecated; use "
                "repro.engine.SimulationBuilder(...).distributed(...)",
                DeprecationWarning,
                stacklevel=2,
            )
        if not isinstance(policy, ANURandomization):
            raise TypeError(
                "the distributed control plane drives ANU; got "
                f"{type(policy).__name__}"
            )
        ClusterEngine.__init__(
            self,
            workload,
            policy,
            config,
            control=DistributedControlPlane(delegate_crashes=delegate_crashes),
        )
