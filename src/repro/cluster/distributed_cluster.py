"""Cluster simulation driven through the real control plane.

The figure experiments call the placement policy's ``rebalance``
directly — a faithful shortcut, because the delegate is a pure function
of the reports. :class:`DistributedClusterSimulation` removes the
shortcut for ANU runs: every tuning round flows as messages over the
simulated :class:`~repro.distributed.network.Network` to an elected
delegate (via :class:`DistributedTuningService`), heartbeats watch the
servers, and delegate crashes trigger re-election mid-experiment.

Its purpose is to *demonstrate* the §4 fault-tolerance claim end to
end: an experiment in which the delegate dies produces the same
placement decisions as one in which it does not, because the delegate
carries no state a fail-over could lose. The integration tests assert
exactly that.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from ..core.tuning import LatencyReport
from ..distributed.control import DistributedTuningService
from ..distributed.network import Network
from ..policies.anu import ANURandomization
from ..policies.base import Move
from .cluster import ClusterConfig, ClusterResult, ClusterSimulation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..workloads.synthetic import Workload

__all__ = ["DistributedClusterSimulation"]


class DistributedClusterSimulation(ClusterSimulation):
    """ANU cluster experiment with message-level tuning rounds.

    Parameters
    ----------
    workload, policy, config:
        As for :class:`ClusterSimulation`; ``policy`` must be
        :class:`ANURandomization` (the control plane speaks ANU's
        protocol — reports in, interval mapping out).
    delegate_crashes:
        Simulated times at which the *current* delegate crashes. The
        crash downs the node on the network (so the next round must
        re-elect) without failing its file server — modeling a control-
        plane fault rather than a data-plane one, which is the pure
        fail-over case the §4 claim addresses.
    """

    def __init__(
        self,
        workload: "Workload",
        policy: ANURandomization,
        config: ClusterConfig,
        delegate_crashes: Optional[List[float]] = None,
    ) -> None:
        if not isinstance(policy, ANURandomization):
            raise TypeError(
                "the distributed control plane drives ANU; got "
                f"{type(policy).__name__}"
            )
        super().__init__(workload, policy, config)
        self.network = self._make_network()
        self._pending_reports: List[LatencyReport] = []
        self.service = DistributedTuningService(
            self.env,
            self.network,
            policy.manager,
            collect_reports=lambda: self._pending_reports,
        )
        #: Delegates in office over the run (first entry = initial).
        self.delegate_history: List[object] = [self.service.delegate_id]
        for t in delegate_crashes or []:
            self.env.schedule_at(t, self._crash_delegate)

    # ------------------------------------------------------------------ #
    def _make_network(self) -> Network:
        """Build the control-plane network (the chaos harness overrides
        this to hand in a seeded, fault-capable network)."""
        return Network(self.env)

    # ------------------------------------------------------------------ #
    def _crash_delegate(self) -> None:
        victim = self.service.fail_delegate()
        # The node is gone from the control plane only; it rejoins after
        # the next tuning round has re-elected (1.5 intervals), so the
        # experiment measures pure delegate fail-over. (Server-failure
        # churn is exercised through schedule_failure as usual.)
        self.env.schedule_at(
            self.env.now + 1.5 * self.config.tuning_interval,
            lambda: self.network.set_down(victim, False),
        )

    # ------------------------------------------------------------------ #
    def _tuning_loop(self):
        """Override: tune through the service instead of policy.rebalance."""
        interval = self.config.tuning_interval
        while True:
            yield self.env.timeout(interval)
            reports: List[LatencyReport] = []
            for srv in self.servers.values():
                if srv.failed:
                    continue
                reports.append(srv.interval_report())
                srv.drain_fileset_work()
            self._round += 1
            self._pending_reports = reports
            before = self.policy.manager.assignments
            rec = self.service.run_round()
            moves = [
                Move(s.fileset, s.source, s.target) for s in rec.sheds
            ]
            self._apply_moves(moves, kind="tune")
            if self.service.delegate_id != self.delegate_history[-1]:
                self.delegate_history.append(self.service.delegate_id)

    # ------------------------------------------------------------------ #
    @property
    def failovers(self) -> int:
        """Delegate re-elections that were forced by crashes."""
        return self.service.failovers

    def control_traffic(self) -> Dict[str, int]:
        """Control-plane messages sent, by kind."""
        return dict(self.network.sent_count)
