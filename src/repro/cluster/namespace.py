"""The global namespace: a single tree partitioned into file sets.

"A shared-disk file system cluster usually uses a single global
namespace, which is partitioned into file sets. A file set is a
subtree of the global namespace." (§3)

Placement policies operate on *file sets*; clients operate on *paths*.
:class:`Namespace` is the bridge: it stores the partition of the tree
into file-set roots and resolves any path to its enclosing file set
(deepest-ancestor match), which is what a metadata client does before
addressing a server.

The tree also supports the administrative operations a real system
needs — carving a new file set out of an existing one (split) and
merging one back into its parent — each reporting exactly which subtree
moved so callers can re-register with their placement policy.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["Namespace", "normalize_path"]


def normalize_path(path: str) -> str:
    """Canonical form: leading slash, no trailing slash, no empties.

    >>> normalize_path("/a//b/")
    '/a/b'
    >>> normalize_path("a/b")
    '/a/b'
    """
    parts = [p for p in path.split("/") if p]
    return "/" + "/".join(parts)


class Namespace:
    """A global namespace partitioned into file-set subtrees.

    Parameters
    ----------
    fileset_roots:
        Paths of the initial file-set roots. They must be prefix-free
        *except* that nesting is allowed — a nested root carves its
        subtree out of the enclosing one (deepest match wins at
        resolution), exactly how file-set boundaries behave in
        shared-disk file systems.
    """

    def __init__(self, fileset_roots: Iterable[str]) -> None:
        roots = [normalize_path(r) for r in fileset_roots]
        if not roots:
            raise ValueError("namespace needs at least one file set")
        if len(set(roots)) != len(roots):
            raise ValueError("duplicate file-set roots")
        self._roots: set = set(roots)

    # ------------------------------------------------------------------ #
    @property
    def fileset_roots(self) -> List[str]:
        """All file-set roots, sorted."""
        return sorted(self._roots)

    def __len__(self) -> int:
        return len(self._roots)

    def __contains__(self, root: str) -> bool:
        return normalize_path(root) in self._roots

    # ------------------------------------------------------------------ #
    def resolve(self, path: str) -> str:
        """File set owning ``path``: the deepest root that prefixes it.

        Raises ``LookupError`` if no file set covers the path (the
        namespace's partition must cover whatever clients ask about —
        deployments anchor a catch-all at ``/``).
        """
        norm = normalize_path(path)
        probe = norm
        while True:
            if probe in self._roots:
                return probe
            if probe == "/":
                raise LookupError(f"no file set covers {path!r}")
            probe = probe.rsplit("/", 1)[0] or "/"

    def covers(self, path: str) -> bool:
        """``True`` if some file set owns ``path``."""
        try:
            self.resolve(path)
            return True
        except LookupError:
            return False

    def children_of(self, root: str) -> List[str]:
        """File-set roots nested (directly or not) inside ``root``."""
        norm = normalize_path(root)
        prefix = norm if norm.endswith("/") else norm + "/"
        return sorted(r for r in self._roots if r != norm and r.startswith(prefix))

    # ------------------------------------------------------------------ #
    # administrative operations
    # ------------------------------------------------------------------ #
    def split(self, new_root: str) -> Tuple[str, str]:
        """Carve a new file set at ``new_root`` out of its encloser.

        Returns ``(parent_fileset, new_fileset)``. Paths under
        ``new_root`` now resolve to the new file set; callers register
        the new name with their placement policy (the paper's
        indivisible unit just became two units).
        """
        norm = normalize_path(new_root)
        if norm in self._roots:
            raise ValueError(f"{norm!r} is already a file-set root")
        parent = self.resolve(norm)  # raises if nothing covers it
        self._roots.add(norm)
        return parent, norm

    def merge(self, root: str) -> Tuple[str, str]:
        """Dissolve the file set at ``root`` back into its encloser.

        Returns ``(absorbing_fileset, removed_fileset)``. Refuses to
        remove a root that still has nested file sets (they would be
        orphaned from their boundary semantics) and refuses to remove
        the last covering root of its subtree.
        """
        norm = normalize_path(root)
        if norm not in self._roots:
            raise ValueError(f"{norm!r} is not a file-set root")
        nested = self.children_of(norm)
        if nested:
            raise ValueError(
                f"cannot merge {norm!r}: nested file sets {nested} remain"
            )
        self._roots.discard(norm)
        try:
            absorber = self.resolve(norm)
        except LookupError:
            self._roots.add(norm)  # roll back: nothing would cover it
            raise ValueError(
                f"cannot merge {norm!r}: no enclosing file set would cover it"
            ) from None
        return absorber, norm

    # ------------------------------------------------------------------ #
    @classmethod
    def balanced(cls, n_filesets: int, fanout: int = 4, prefix: str = "/fs") -> "Namespace":
        """A synthetic namespace of ``n_filesets`` roots under ``prefix``.

        Convenience for experiments: roots are spread over a two-level
        directory tree with the given fanout, so path resolution
        exercises real prefix walks rather than flat names.
        """
        if n_filesets < 1:
            raise ValueError("need at least one file set")
        roots = []
        for i in range(n_filesets):
            top = i % fanout
            roots.append(f"{prefix}/d{top}/set{i:04d}")
        return cls(roots)
