"""Heterogeneous file servers with FIFO queueing.

Each :class:`FileServer` models one metadata server: a single service
station draining a FIFO queue (the paper's "servers use a first-in-
first-out queuing discipline", §5.1) at a rate set by its *processing
power* — "if the least powerful server consumes time T to complete a
metadata request, then the most powerful server consumes time T/9"
(§5.1). The evaluation cluster uses powers {1, 3, 5, 7, 9}.

Servers measure themselves: per-interval mean latency of completed
requests (what they report to the delegate) and whole-run tallies for
the aggregate figures.
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..core.tuning import LatencyReport
from ..sim import Interrupt, Simulator, Store, Tally, TimeSeries
from .cache import CacheModel
from .request import MetadataRequest

__all__ = ["FileServer"]


class FileServer:
    """One metadata server in the shared-disk cluster.

    Parameters
    ----------
    env:
        The discrete-event simulator.
    server_id:
        Cluster-unique identifier.
    power:
        Service rate in work units per second (> 0).
    cache:
        Shared :class:`CacheModel`; ``None`` disables cache effects.

    Notes
    -----
    The server is driven by a single service-loop process created at
    construction. :meth:`submit` is the only entry point for work;
    :meth:`interval_report` closes a measurement window (the report the
    server sends the delegate each tuning interval).
    """

    def __init__(
        self,
        env: Simulator,
        server_id: object,
        power: float,
        cache: Optional[CacheModel] = None,
    ) -> None:
        if power <= 0:
            raise ValueError(f"server power must be > 0, got {power}")
        self.env = env
        self.server_id = server_id
        self.power = float(power)
        #: Nominal power; ``power`` may be temporarily degraded below it
        #: by straggler injection (see :meth:`set_power_factor`).
        self.base_power = float(power)
        self.cache = cache
        self._queue: Store = Store(env)
        self._failed = False
        #: Crash count; bumps on every fail(). Clients use it to notice
        #: that a queue they submitted into was discarded by a crash,
        #: even if the server has already recovered since.
        self.incarnation = 0
        # Whole-run statistics.
        self.completed = Tally(keep=True)
        #: Per-interval mean latency samples (one per tuning round).
        self.latency_series = TimeSeries(name=f"server-{server_id}")
        #: Requests completed, whole run.
        self.completed_requests: int = 0
        #: Busy time accumulated (for utilization).
        self.busy_time: float = 0.0
        # Current-interval accumulators.
        self._window_latency_sum = 0.0
        self._window_count = 0
        self._window_start = env.now
        # Per-file-set work observed this window (a server-local
        # observation; consumed by bin-packing-style policies).
        self._window_fs_work: dict = {}
        # Consecutive idle reporting windows (for delegate idle backoff).
        self._idle_rounds = 0
        # Previous window's mean latency (for the delegate's burst filter).
        self._prev_mean = math.nan
        self._flush_backlog: List[float] = []
        #: Optional completion hook ``probe(request)`` — set by the
        #: engine when a RequestCompleted subscriber exists; ``None``
        #: (the default) keeps the service loop probe-free.
        self.probe = None
        self._loop = env.process(self._service_loop())

    # ------------------------------------------------------------------ #
    # workload entry points
    # ------------------------------------------------------------------ #
    def submit(self, request: MetadataRequest) -> None:
        """Enqueue a metadata request (FIFO)."""
        if self._failed:
            raise RuntimeError(f"server {self.server_id!r} is failed")
        request.server = self.server_id
        self._queue.put(request)

    def charge_flush(self, work: float) -> None:
        """Charge cache-flush busy work (a shed's cost to the releaser).

        Modeled as a pseudo-job at the *head-of-line position the loop
        reaches next*: the flush occupies the server before subsequent
        queued requests, which is how a synchronous cache write-back
        behaves.
        """
        if work > 0:
            self._flush_backlog.append(work)

    @property
    def queue_length(self) -> int:
        """Requests currently waiting (excludes the one in service)."""
        return len(self._queue)

    @property
    def failed(self) -> bool:
        """``True`` while the server is down."""
        return self._failed

    # ------------------------------------------------------------------ #
    # straggler injection
    # ------------------------------------------------------------------ #
    def set_power_factor(self, factor: float) -> None:
        """Scale effective power to ``factor × base_power`` (straggler).

        ``factor < 1`` degrades the server (a straggler: overheating,
        background load, a failing disk); ``factor = 1`` restores it.
        Applies to service slices started after the call — the slice in
        progress finishes at its old rate, like a real rate change.
        """
        if factor <= 0:
            raise ValueError(f"power factor must be > 0, got {factor}")
        self.power = self.base_power * float(factor)

    @property
    def degraded(self) -> bool:
        """``True`` while a straggler injection is active."""
        return self.power != self.base_power

    # ------------------------------------------------------------------ #
    # the service loop
    # ------------------------------------------------------------------ #
    def _service_loop(self):
        try:
            yield from self._serve_forever()
        except Interrupt:
            return  # failed: drop out cleanly; recover() starts a new loop

    def _serve_forever(self):
        while True:
            request = yield self._queue.get()
            # Synchronous flush work blocks the queue first.
            while self._flush_backlog:
                flush = self._flush_backlog.pop(0)
                start = self.env.now
                yield self.env.timeout(flush / self.power)
                self.busy_time += self.env.now - start
            request.service_start = self.env.now
            work = request.work
            if self.cache is not None:
                work *= self.cache.work_multiplier(
                    self.server_id, request.fileset, self.env.now
                )
            start = self.env.now
            yield self.env.timeout(work / self.power)
            self.busy_time += self.env.now - start
            request.completion = self.env.now
            self._record(request)

    def _record(self, request: MetadataRequest) -> None:
        latency = request.latency
        self.completed.observe(latency)
        self.completed_requests += 1
        self._window_latency_sum += latency
        self._window_count += 1
        self._window_fs_work[request.fileset] = (
            self._window_fs_work.get(request.fileset, 0.0) + request.work
        )
        if request.on_complete is not None:
            request.on_complete(request)
        if self.probe is not None:
            self.probe(request)

    def absorb_batch(self, latencies, busy: float) -> None:
        """Bulk-account a cohort of completed requests.

        The vectorized client path computes completions outside the
        per-request service loop and lands them here: whole-run tally,
        window accumulators, and busy time in one call, equivalent to
        ``_record`` per request (window file-set work is not tracked —
        the vectorized path documents that limitation).
        """
        count = latencies.shape[0]
        if count == 0:
            return
        self.completed.observe_many(latencies)
        self.completed_requests += count
        self.busy_time += busy
        self._window_latency_sum += float(latencies.sum())
        self._window_count += count

    def absorb_moments(
        self,
        count: int,
        total: float,
        m2: float,
        minimum: float,
        maximum: float,
        busy: float,
        samples,
    ) -> None:
        """:meth:`absorb_batch` from pre-reduced per-server sums.

        The bulk flush computes every server's batch statistics in a
        handful of ``reduceat`` passes; this lands one server's share
        (``total`` is the latency sum, ``m2`` the batch's sum of
        squared deviations) without touching the raw arrays again,
        except to retain the sample slice.
        """
        if count == 0:
            return
        self.completed.observe_moments(
            count, total / count, m2, minimum, maximum, samples
        )
        self.completed_requests += count
        self.busy_time += busy
        self._window_latency_sum += total
        self._window_count += count

    # ------------------------------------------------------------------ #
    # measurement
    # ------------------------------------------------------------------ #
    def interval_report(self) -> LatencyReport:
        """Close the current measurement window and report it.

        Returns the :class:`LatencyReport` the server sends the
        delegate: mean latency over requests *completed* in the window
        (``nan`` if none — an idle server has nothing to report).
        """
        now = self.env.now
        if self._window_count:
            mean = self._window_latency_sum / self._window_count
            self._idle_rounds = 0
        else:
            mean = math.nan
            self._idle_rounds += 1
        report = LatencyReport(
            server_id=self.server_id,
            mean_latency=mean,
            request_count=self._window_count,
            window=(self._window_start, now),
            idle_rounds=self._idle_rounds,
            prev_mean_latency=self._prev_mean,
        )
        self._prev_mean = mean
        self.latency_series.record(now, mean)
        self._window_latency_sum = 0.0
        self._window_count = 0
        self._window_start = now
        return report

    def drain_fileset_work(self) -> dict:
        """Per-file-set work served this window; resets the accumulator.

        This is information a real server observes locally (it served
        the requests); policies in the bin-packing family consume it.
        Call alongside :meth:`interval_report`.
        """
        out = self._window_fs_work
        self._window_fs_work = {}
        return out

    def utilization(self, horizon: Optional[float] = None) -> float:
        """Fraction of time busy since t=0 (up to ``horizon`` or now)."""
        t = horizon if horizon is not None else self.env.now
        return self.busy_time / t if t > 0 else 0.0

    # ------------------------------------------------------------------ #
    # failure / recovery
    # ------------------------------------------------------------------ #
    def fail(self) -> List[MetadataRequest]:
        """Take the server down; returns the queued requests it drops.

        The in-service request (if any) is lost with it. The cluster
        driver re-routes the returned requests through the updated
        placement, modeling clients re-issuing to the new owner.
        """
        if self._failed:
            raise RuntimeError(f"server {self.server_id!r} already failed")
        self._failed = True
        self.incarnation += 1
        self._loop.interrupt("failed")
        orphans = list(self._queue.drain())
        # Replace the queue outright: the dying loop may still hold a
        # pending get() on the old store, which would otherwise swallow
        # the first request submitted after recovery.
        self._queue = Store(self.env)
        return orphans

    def recover(self) -> None:
        """Bring the server back with an empty queue and cold state."""
        if not self._failed:
            raise RuntimeError(f"server {self.server_id!r} is not failed")
        self._failed = False
        self._window_latency_sum = 0.0
        self._window_count = 0
        self._window_start = self.env.now
        self._loop = self.env.process(self._service_loop())

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        state = "FAILED" if self._failed else f"q={self.queue_length}"
        return f"<FileServer {self.server_id!r} power={self.power} {state}>"
