"""File sets — the indivisible unit of workload assignment.

"A shared-disk file system cluster usually uses a single global
namespace, which is partitioned into file sets. A file set is a subtree
of the global namespace and also the indivisible unit of workload
assignment and movement." (§3)

A :class:`FileSet` carries its unique name (the hashing key — "specific
to clusters, such as a pathname or content fingerprint") and its total
offered workload, the paper's ``X * c`` with ``X ~ U[1, 10]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["FileSet", "FileSetCatalog"]


@dataclass(frozen=True)
class FileSet:
    """A subtree of the global namespace.

    Attributes
    ----------
    name:
        Unique name; the key hashed by every placement policy.
    total_work:
        Total service demand (work units) this file set generates over
        the whole experiment — the paper's ``X * c``.
    n_requests:
        Number of metadata requests the file set issues.
    """

    name: str
    total_work: float
    n_requests: int

    @property
    def mean_request_work(self) -> float:
        """Average work units per request (``total_work / n_requests``)."""
        return self.total_work / self.n_requests if self.n_requests else 0.0


class FileSetCatalog:
    """The namespace's file-set inventory with weight lookups.

    The catalog is what prescient policies consult for "perfect
    knowledge of workload properties": per-file-set total work, and the
    share of overall workload each file set represents (used for the
    percentage-of-workload-moved metric of Figure 7).
    """

    def __init__(self, filesets: List[FileSet]) -> None:
        if not filesets:
            raise ValueError("catalog needs at least one file set")
        names = [fs.name for fs in filesets]
        if len(set(names)) != len(names):
            raise ValueError("duplicate file-set names in catalog")
        self._by_name: Dict[str, FileSet] = {fs.name: fs for fs in filesets}

    def __len__(self) -> int:
        return len(self._by_name)

    def __iter__(self):
        return iter(self._by_name.values())

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    @property
    def names(self) -> List[str]:
        """All file-set names (insertion order)."""
        return list(self._by_name)

    def get(self, name: str) -> FileSet:
        """File set by name; raises ``KeyError`` for unknown names."""
        return self._by_name[name]

    @property
    def total_work(self) -> float:
        """Sum of all file sets' total work."""
        return sum(fs.total_work for fs in self._by_name.values())

    @property
    def total_requests(self) -> int:
        """Sum of all file sets' request counts."""
        return sum(fs.n_requests for fs in self._by_name.values())

    def work_share(self, name: str) -> float:
        """Fraction of total workload contributed by ``name``."""
        return self.get(name).total_work / self.total_work

    def weights(self) -> Dict[str, float]:
        """Name → total work for every file set."""
        return {name: fs.total_work for name, fs in self._by_name.items()}
