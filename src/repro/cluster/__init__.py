"""Shared-disk cluster model.

The simulated system of §3 of the paper: a global namespace partitioned
into file sets, heterogeneous metadata file servers with FIFO queues,
server caches whose warmth is what makes moving file sets costly, and a
striped shared-disk data path behind a SAN.

* :class:`FileSet` / :class:`FileSetCatalog` — workload units
* :class:`MetadataRequest` — the short tasks servers serve
* :class:`FileServer` — heterogeneous FIFO metadata server
* :class:`CacheModel` / :class:`CacheConfig` — cost of moving file sets
* :class:`RequestDriver` / :class:`AccessClient` — workload replay
* :class:`SharedDisk` / :class:`DiskArray` — the data path
* :class:`ClusterSimulation` / :class:`ClusterConfig` /
  :class:`ClusterResult` — the experiment driver
"""

from .cache import CacheConfig, CacheModel
from .client import (
    AccessClient,
    HardenedClient,
    HardenedRequestDriver,
    RequestDriver,
    RetryPolicy,
)
from .cluster import ClusterConfig, ClusterResult, ClusterSimulation, MovementRecord
from .disk import DiskArray, SharedDisk
from .distributed_cluster import DistributedClusterSimulation
from .fileset import FileSet, FileSetCatalog
from .namespace import Namespace, normalize_path
from .request import MetadataRequest
from .server import FileServer

__all__ = [
    "FileSet",
    "FileSetCatalog",
    "MetadataRequest",
    "FileServer",
    "CacheModel",
    "CacheConfig",
    "RequestDriver",
    "RetryPolicy",
    "HardenedClient",
    "HardenedRequestDriver",
    "AccessClient",
    "SharedDisk",
    "DiskArray",
    "ClusterSimulation",
    "ClusterConfig",
    "ClusterResult",
    "MovementRecord",
    "DistributedClusterSimulation",
    "Namespace",
    "normalize_path",
]
