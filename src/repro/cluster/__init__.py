"""Shared-disk cluster model.

The simulated system of §3 of the paper: a global namespace partitioned
into file sets, heterogeneous metadata file servers with FIFO queues,
server caches whose warmth is what makes moving file sets costly, and a
striped shared-disk data path behind a SAN.

* :class:`FileSet` / :class:`FileSetCatalog` — workload units
* :class:`MetadataRequest` — the short tasks servers serve
* :class:`FileServer` — heterogeneous FIFO metadata server
* :class:`CacheModel` / :class:`CacheConfig` — cost of moving file sets
* :class:`RequestDriver` / :class:`AccessClient` — workload replay
* :class:`SharedDisk` / :class:`DiskArray` — the data path
* :class:`ClusterSimulation` / :class:`ClusterConfig` /
  :class:`ClusterResult` — deprecated driver shims over
  :mod:`repro.engine`

The driver/client names are re-exported *lazily* (PEP 562): they live
in modules that subclass :class:`repro.engine.engine.ClusterEngine`,
and loading those eagerly here would cycle — the engine's layers import
the cluster *model* modules (``fileset``, ``server``, ``cache``), which
land in this package first.
"""

from __future__ import annotations

import importlib
from typing import TYPE_CHECKING

from .cache import CacheConfig, CacheModel
from .disk import DiskArray, SharedDisk
from .fileset import FileSet, FileSetCatalog
from .namespace import Namespace, normalize_path
from .request import MetadataRequest
from .server import FileServer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .client import (
        AccessClient,
        HardenedClient,
        HardenedRequestDriver,
        RequestDriver,
        RetryPolicy,
    )
    from .cluster import (
        ClusterConfig,
        ClusterResult,
        ClusterSimulation,
        MovementRecord,
    )
    from .distributed_cluster import DistributedClusterSimulation

#: Lazily re-exported name -> defining submodule.
_LAZY = {
    "AccessClient": "client",
    "HardenedClient": "client",
    "HardenedRequestDriver": "client",
    "RequestDriver": "client",
    "RetryPolicy": "client",
    "ClusterConfig": "cluster",
    "ClusterResult": "cluster",
    "ClusterSimulation": "cluster",
    "MovementRecord": "cluster",
    "DistributedClusterSimulation": "distributed_cluster",
}

__all__ = [
    "FileSet",
    "FileSetCatalog",
    "MetadataRequest",
    "FileServer",
    "CacheModel",
    "CacheConfig",
    "RequestDriver",
    "RetryPolicy",
    "HardenedClient",
    "HardenedRequestDriver",
    "AccessClient",
    "SharedDisk",
    "DiskArray",
    "ClusterSimulation",
    "ClusterConfig",
    "ClusterResult",
    "MovementRecord",
    "DistributedClusterSimulation",
    "Namespace",
    "normalize_path",
]


def __getattr__(name: str):
    submodule = _LAZY.get(name)
    if submodule is not None:
        module = importlib.import_module(f".{submodule}", __name__)
        value = getattr(module, name)
        globals()[name] = value  # cache: subsequent lookups skip __getattr__
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
