"""Metadata requests — the short tasks the file servers serve.

"In a typical access, [the] client sends a metadata request to a file
server. The server sends the location information and file handler of
the specified file(s) back to the client. Then the client fetches data
directly from the disk across the storage area network." (§3)

Only the metadata leg loads the file servers; the data leg goes to the
shared disks (:mod:`repro.cluster.disk`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["MetadataRequest"]


@dataclass
class MetadataRequest:
    """One metadata operation against a file set.

    Life cycle fields are filled in by the simulation as the request
    flows through: ``server`` at routing, ``service_start`` when it
    reaches the head of the server's FIFO queue, ``completion`` when
    service finishes.

    Attributes
    ----------
    fileset:
        Name of the target file set (routing key).
    arrival:
        Simulated arrival time (seconds).
    work:
        Service demand in work units; a server of power ``p`` serves it
        in ``work / p`` seconds (before cache effects).
    """

    fileset: str
    arrival: float
    work: float
    server: Optional[object] = None
    service_start: Optional[float] = None
    completion: Optional[float] = None
    #: Optional hook invoked as ``on_complete(request)`` by the serving
    #: server the moment service finishes (used by clients awaiting the
    #: metadata leg before starting the data leg).
    on_complete: Optional[callable] = None

    @property
    def done(self) -> bool:
        """``True`` once service has completed."""
        return self.completion is not None

    @property
    def latency(self) -> float:
        """Response time: completion − arrival (``nan`` while pending).

        This is the paper's performance metric — "we use latency as the
        performance metric — a natural choice as the metadata workload
        consists of little data and short-lived transactions" (§4).
        """
        if self.completion is None:
            return math.nan
        return self.completion - self.arrival

    @property
    def queue_delay(self) -> float:
        """Time spent waiting in the FIFO queue (``nan`` while queued)."""
        if self.service_start is None:
            return math.nan
        return self.service_start - self.arrival

    def __lt__(self, other: "MetadataRequest") -> bool:
        """Order by arrival time (lets request lists sort naturally)."""
        return self.arrival < other.arrival
