"""Shared disks and the SAN data path.

"The shared disks hold file sets ... the client fetches data directly
from the disk across the storage area network (SAN). This architecture
separates metadata workload from data workload." (§3)

The paper explicitly scopes load management to the *file servers* —
"our system does not address load management issues in shared disks"
— so the data path here is a deliberately simple striped-disk model.
It exists for architectural completeness (the quickstart example walks
a full metadata-then-data access) and to let experiments confirm the
paper's motivation: clients blocked on metadata leave the SAN
under-utilized, so balancing the metadata tier lifts whole-cluster
throughput.
"""

from __future__ import annotations

from typing import List, Sequence

from ..sim import Simulator, Store, Tally

__all__ = ["SharedDisk", "DiskArray"]


class SharedDisk:
    """One disk on the SAN: FIFO service at a fixed bandwidth."""

    def __init__(self, env: Simulator, disk_id: object, bandwidth: float) -> None:
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be > 0, got {bandwidth}")
        self.env = env
        self.disk_id = disk_id
        #: Transfer rate in data units per second.
        self.bandwidth = float(bandwidth)
        self._queue: Store = Store(env)
        #: Completed-transfer latencies.
        self.transfers = Tally()
        self.busy_time = 0.0
        env.process(self._service_loop())

    def read(self, size: float):
        """Event that fires when ``size`` data units have been read.

        Usage inside a process: ``yield disk.read(size)``.
        """
        done = self.env.event()
        self._queue.put((self.env.now, float(size), done))
        return done

    def _service_loop(self):
        while True:
            enqueued, size, done = yield self._queue.get()
            start = self.env.now
            yield self.env.timeout(size / self.bandwidth)
            self.busy_time += self.env.now - start
            self.transfers.observe(self.env.now - enqueued)
            done.succeed(size)

    def utilization(self) -> float:
        """Fraction of elapsed time spent transferring."""
        return self.busy_time / self.env.now if self.env.now > 0 else 0.0


class DiskArray:
    """A stripe set of shared disks.

    Large reads are striped round-robin across member disks in
    ``stripe_unit``-sized chunks — the classic I/O-system load-balancing
    the related work contrasts with (§2: "I/O systems use striping to
    distribute a large I/O request across many disks").
    """

    def __init__(
        self, env: Simulator, bandwidths: Sequence[float], stripe_unit: float = 64.0
    ) -> None:
        if not bandwidths:
            raise ValueError("array needs at least one disk")
        if stripe_unit <= 0:
            raise ValueError(f"stripe_unit must be > 0, got {stripe_unit}")
        self.env = env
        self.stripe_unit = float(stripe_unit)
        self.disks: List[SharedDisk] = [
            SharedDisk(env, i, bw) for i, bw in enumerate(bandwidths)
        ]
        self._next = 0

    def read(self, size: float):
        """Event firing when all stripes of a ``size``-unit read finish."""
        chunks = []
        remaining = float(size)
        while remaining > 0:
            chunk = min(self.stripe_unit, remaining)
            disk = self.disks[self._next % len(self.disks)]
            self._next += 1
            chunks.append(disk.read(chunk))
            remaining -= chunk
        return self.env.all_of(chunks)

    def utilization(self) -> List[float]:
        """Per-disk utilizations."""
        return [d.utilization() for d in self.disks]
