"""Clients: request replay and the full metadata-then-data access path.

The drivers themselves live in :mod:`repro.engine.client_path` now —
one :class:`~repro.engine.client_path.RequestDriver` covering both the
basic (route-once) and hardened (retry/redirect) replay paths, and one
shared locate-retry-redirect core
(:func:`~repro.engine.client_path.drive_attempts`) behind both
:class:`~repro.engine.client_path.HardenedClient` and
:class:`AccessClient`. This module re-exports them under their
historical names and keeps :class:`HardenedRequestDriver` as a
deprecated alias for ``RequestDriver(..., client=...)``.

:class:`AccessClient` models the complete shared-disk access of §3:
metadata request to a file server, then a data transfer from the
shared disks. It is used by the quickstart example and the SAN
under-utilization demonstration, not by the paper's figure runs (which
measure the metadata tier only).
"""

from __future__ import annotations

import warnings
from typing import Callable, Optional, Sequence

from ..engine.client_path import (
    HardenedClient,
    RequestDriver,
    RetryPolicy,
    drive_attempts,
)
from ..sim import Simulator, Tally
from .disk import DiskArray
from .request import MetadataRequest
from .server import FileServer

__all__ = ["RequestDriver", "RetryPolicy", "HardenedClient", "HardenedRequestDriver", "AccessClient"]


class HardenedRequestDriver(RequestDriver):
    """Deprecated: ``RequestDriver(env, schedule, client=client)``.

    The hardened replay loop is the same unified driver with a client
    instead of a route; this name survives only for legacy callers.
    """

    def __init__(
        self,
        env: Simulator,
        schedule: Sequence[MetadataRequest],
        client: HardenedClient,
    ) -> None:
        if type(self) is HardenedRequestDriver:
            warnings.warn(
                "HardenedRequestDriver is deprecated; use "
                "RequestDriver(env, schedule, client=client)",
                DeprecationWarning,
                stacklevel=2,
            )
        super().__init__(env, schedule, client=client)


class AccessClient:
    """A client performing complete accesses: metadata, then data.

    Each access: submit a metadata request to the routed file server,
    wait for its completion, then read ``data_size`` units from the
    disk array across the SAN. End-to-end access latencies land in
    :attr:`access_latency`; the share of each access spent blocked on
    metadata lands in :attr:`metadata_share` — the quantity behind the
    paper's motivation that "clients blocked on metadata may leave the
    high bandwidth SAN underutilized" (§3).

    The metadata phase rides the same
    :func:`~repro.engine.client_path.drive_attempts` core as
    :class:`HardenedClient` (without a retry policy: one locate, one
    submission, an unroutable file set raises).
    """

    def __init__(
        self,
        env: Simulator,
        route: Callable[[MetadataRequest], Optional[FileServer]],
        disks: DiskArray,
    ) -> None:
        self.env = env
        self.route = route
        self.disks = disks
        self.access_latency = Tally(keep=True)
        self.metadata_share = Tally()

    def access(self, fileset: str, meta_work: float, data_size: float):
        """Start one access; returns the driving process (awaitable)."""
        return self.env.process(self._access(fileset, meta_work, data_size))

    def _access(self, fileset: str, meta_work: float, data_size: float):
        start = self.env.now
        request = MetadataRequest(fileset=fileset, arrival=start, work=meta_work)
        yield from drive_attempts(self.env, self.route, request)
        meta_done = self.env.now
        yield self.disks.read(data_size)
        total = self.env.now - start
        self.access_latency.observe(total)
        if total > 0:
            self.metadata_share.observe((meta_done - start) / total)
