"""Clients: request replay and the full metadata-then-data access path.

:class:`RequestDriver` replays a pre-generated request schedule into
the cluster, routing each request through the active placement policy
at its arrival instant (so placement changes take effect for new
arrivals immediately, while already-queued requests finish where they
are — matching the paper's shed semantics).

:class:`AccessClient` models the complete shared-disk access of §3:
metadata request to a file server, then a data transfer from the
shared disks. It is used by the quickstart example and the SAN
under-utilization demonstration, not by the paper's figure runs (which
measure the metadata tier only).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..sim import Simulator, Tally
from .disk import DiskArray
from .request import MetadataRequest
from .server import FileServer

__all__ = ["RequestDriver", "AccessClient"]


class RequestDriver:
    """Replays a time-ordered request schedule into the cluster.

    Parameters
    ----------
    env:
        The simulator.
    schedule:
        Requests sorted by arrival time.
    route:
        ``route(request) -> FileServer`` — resolves the file set's
        current server *at arrival time* and returns the server object.
        Returning ``None`` drops the request (counted).
    """

    def __init__(
        self,
        env: Simulator,
        schedule: Sequence[MetadataRequest],
        route: Callable[[MetadataRequest], Optional[FileServer]],
    ) -> None:
        self.env = env
        self.schedule = list(schedule)
        if any(
            b.arrival < a.arrival for a, b in zip(self.schedule, self.schedule[1:])
        ):
            raise ValueError("request schedule must be sorted by arrival time")
        self.route = route
        #: Requests submitted so far.
        self.submitted = 0
        #: Requests dropped because routing returned ``None``.
        self.dropped = 0
        self.process = env.process(self._replay())

    def _replay(self):
        for request in self.schedule:
            delay = request.arrival - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            server = self.route(request)
            if server is None:
                self.dropped += 1
                continue
            server.submit(request)
            self.submitted += 1


class AccessClient:
    """A client performing complete accesses: metadata, then data.

    Each access: submit a metadata request to the routed file server,
    wait for its completion, then read ``data_size`` units from the
    disk array across the SAN. End-to-end access latencies land in
    :attr:`access_latency`; the share of each access spent blocked on
    metadata lands in :attr:`metadata_share` — the quantity behind the
    paper's motivation that "clients blocked on metadata may leave the
    high bandwidth SAN underutilized" (§3).
    """

    def __init__(
        self,
        env: Simulator,
        route: Callable[[MetadataRequest], Optional[FileServer]],
        disks: DiskArray,
    ) -> None:
        self.env = env
        self.route = route
        self.disks = disks
        self.access_latency = Tally(keep=True)
        self.metadata_share = Tally()

    def access(self, fileset: str, meta_work: float, data_size: float):
        """Start one access; returns the driving process (awaitable)."""
        return self.env.process(self._access(fileset, meta_work, data_size))

    def _access(self, fileset: str, meta_work: float, data_size: float):
        start = self.env.now
        request = MetadataRequest(fileset=fileset, arrival=start, work=meta_work)
        server = self.route(request)
        if server is None:
            raise RuntimeError(f"no server for file set {fileset!r}")
        done = self.env.event()
        request.on_complete = lambda req: done.succeed(req)
        server.submit(request)
        yield done
        meta_done = self.env.now
        yield self.disks.read(data_size)
        total = self.env.now - start
        self.access_latency.observe(total)
        if total > 0:
            self.metadata_share.observe((meta_done - start) / total)
