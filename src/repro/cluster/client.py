"""Clients: request replay and the full metadata-then-data access path.

:class:`RequestDriver` replays a pre-generated request schedule into
the cluster, routing each request through the active placement policy
at its arrival instant (so placement changes take effect for new
arrivals immediately, while already-queued requests finish where they
are — matching the paper's shed semantics).

:class:`HardenedClient` is the fault-tolerant request path the chaos
harness drives: per-request completion timeout, capped exponential
backoff with seeded jitter, and re-locate-and-redirect when the target
server is down or suspected. Every retry and redirect is counted, and
the client's ledger (``injected = completed + failed + in_flight``) is
one of the invariants the chaos harness checks continuously.

:class:`AccessClient` models the complete shared-disk access of §3:
metadata request to a file server, then a data transfer from the
shared disks. It is used by the quickstart example and the SAN
under-utilization demonstration, not by the paper's figure runs (which
measure the metadata tier only).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Set

from ..sim import Simulator, Tally
from .disk import DiskArray
from .request import MetadataRequest
from .server import FileServer

__all__ = ["RequestDriver", "RetryPolicy", "HardenedClient", "HardenedRequestDriver", "AccessClient"]


class RequestDriver:
    """Replays a time-ordered request schedule into the cluster.

    Parameters
    ----------
    env:
        The simulator.
    schedule:
        Requests sorted by arrival time.
    route:
        ``route(request) -> FileServer`` — resolves the file set's
        current server *at arrival time* and returns the server object.
        Returning ``None`` drops the request (counted).
    """

    def __init__(
        self,
        env: Simulator,
        schedule: Sequence[MetadataRequest],
        route: Callable[[MetadataRequest], Optional[FileServer]],
    ) -> None:
        self.env = env
        self.schedule = list(schedule)
        if any(
            b.arrival < a.arrival for a, b in zip(self.schedule, self.schedule[1:])
        ):
            raise ValueError("request schedule must be sorted by arrival time")
        self.route = route
        #: Requests submitted so far.
        self.submitted = 0
        #: Requests dropped because routing returned ``None``.
        self.dropped = 0
        self.process = env.process(self._replay())

    def _replay(self):
        for request in self.schedule:
            delay = request.arrival - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            server = self.route(request)
            if server is None:
                self.dropped += 1
                continue
            server.submit(request)
            self.submitted += 1


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side request-hardening knobs.

    Attributes
    ----------
    request_timeout:
        Seconds to wait on a submitted attempt before re-evaluating the
        target's health. A healthy-but-slow server is *not* abandoned
        (FIFO guarantees progress); only a failed or suspected target
        triggers a redirect, so no work is duplicated on live servers.
    max_attempts:
        Total placement attempts (initial + retries) before the request
        is declared failed.
    backoff_base / backoff_cap:
        Exponential backoff between attempts: ``base · 2^(attempt-1)``
        seconds, capped at ``backoff_cap``.
    jitter:
        Fraction of each backoff randomized (``0`` = deterministic
        full backoff, ``0.5`` = uniform in ``[0.5·b, b]``). Drawn from
        the client's seeded rng, so runs replay bit-identically.
    """

    request_timeout: float = 10.0
    max_attempts: int = 10
    backoff_base: float = 0.25
    backoff_cap: float = 5.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.request_timeout <= 0:
            raise ValueError(f"request_timeout must be > 0, got {self.request_timeout}")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base <= 0 or self.backoff_cap < self.backoff_base:
            raise ValueError(
                f"need 0 < backoff_base <= backoff_cap, got "
                f"{self.backoff_base}/{self.backoff_cap}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def backoff(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Backoff before retry number ``attempt`` (1-based), jittered."""
        base = min(self.backoff_cap, self.backoff_base * (2.0 ** max(0, attempt - 1)))
        if rng is None or self.jitter == 0.0:
            return base
        return base * (1.0 - self.jitter * rng.random())


class HardenedClient:
    """Retrying, redirecting request submission path.

    Parameters
    ----------
    env:
        The simulator.
    route:
        ``route(request) -> Optional[FileServer]`` — resolves the file
        set's *current* server; re-consulted before every attempt, so a
        reconfiguration redirects the next retry automatically.
    policy:
        Retry/backoff/timeout configuration.
    rng:
        Seeded :class:`random.Random` for backoff jitter (``None``
        disables jitter).
    suspected:
        Optional ``() -> set`` of server ids currently suspected by the
        failure detector; the client refuses to wait on (and redirects
        away from) suspected targets.
    """

    def __init__(
        self,
        env: Simulator,
        route: Callable[[MetadataRequest], Optional[FileServer]],
        policy: Optional[RetryPolicy] = None,
        rng: Optional[random.Random] = None,
        suspected: Optional[Callable[[], Set[object]]] = None,
    ) -> None:
        self.env = env
        self.route = route
        self.policy = policy or RetryPolicy()
        self.rng = rng
        self.suspected = suspected
        #: Logical requests handed to the client.
        self.injected = 0
        #: Logical requests that completed (first successful attempt).
        self.completed = 0
        #: Logical requests abandoned after ``max_attempts``.
        self.failed = 0
        #: Logical requests currently being driven.
        self.in_flight = 0
        #: Re-submissions after a failed/suspected/unroutable attempt.
        self.retries = 0
        #: Retries that landed on a *different* server than the last try.
        self.redirects = 0
        #: Attempts abandoned because the timeout found the target dead.
        self.timeouts = 0
        #: End-to-end latency of every completed logical request.
        self.latency = Tally(keep=True)

    # ------------------------------------------------------------------ #
    def submit(self, request: MetadataRequest):
        """Drive one logical request to completion (or exhaustion)."""
        self.injected += 1
        self.in_flight += 1
        return self.env.process(self._drive(request))

    # ------------------------------------------------------------------ #
    def _is_suspected(self, server: FileServer) -> bool:
        return self.suspected is not None and server.server_id in self.suspected()

    def _drive(self, request: MetadataRequest):
        policy = self.policy
        attempts = 0
        last_target: Optional[object] = None
        while attempts < policy.max_attempts:
            attempts += 1
            server = self.route(request)
            if server is None or server.failed or self._is_suspected(server):
                # No live owner right now (stale mapping or mid-failover):
                # back off and re-locate.
                self.retries += 1
                yield self.env.timeout(policy.backoff(attempts, self.rng))
                continue
            if last_target is not None and server.server_id != last_target:
                self.redirects += 1
            last_target = server.server_id
            # A pristine attempt copy: the original request's arrival is
            # preserved so measured latency includes every retry delay.
            attempt = MetadataRequest(
                fileset=request.fileset, arrival=request.arrival, work=request.work
            )
            done = self.env.event()
            attempt.on_complete = lambda req, ev=done: ev.succeed(req)
            incarnation = server.incarnation
            server.submit(attempt)
            abandoned = False
            while not attempt.done:
                timeout = self.env.timeout(policy.request_timeout)
                yield self.env.any_of([done, timeout])
                if attempt.done:
                    break
                if (
                    server.failed
                    or server.incarnation != incarnation
                    or self._is_suspected(server)
                ):
                    # The attempt died with its server (a crash discards
                    # the queue — even if it has recovered since, this
                    # attempt is gone); abandon and redirect.
                    self.timeouts += 1
                    abandoned = True
                    break
                # Healthy but slow: keep waiting — FIFO guarantees the
                # attempt is still making progress toward the head.
            if not abandoned:
                request.server = attempt.server
                request.service_start = attempt.service_start
                request.completion = attempt.completion
                self.completed += 1
                self.in_flight -= 1
                self.latency.observe(attempt.latency)
                if request.on_complete is not None:
                    request.on_complete(request)
                return
            self.retries += 1
            yield self.env.timeout(policy.backoff(attempts, self.rng))
        self.failed += 1
        self.in_flight -= 1

    # ------------------------------------------------------------------ #
    @property
    def conserved(self) -> bool:
        """The request-conservation ledger: injected == done + pending."""
        return self.injected == self.completed + self.failed + self.in_flight

    @property
    def retries_per_request(self) -> float:
        """Mean retries per injected logical request."""
        return self.retries / self.injected if self.injected else 0.0


class HardenedRequestDriver:
    """Replays a request schedule through a :class:`HardenedClient`.

    Drop-in for :class:`RequestDriver` in the chaos harness: same
    ``submitted`` surface, but every request gets the retry/redirect
    treatment instead of being dropped when routing fails.
    """

    def __init__(
        self,
        env: Simulator,
        schedule: Sequence[MetadataRequest],
        client: HardenedClient,
    ) -> None:
        self.env = env
        self.schedule = list(schedule)
        if any(
            b.arrival < a.arrival for a, b in zip(self.schedule, self.schedule[1:])
        ):
            raise ValueError("request schedule must be sorted by arrival time")
        self.client = client
        self.process = env.process(self._replay())

    def _replay(self):
        for request in self.schedule:
            delay = request.arrival - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            self.client.submit(request)

    @property
    def submitted(self) -> int:
        """Logical requests handed to the client so far."""
        return self.client.injected

    @property
    def dropped(self) -> int:
        """The hardened path never silently drops; failures are counted."""
        return self.client.failed


class AccessClient:
    """A client performing complete accesses: metadata, then data.

    Each access: submit a metadata request to the routed file server,
    wait for its completion, then read ``data_size`` units from the
    disk array across the SAN. End-to-end access latencies land in
    :attr:`access_latency`; the share of each access spent blocked on
    metadata lands in :attr:`metadata_share` — the quantity behind the
    paper's motivation that "clients blocked on metadata may leave the
    high bandwidth SAN underutilized" (§3).
    """

    def __init__(
        self,
        env: Simulator,
        route: Callable[[MetadataRequest], Optional[FileServer]],
        disks: DiskArray,
    ) -> None:
        self.env = env
        self.route = route
        self.disks = disks
        self.access_latency = Tally(keep=True)
        self.metadata_share = Tally()

    def access(self, fileset: str, meta_work: float, data_size: float):
        """Start one access; returns the driving process (awaitable)."""
        return self.env.process(self._access(fileset, meta_work, data_size))

    def _access(self, fileset: str, meta_work: float, data_size: float):
        start = self.env.now
        request = MetadataRequest(fileset=fileset, arrival=start, work=meta_work)
        server = self.route(request)
        if server is None:
            raise RuntimeError(f"no server for file set {fileset!r}")
        done = self.env.event()
        request.on_complete = lambda req: done.succeed(req)
        server.submit(request)
        yield done
        meta_done = self.env.now
        yield self.disks.read(data_size)
        total = self.env.now - start
        self.access_latency.observe(total)
        if total > 0:
            self.metadata_share.observe((meta_done - start) / total)
