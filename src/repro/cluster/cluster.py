"""The shared-disk cluster simulation driver.

:class:`ClusterSimulation` wires a workload, a set of heterogeneous
file servers, and a placement policy into one experiment:

* a :class:`~repro.cluster.client.RequestDriver` replays the workload,
  routing each request through the policy at its arrival instant;
* a tuning process fires every ``tuning_interval`` seconds (two minutes
  in the paper): servers report their interval latency, the policy
  rebalances, and every resulting move is charged its cache costs
  (flush work at the source, cold cache at the target);
* failures/recoveries can be injected at scheduled times for the churn
  experiments.

The run returns a :class:`ClusterResult` carrying everything the
paper's figures need: per-server latency time series (Figures 4, 5),
whole-run aggregate and per-server latency statistics (Figure 6), the
per-round movement log (Figure 7), and the shared-state size
(Figure 8 / §5.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

import numpy as np

from ..core.tuning import LatencyReport
from ..policies.base import (
    LazyKnowledge,
    LoadManager,
    Move,
    PrescientKnowledge,
    RebalanceContext,
)
from ..sim import Simulator, Tally, TimeSeries
from .cache import CacheConfig, CacheModel
from .client import RequestDriver
from .request import MetadataRequest
from .server import FileServer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..workloads.synthetic import Workload

__all__ = ["ClusterConfig", "MovementRecord", "ClusterResult", "ClusterSimulation"]


@dataclass(frozen=True)
class ClusterConfig:
    """Static configuration of one cluster experiment.

    Attributes
    ----------
    server_powers:
        Ordered map server id → processing power. The paper's cluster is
        ``{0: 1, 1: 3, 2: 5, 3: 7, 4: 9}``.
    tuning_interval:
        Seconds between tuning rounds (paper: 120 s, "to avoid
        over-tuning while still providing responsiveness").
    cache:
        Cost model for file-set movement.
    supply_knowledge:
        Whether to compute the prescient oracle each round. The driver
        always *offers* it; only prescient-class policies read it.
    """

    server_powers: Dict[object, float]
    tuning_interval: float = 120.0
    cache: CacheConfig = field(default_factory=CacheConfig)
    supply_knowledge: bool = True

    def __post_init__(self) -> None:
        if not self.server_powers:
            raise ValueError("need at least one server")
        if any(p <= 0 for p in self.server_powers.values()):
            raise ValueError("server powers must be > 0")
        if self.tuning_interval <= 0:
            raise ValueError(f"tuning_interval must be > 0: {self.tuning_interval}")


@dataclass(frozen=True)
class MovementRecord:
    """Movement caused by one reconfiguration (tuning round or churn)."""

    round_index: int
    time: float
    kind: str
    moves: int
    moved_work_share: float


@dataclass
class ClusterResult:
    """Everything measured during one cluster run."""

    policy_name: str
    config: ClusterConfig
    duration: float
    #: Per-server time series of per-interval mean latency.
    server_latency: Dict[object, TimeSeries]
    #: Per-server whole-run latency tallies.
    server_tally: Dict[object, Tally]
    #: Per-server completed-request counts.
    server_requests: Dict[object, int]
    #: Per-server busy-time utilization over the run.
    server_utilization: Dict[object, float]
    #: One record per reconfiguration.
    movement: List[MovementRecord]
    #: Replicated shared-state size (entries) at end of run.
    shared_state_entries: int
    #: Requests submitted / completed / still queued at the end.
    submitted: int
    completed: int
    #: Latency of every completed request (aggregate figures).
    all_latencies: np.ndarray
    #: Kernel events processed during the run (determinism fingerprint:
    #: two runs of the same experiment must process the same count).
    events_processed: int = 0

    # ------------------------------------------------------------------ #
    @property
    def aggregate_mean_latency(self) -> float:
        """Mean latency over all completed requests (Figure 6a)."""
        return float(self.all_latencies.mean()) if self.all_latencies.size else float("nan")

    @property
    def aggregate_std_latency(self) -> float:
        """Standard deviation of request latency (Figure 6a error bars)."""
        return float(self.all_latencies.std(ddof=1)) if self.all_latencies.size > 1 else float("nan")

    @property
    def per_server_mean_latency(self) -> Dict[object, float]:
        """Mean latency of requests served by each server (Figure 6b)."""
        return {sid: t.mean for sid, t in self.server_tally.items()}

    @property
    def unfinished(self) -> int:
        """Requests that never completed (overloaded-server backlog)."""
        return self.submitted - self.completed

    @property
    def total_moves(self) -> int:
        """File-set moves across all reconfigurations (Figure 7 total)."""
        return sum(m.moves for m in self.movement)

    @property
    def total_moved_work_share(self) -> float:
        """Cumulative share of total workload moved (Figure 7, right axis)."""
        return sum(m.moved_work_share for m in self.movement)

    def request_share(self, server_id: object) -> float:
        """Fraction of all completed requests served by ``server_id``.

        Reproduces the paper's server-0 observation: "server 0 served
        only 248 requests (0.37%) out of the total 66,401" (§5.2.2).
        """
        if not self.completed:
            return float("nan")
        return self.server_requests.get(server_id, 0) / self.completed


class ClusterSimulation:
    """One policy × one workload × one cluster configuration."""

    def __init__(
        self,
        workload: "Workload",
        policy: LoadManager,
        config: ClusterConfig,
    ) -> None:
        self.workload = workload
        self.policy = policy
        self.config = config
        self.env = Simulator()
        self.cache = CacheModel(config.cache)
        self.servers: Dict[object, FileServer] = {
            sid: FileServer(self.env, sid, power, cache=self.cache)
            for sid, power in config.server_powers.items()
        }
        self.movement: List[MovementRecord] = []
        self._round = 0
        # Initial placement before t=0 (prescient systems are balanced
        # "from the very beginning, time 0", §5.2.1). The oracle is
        # offered lazily: the catalog scan only runs if the policy
        # actually reads it.
        knowledge = (
            LazyKnowledge(lambda: self._knowledge(0.0))
            if config.supply_knowledge
            else None
        )
        self.policy.initial_placement(workload.catalog, knowledge)
        self.driver = self._make_driver()
        self._tuner = self.env.process(self._tuning_loop())

    def _make_driver(self):
        """Build the request driver (overridden by the chaos harness to
        substitute the retrying :class:`~repro.cluster.client.HardenedClient`
        path)."""
        return RequestDriver(self.env, self.workload.requests, self._route)

    # ------------------------------------------------------------------ #
    # routing and knowledge
    # ------------------------------------------------------------------ #
    def _route(self, request: MetadataRequest) -> Optional[FileServer]:
        sid = self.policy.locate(request.fileset)
        server = self.servers.get(sid)
        if server is None or server.failed:
            return None
        return server

    def _knowledge(self, t0: float) -> PrescientKnowledge:
        """Oracle for the interval starting at ``t0``."""
        t1 = t0 + self.config.tuning_interval
        interval = self.config.tuning_interval
        return PrescientKnowledge(
            server_powers={
                sid: srv.power for sid, srv in self.servers.items() if not srv.failed
            },
            upcoming_work=self.workload.work_between(t0, t1),
            average_work={
                name: self.workload.catalog.get(name).total_work
                / self.workload.duration
                * interval
                for name in self.workload.catalog.names
            },
        )

    # ------------------------------------------------------------------ #
    # the tuning loop
    # ------------------------------------------------------------------ #
    def _tuning_loop(self):
        interval = self.config.tuning_interval
        while True:
            yield self.env.timeout(interval)
            reports: List[LatencyReport] = []
            observed: Dict[str, float] = {}
            for srv in self.servers.values():
                if srv.failed:
                    continue
                reports.append(srv.interval_report())
                for fs, work in srv.drain_fileset_work().items():
                    observed[fs] = observed.get(fs, 0.0) + work
            self._round += 1
            # Offered, not computed: LazyKnowledge defers the O(catalog)
            # oracle build until a prescient-class policy reads it, so
            # simple/ANU/table rounds skip the work entirely.
            t0 = self.env.now
            ctx = RebalanceContext(
                now=t0,
                round_index=self._round,
                reports=reports,
                knowledge=LazyKnowledge(lambda: self._knowledge(t0))
                if self.config.supply_knowledge
                else None,
                observed_fileset_work=observed,
            )
            moves = self.policy.rebalance(ctx)
            self._apply_moves(moves, kind="tune")

    def _apply_moves(self, moves: Sequence[Move], kind: str) -> None:
        moved_share = 0.0
        for move in moves:
            fs = self.workload.catalog.get(move.fileset)
            moved_share += self.workload.catalog.work_share(move.fileset)
            flush = self.cache.on_shed(
                move.fileset,
                move.source,
                move.target,
                self.env.now,
                fs.mean_request_work,
            )
            source = self.servers.get(move.source)
            if source is not None and not source.failed:
                source.charge_flush(flush)
        self.movement.append(
            MovementRecord(
                round_index=self._round,
                time=self.env.now,
                kind=kind,
                moves=len(moves),
                moved_work_share=moved_share,
            )
        )

    # ------------------------------------------------------------------ #
    # churn injection
    # ------------------------------------------------------------------ #
    def schedule_failure(self, time: float, server_id: object) -> None:
        """Fail ``server_id`` at simulated ``time`` (before :meth:`run`)."""
        self.env.schedule_at(time, lambda: self._fail_now(server_id))

    def schedule_recovery(self, time: float, server_id: object) -> None:
        """Recover ``server_id`` at simulated ``time``."""
        self.env.schedule_at(time, lambda: self._recover_now(server_id))

    def _fail_now(self, server_id: object) -> None:
        server = self.servers[server_id]
        orphans = server.fail()
        moves = self.policy.server_failed(server_id)
        self._apply_moves(moves, kind="fail")
        # Clients re-issue the dropped requests to the new owners.
        for request in orphans:
            target = self._route(request)
            if target is not None:
                target.submit(request)

    def _recover_now(self, server_id: object) -> None:
        server = self.servers[server_id]
        server.recover()
        moves = self.policy.server_added(server_id, power_hint=server.power)
        self._apply_moves(moves, kind="recover")

    # ------------------------------------------------------------------ #
    def run(self, until: Optional[float] = None) -> ClusterResult:
        """Execute the simulation and collect results.

        Runs until ``until`` (default: the workload duration). The
        tuning loop is perpetual, so the run is always bounded by the
        deadline rather than calendar exhaustion.
        """
        horizon = until if until is not None else self.workload.duration
        self.env.run(until=horizon)
        all_lat = (
            np.concatenate(
                [srv.completed.samples for srv in self.servers.values()]
            )
            if self.servers
            else np.empty(0)
        )
        return ClusterResult(
            policy_name=self.policy.name,
            config=self.config,
            duration=horizon,
            server_latency={sid: s.latency_series for sid, s in self.servers.items()},
            server_tally={sid: s.completed for sid, s in self.servers.items()},
            server_requests={
                sid: s.completed_requests for sid, s in self.servers.items()
            },
            server_utilization={
                sid: s.utilization(horizon) for sid, s in self.servers.items()
            },
            movement=list(self.movement),
            shared_state_entries=self.policy.shared_state_entries(),
            submitted=self.driver.submitted,
            completed=sum(s.completed_requests for s in self.servers.values()),
            all_latencies=all_lat,
            events_processed=self.env.events_processed,
        )
