"""Deprecated shim: the legacy cluster-simulation entry point.

The simulation driver now lives in :mod:`repro.engine`:
:class:`~repro.engine.engine.ClusterEngine` assembled by
:class:`~repro.engine.builder.SimulationBuilder`. This module keeps the
old names importable — :class:`ClusterConfig`, :class:`ClusterResult`,
:class:`MovementRecord` re-exported from
:mod:`repro.engine.record`, and :class:`ClusterSimulation` as a thin
deprecated subclass of the engine with the default layers (direct
control plane, basic client path, no faults) — exactly what the legacy
class was.

Migration::

    # before
    result = ClusterSimulation(workload, policy, config).run()
    # after
    result = SimulationBuilder(workload, policy, config).build().run()
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING

from ..engine.engine import ClusterEngine
from ..engine.record import ClusterConfig, ClusterResult, MovementRecord
from ..policies.base import LoadManager

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..workloads.synthetic import Workload

__all__ = ["ClusterConfig", "MovementRecord", "ClusterResult", "ClusterSimulation"]


class ClusterSimulation(ClusterEngine):
    """Deprecated: use :class:`repro.engine.SimulationBuilder`.

    A real subclass (not a wrapper), so class-level patching and
    ``isinstance`` checks against the legacy name keep working. The
    warning fires exactly once per construction — subclasses (the other
    shims) warn under their own names instead.
    """

    def __init__(
        self,
        workload: "Workload",
        policy: LoadManager,
        config: ClusterConfig,
    ) -> None:
        if type(self) is ClusterSimulation:
            warnings.warn(
                "ClusterSimulation is deprecated; assemble a ClusterEngine "
                "with repro.engine.SimulationBuilder instead",
                DeprecationWarning,
                stacklevel=2,
            )
        super().__init__(workload, policy, config)
