"""Exception types for the discrete-event simulation kernel.

The kernel (:mod:`repro.sim.kernel`) raises these instead of generic
``RuntimeError``/``ValueError`` so callers can distinguish simulation
protocol violations (scheduling into the past, re-triggering a fired
event) from ordinary bugs.
"""

from __future__ import annotations

__all__ = [
    "SimulationError",
    "SchedulingError",
    "EventStateError",
    "ProcessError",
    "Interrupt",
    "StopSimulation",
]


class SimulationError(Exception):
    """Base class for all kernel errors."""


class SchedulingError(SimulationError):
    """An event was scheduled at an invalid time (e.g. in the past)."""


class EventStateError(SimulationError):
    """An event was used in a way inconsistent with its life cycle.

    Examples: triggering an event twice, or scheduling an event that has
    already been processed.
    """


class ProcessError(SimulationError):
    """A process generator raised, or was resumed in an invalid state."""


class Interrupt(Exception):
    """Thrown *into* a process generator by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    ``Interrupt`` deliberately subclasses :class:`Exception` rather than
    :class:`SimulationError` so that processes can catch it without
    swallowing genuine kernel errors.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Interrupt(cause={self.cause!r})"


class StopSimulation(Exception):
    """Raised internally to terminate :meth:`Simulator.run` early.

    User code normally calls :meth:`Simulator.stop` instead of raising
    this directly.
    """

    def __init__(self, value: object = None) -> None:
        super().__init__(value)
        self.value = value
