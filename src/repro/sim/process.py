"""Generator-based simulation processes.

A :class:`Process` wraps a Python generator. The generator ``yield``\\ s
:class:`~repro.sim.events.Event` objects; each yield suspends the process
until the event fires, at which point the event's value is sent back into
the generator (or its exception thrown in, for failed events).

A process is itself an event: it fires, with the generator's return value,
when the generator finishes. This lets processes wait on each other::

    def parent(env):
        child_proc = env.process(child(env))
        result = yield child_proc          # wait for the child
"""

from __future__ import annotations

from typing import Any, Generator

from .errors import EventStateError, Interrupt, ProcessError
from .events import Event, _PENDING, _PROCESSED, _TRIGGERED

__all__ = ["Process"]


class Process(Event):
    """A running simulation process (also usable as an event).

    Do not instantiate directly; use :meth:`Simulator.process`.
    """

    __slots__ = ("generator", "_target", "name")

    def __init__(self, env: Any, generator: Generator) -> None:
        if not hasattr(generator, "send"):
            raise ProcessError(f"process body must be a generator, got {generator!r}")
        super().__init__(env)
        self.generator = generator
        #: The event this process is currently waiting on (``None`` if
        #: it is scheduled to resume or has finished).
        self._target: Event | None = None
        #: Human-readable name used in reprs and error messages.
        self.name = getattr(generator, "__name__", None) or repr(generator)
        # Kick the process off via an immediately-triggered init event so
        # that processes start in deterministic scheduling order.
        init = Event(env)
        init._cbs = self._resume
        init._state = _TRIGGERED
        env._schedule(init, delay=0.0)

    # ------------------------------------------------------------------ #
    @property
    def is_alive(self) -> bool:
        """``True`` while the generator has not finished."""
        return self._state is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The process stops waiting on its current target (if any) and the
        interrupt is delivered as an exception the generator may catch.
        Interrupting a finished process raises :class:`EventStateError`.
        """
        if not self.is_alive:
            raise EventStateError(f"cannot interrupt finished process {self.name}")
        # Detach from the current target so its later firing is ignored.
        target = self._target
        if target is not None:
            target._discard_callback(self._resume)
        self._target = None
        ev = Event(self.env)
        ev.ok = False
        ev.value = Interrupt(cause)
        ev._state = _TRIGGERED
        ev._defused = True  # the process is the handler
        ev._cbs = self._resume
        self.env._schedule(ev, delay=0.0)

    # ------------------------------------------------------------------ #
    def _resume(self, event: Event) -> None:
        """Advance the generator with the fired ``event``."""
        self._target = None
        try:
            if event.ok:
                next_target = self.generator.send(event.value)
            else:
                event.defuse()
                next_target = self.generator.throw(event.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as exc:
            # Uncaught interrupt terminates the process as failed.
            self.fail(exc)
            return
        except BaseException as exc:
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):  # pragma: no cover
                raise
            self.fail(exc)
            return

        if not isinstance(next_target, Event):
            err = ProcessError(
                f"process {self.name} yielded {next_target!r}, which is not an Event"
            )
            self.generator.close()
            self.fail(err)
            return
        if next_target._state is _PROCESSED:
            # Already fired: resume on the next calendar step to keep
            # time monotone and ordering deterministic.
            bridge = Event(self.env)
            bridge.ok = next_target.ok
            bridge.value = next_target.value
            bridge._state = _TRIGGERED
            if not bridge.ok:
                bridge._defused = True
            bridge._cbs = self._resume
            self.env._schedule(bridge, delay=0.0)
            self._target = bridge
        else:
            next_target._add_callback(self._resume)
            self._target = next_target

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        status = "alive" if self.is_alive else "done"
        return f"<Process {self.name} ({status})>"
