"""Events and the pending-event calendar for the simulation kernel.

An :class:`Event` is a one-shot occurrence with an attached value and a
list of callbacks. Events move through three states:

``PENDING`` → ``TRIGGERED`` (scheduled on the calendar) → ``PROCESSED``
(callbacks ran).

The :class:`EventQueue` is a binary-heap calendar keyed on
``(time, priority, sequence)``. The monotonically increasing sequence
number makes event ordering *fully deterministic*: two events scheduled
for the same time and priority fire in scheduling order, independent of
heap internals. Determinism is essential for reproducible experiments —
every figure in the paper reproduction is re-runnable bit-for-bit from a
seed.

Performance notes
-----------------
The kernel processes one event per simulated request *step*, so event
creation and dispatch dominate experiment wall-time. Two internal
representations keep the common cases allocation-free:

* ``_cbs`` stores the waiter set as ``None`` (no waiters — the dominant
  case for bare timeouts), a single callable (one waiter — the dominant
  timeout→resume pattern), or a list (the general case). The public
  :attr:`Event.callbacks` list is materialized lazily on first access,
  so external code keeps full list semantics while internal code never
  allocates a list per event.
* :class:`Timeout` writes its slots directly instead of chaining
  ``__init__`` calls; it is born ``TRIGGERED``.
"""

from __future__ import annotations

import itertools
from enum import IntEnum
from heapq import heappop, heappush
from typing import Any, Callable, List, Optional

from .errors import EventStateError, SchedulingError

__all__ = ["EventState", "Event", "Timeout", "CompositeEvent", "AllOf", "AnyOf", "EventQueue"]


class EventState(IntEnum):
    """Life-cycle states of an :class:`Event`."""

    PENDING = 0
    TRIGGERED = 1
    PROCESSED = 2


# Singleton members hoisted for identity-fast state tests on hot paths.
_PENDING = EventState.PENDING
_TRIGGERED = EventState.TRIGGERED
_PROCESSED = EventState.PROCESSED


class Event:
    """A one-shot simulation event.

    Parameters
    ----------
    env:
        The owning :class:`~repro.sim.kernel.Simulator`. May be ``None``
        for free-standing events used in tests; such events must be
        triggered through a kernel explicitly.

    Attributes
    ----------
    value:
        The payload delivered to callbacks and to yielding processes.
        ``None`` until the event is triggered.
    ok:
        ``True`` if the event succeeded, ``False`` if it failed. A failed
        event re-raises its ``value`` (an exception) inside any process
        waiting on it.
    callbacks:
        Callables invoked as ``cb(event)`` when the event is processed.
    """

    __slots__ = ("env", "_cbs", "value", "ok", "_state", "_defused")

    def __init__(self, env: Optional["Any"] = None) -> None:
        self.env = env
        self._cbs: Any = None  # None | callable | List[callable]
        self.value: Any = None
        self.ok: bool = True
        self._state = _PENDING
        self._defused = False

    # -- waiter management -------------------------------------------------
    @property
    def callbacks(self) -> List[Callable[["Event"], None]]:
        """Waiter list (materialized lazily; internal storage is compact)."""
        cbs = self._cbs
        if type(cbs) is list:
            return cbs
        lst: List[Callable[["Event"], None]] = [] if cbs is None else [cbs]
        self._cbs = lst
        return lst

    @callbacks.setter
    def callbacks(self, value: List[Callable[["Event"], None]]) -> None:
        self._cbs = list(value)

    def _add_callback(self, cb: Callable[["Event"], None]) -> None:
        """Append a waiter without forcing list materialization."""
        cbs = self._cbs
        if cbs is None:
            self._cbs = cb
        elif type(cbs) is list:
            cbs.append(cb)
        else:
            self._cbs = [cbs, cb]

    def _discard_callback(self, cb: Callable[["Event"], None]) -> None:
        """Remove a waiter if present (no-op otherwise)."""
        cbs = self._cbs
        if cbs is None:
            return
        if type(cbs) is list:
            try:
                cbs.remove(cb)
            except ValueError:
                pass
        elif cbs == cb:
            self._cbs = None

    # -- state inspection -------------------------------------------------
    @property
    def state(self) -> EventState:
        """Current life-cycle state."""
        return self._state

    @property
    def triggered(self) -> bool:
        """``True`` once the event has been placed on the calendar."""
        return self._state >= _TRIGGERED

    @property
    def processed(self) -> bool:
        """``True`` once callbacks have run."""
        return self._state is _PROCESSED

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value`` at the current time."""
        self._trigger(ok=True, value=value)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; ``exception`` propagates to waiters."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() requires an exception, got {exception!r}")
        self._trigger(ok=False, value=exception)
        return self

    def force_trigger(self, value: Any = None, ok: bool = True) -> "Event":
        """Mark the event ``TRIGGERED`` without scheduling it.

        The public seam for code that manages calendar placement itself
        (e.g. :meth:`Simulator.schedule_at` pushes the event at an
        absolute time instead of a delay). The caller *must* place the
        event on a calendar afterwards or it will never be processed.

        Raises :class:`EventStateError` if the event already triggered.
        """
        if self._state is not _PENDING:
            raise EventStateError(f"{self!r} has already been triggered")
        self.ok = ok
        self.value = value
        self._state = _TRIGGERED
        return self

    def _trigger(self, ok: bool, value: Any) -> None:
        if self._state is not _PENDING:
            raise EventStateError(f"{self!r} has already been triggered")
        if self.env is None:
            raise EventStateError(f"{self!r} has no simulator to schedule on")
        self.ok = ok
        self.value = value
        self._state = _TRIGGERED
        self.env._schedule(self, delay=0.0)

    def _mark_processed(self) -> None:
        self._state = _PROCESSED

    def defuse(self) -> None:
        """Mark a failed event as handled so the kernel does not crash.

        When a failed event is processed and nobody is waiting on it, the
        kernel raises the failure to the top level unless the event has
        been defused.
        """
        self._defused = True

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<{type(self).__name__} state={self._state.name} value={self.value!r}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay.

    Created via :meth:`Simulator.timeout`; it is triggered at construction
    time and cannot fail. Slots are written directly (no ``__init__``
    chain) — one Timeout is created per simulated delay, which makes this
    constructor the single hottest allocation site in the kernel.
    """

    __slots__ = ("delay",)

    def __init__(self, env: Any, delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SchedulingError(f"negative timeout delay {delay!r}")
        self.env = env
        self._cbs = None
        self.value = value
        self.ok = True
        self._state = _TRIGGERED
        self._defused = False
        self.delay = delay = float(delay)
        # Inlined Simulator._schedule (delay already validated >= 0):
        # one timeout is created per simulated delay, so the push runs
        # without a function-call indirection. The bare sequence number
        # is the NORMAL-priority ordering key (see EventQueue below).
        heappush(env._heap, (env._now + delay, next(env._seq), self))


class CompositeEvent(Event):
    """Base for events that fire when a condition over child events holds."""

    __slots__ = ("events", "_count")

    def __init__(self, env: Any, events: List[Event]) -> None:
        super().__init__(env)
        self.events = list(events)
        self._count = 0
        if not self.events:
            # Empty condition is immediately true.
            self.succeed({})
            return
        for ev in self.events:
            if ev.processed:
                self._child_fired(ev)
            else:
                ev._add_callback(self._child_fired)

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _child_fired(self, ev: Event) -> None:
        if self._state is not _PENDING:
            return
        if not ev.ok:
            ev.defuse()
            self.fail(ev.value)
            return
        self._count += 1
        if self._satisfied():
            self.succeed({e: e.value for e in self.events if e.processed or e.triggered})


class AllOf(CompositeEvent):
    """Fires when *all* child events have fired (conjunction)."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count == len(self.events)


class AnyOf(CompositeEvent):
    """Fires when *any* child event has fired (disjunction)."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= 1


#: Ordering-key offset applied per priority level. NORMAL events use the
#: bare sequence number (no arithmetic, no extra allocation on the hot
#: path); URGENT events subtract a constant far larger than any sequence
#: number a run can reach, so they sort before every NORMAL event at the
#: same time while staying FIFO among themselves.
_URGENT_OFFSET = 1 << 60


class EventQueue:
    """Deterministic binary-heap event calendar.

    Entries are ``(time, key, event)`` tuples. For NORMAL-priority
    events ``key`` is the bare sequence number drawn from a process-wide
    counter, so FIFO order is preserved among equal times; URGENT events
    use ``seq - 2^60`` so they win every same-time comparison. A single
    integer key keeps entries at three elements and resolves equal-time
    comparisons — common in bursty schedules — with one compare.

    The :class:`~repro.sim.kernel.Simulator` aliases ``_heap`` and
    ``_seq`` so its hot loop can push/pop without a method-call
    indirection; both views always observe the same calendar.
    """

    __slots__ = ("_heap", "_seq")

    #: Default scheduling priority. Lower fires first at equal times.
    NORMAL = 1
    #: Priority for urgent bookkeeping events (fire before NORMAL).
    URGENT = 0

    def __init__(self) -> None:
        self._heap: List[tuple] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: float, event: Event, priority: int = NORMAL) -> None:
        """Schedule ``event`` to fire at absolute ``time``."""
        key = next(self._seq)
        if priority == self.URGENT:
            key -= _URGENT_OFFSET
        heappush(self._heap, (time, key, event))

    def peek_time(self) -> float:
        """Absolute time of the next event; raises ``IndexError`` if empty."""
        return self._heap[0][0]

    def pop(self) -> tuple:
        """Pop and return ``(time, priority, seq, event)`` of the next event."""
        time, key, event = heappop(self._heap)
        if key < 0:
            return (time, self.URGENT, key + _URGENT_OFFSET, event)
        return (time, self.NORMAL, key, event)

    def clear(self) -> None:
        """Drop all pending entries (used when resetting a simulator)."""
        self._heap.clear()
