"""Events and the pending-event calendar for the simulation kernel.

An :class:`Event` is a one-shot occurrence with an attached value and a
list of callbacks. Events move through three states:

``PENDING`` → ``TRIGGERED`` (scheduled on the calendar) → ``PROCESSED``
(callbacks ran).

The :class:`EventQueue` is a binary-heap calendar keyed on
``(time, priority, sequence)``. The monotonically increasing sequence
number makes event ordering *fully deterministic*: two events scheduled
for the same time and priority fire in scheduling order, independent of
heap internals. Determinism is essential for reproducible experiments —
every figure in the paper reproduction is re-runnable bit-for-bit from a
seed.
"""

from __future__ import annotations

import heapq
import itertools
from enum import IntEnum
from typing import Any, Callable, List, Optional

from .errors import EventStateError, SchedulingError

__all__ = ["EventState", "Event", "Timeout", "CompositeEvent", "AllOf", "AnyOf", "EventQueue"]


class EventState(IntEnum):
    """Life-cycle states of an :class:`Event`."""

    PENDING = 0
    TRIGGERED = 1
    PROCESSED = 2


class Event:
    """A one-shot simulation event.

    Parameters
    ----------
    env:
        The owning :class:`~repro.sim.kernel.Simulator`. May be ``None``
        for free-standing events used in tests; such events must be
        triggered through a kernel explicitly.

    Attributes
    ----------
    value:
        The payload delivered to callbacks and to yielding processes.
        ``None`` until the event is triggered.
    ok:
        ``True`` if the event succeeded, ``False`` if it failed. A failed
        event re-raises its ``value`` (an exception) inside any process
        waiting on it.
    callbacks:
        Callables invoked as ``cb(event)`` when the event is processed.
    """

    __slots__ = ("env", "callbacks", "value", "ok", "_state", "_defused")

    def __init__(self, env: Optional["Any"] = None) -> None:
        self.env = env
        self.callbacks: List[Callable[["Event"], None]] = []
        self.value: Any = None
        self.ok: bool = True
        self._state = EventState.PENDING
        self._defused = False

    # -- state inspection -------------------------------------------------
    @property
    def state(self) -> EventState:
        """Current life-cycle state."""
        return self._state

    @property
    def triggered(self) -> bool:
        """``True`` once the event has been placed on the calendar."""
        return self._state >= EventState.TRIGGERED

    @property
    def processed(self) -> bool:
        """``True`` once callbacks have run."""
        return self._state == EventState.PROCESSED

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value`` at the current time."""
        self._trigger(ok=True, value=value)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; ``exception`` propagates to waiters."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() requires an exception, got {exception!r}")
        self._trigger(ok=False, value=exception)
        return self

    def _trigger(self, ok: bool, value: Any) -> None:
        if self._state != EventState.PENDING:
            raise EventStateError(f"{self!r} has already been triggered")
        if self.env is None:
            raise EventStateError(f"{self!r} has no simulator to schedule on")
        self.ok = ok
        self.value = value
        self._state = EventState.TRIGGERED
        self.env._schedule(self, delay=0.0)

    def _mark_processed(self) -> None:
        self._state = EventState.PROCESSED

    def defuse(self) -> None:
        """Mark a failed event as handled so the kernel does not crash.

        When a failed event is processed and nobody is waiting on it, the
        kernel raises the failure to the top level unless the event has
        been defused.
        """
        self._defused = True

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<{type(self).__name__} state={self._state.name} value={self.value!r}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay.

    Created via :meth:`Simulator.timeout`; it is triggered at construction
    time and cannot fail.
    """

    __slots__ = ("delay",)

    def __init__(self, env: Any, delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SchedulingError(f"negative timeout delay {delay!r}")
        super().__init__(env)
        self.delay = float(delay)
        self.ok = True
        self.value = value
        self._state = EventState.TRIGGERED
        env._schedule(self, delay=self.delay)


class CompositeEvent(Event):
    """Base for events that fire when a condition over child events holds."""

    __slots__ = ("events", "_count")

    def __init__(self, env: Any, events: List[Event]) -> None:
        super().__init__(env)
        self.events = list(events)
        self._count = 0
        if not self.events:
            # Empty condition is immediately true.
            self.succeed({})
            return
        for ev in self.events:
            if ev.processed:
                self._child_fired(ev)
            else:
                ev.callbacks.append(self._child_fired)

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _child_fired(self, ev: Event) -> None:
        if self._state != EventState.PENDING:
            return
        if not ev.ok:
            ev.defuse()
            self.fail(ev.value)
            return
        self._count += 1
        if self._satisfied():
            self.succeed({e: e.value for e in self.events if e.processed or e.triggered})


class AllOf(CompositeEvent):
    """Fires when *all* child events have fired (conjunction)."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count == len(self.events)


class AnyOf(CompositeEvent):
    """Fires when *any* child event has fired (disjunction)."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= 1


class EventQueue:
    """Deterministic binary-heap event calendar.

    Entries are ``(time, priority, seq, event)`` tuples. ``seq`` is drawn
    from a process-wide counter so FIFO order is preserved among equal
    ``(time, priority)`` keys.
    """

    __slots__ = ("_heap", "_seq")

    #: Default scheduling priority. Lower fires first at equal times.
    NORMAL = 1
    #: Priority for urgent bookkeeping events (fire before NORMAL).
    URGENT = 0

    def __init__(self) -> None:
        self._heap: List[tuple] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: float, event: Event, priority: int = NORMAL) -> None:
        """Schedule ``event`` to fire at absolute ``time``."""
        heapq.heappush(self._heap, (time, priority, next(self._seq), event))

    def peek_time(self) -> float:
        """Absolute time of the next event; raises ``IndexError`` if empty."""
        return self._heap[0][0]

    def pop(self) -> tuple:
        """Pop and return ``(time, priority, seq, event)`` of the next event."""
        return heapq.heappop(self._heap)

    def clear(self) -> None:
        """Drop all pending entries (used when resetting a simulator)."""
        self._heap.clear()
