"""Measurement collection inside simulations.

Two collectors cover the paper's needs:

* :class:`Tally` — unweighted observations (e.g. per-request latency),
  with streaming mean/variance (Welford) so memory stays O(1) when raw
  samples are not retained.
* :class:`TimeSeries` — timestamped samples (e.g. per-interval server
  latency reported to the delegate), retained in full for plotting the
  paper's latency-versus-time figures.

Both are deliberately simulator-agnostic: they take explicit timestamps
so they can also be unit-tested without a kernel.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Tally", "TimeSeries"]


class Tally:
    """Streaming statistics over unweighted observations.

    Uses Welford's algorithm for numerically stable mean/variance.
    Optionally keeps raw samples (``keep=True``) for percentile queries.

    Retained samples live in a growable NumPy buffer (doubling
    amortized growth) rather than a Python list: one request-latency
    observation lands here per completed request, and the buffer keeps
    that hot path allocation-free while :attr:`samples` stays a zero-
    conversion array view for the analysis layer.
    """

    __slots__ = ("_n", "_mean", "_m2", "_min", "_max", "_keep", "_buf")

    #: Initial retained-sample buffer capacity (doubles on overflow).
    _INITIAL_CAPACITY = 256

    def __init__(self, keep: bool = False) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._keep = bool(keep)
        self._buf: Optional[np.ndarray] = (
            np.empty(self._INITIAL_CAPACITY, dtype=np.float64) if keep else None
        )

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        n = self._n = self._n + 1
        delta = value - self._mean
        self._mean += delta / n
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if self._keep:
            buf = self._buf
            if n > buf.shape[0]:
                grown = np.empty(buf.shape[0] * 2, dtype=np.float64)
                grown[: n - 1] = buf
                self._buf = buf = grown
            buf[n - 1] = value

    # -- pickling (trim the over-allocated buffer) ----------------------- #
    def __getstate__(self) -> dict:
        state = {
            "_n": self._n,
            "_mean": self._mean,
            "_m2": self._m2,
            "_min": self._min,
            "_max": self._max,
            "_keep": self._keep,
            "_buf": self._buf[: self._n].copy() if self._keep else None,
        }
        return state

    def __setstate__(self, state: dict) -> None:
        for key, value in state.items():
            setattr(self, key, value)
        if self._keep and self._buf.shape[0] < self._INITIAL_CAPACITY:
            buf = np.empty(self._INITIAL_CAPACITY, dtype=np.float64)
            buf[: self._n] = self._buf
            self._buf = buf

    def observe_many(self, values: Iterable[float]) -> None:
        """Record a batch of observations.

        Vectorized: batch moments are computed once and merged into the
        running state with the parallel-variance (Chan et al.) update,
        so the vectorized client path can land a whole request cohort
        per call. Mean/variance agree with repeated :meth:`observe` to
        float rounding (the summation order differs); min/max/count and
        retained samples are identical.
        """
        arr = np.asarray(
            values if isinstance(values, (np.ndarray, list, tuple)) else list(values),
            dtype=np.float64,
        ).ravel()
        k = arr.size
        if k == 0:
            return
        n = self._n
        batch_mean = float(arr.mean())
        batch_m2 = float(((arr - batch_mean) ** 2).sum())
        if n == 0:
            self._mean = batch_mean
            self._m2 = batch_m2
        else:
            delta = batch_mean - self._mean
            total = n + k
            self._mean += delta * (k / total)
            self._m2 += batch_m2 + delta * delta * (n * k / total)
        self._n = n + k
        lo = float(arr.min())
        hi = float(arr.max())
        if lo < self._min:
            self._min = lo
        if hi > self._max:
            self._max = hi
        if self._keep:
            buf = self._buf
            cap = buf.shape[0]
            if self._n > cap:
                while cap < self._n:
                    cap *= 2
                grown = np.empty(cap, dtype=np.float64)
                grown[:n] = buf[:n]
                self._buf = buf = grown
            buf[n : self._n] = arr

    def observe_moments(
        self,
        count: int,
        mean: float,
        m2: float,
        minimum: float,
        maximum: float,
        samples: Optional[np.ndarray] = None,
    ) -> None:
        """Merge a pre-summarized batch (same update as observe_many).

        For callers that already hold per-batch moments — e.g. a bulk
        flush that computed per-server sums with ``np.add.reduceat`` —
        this skips re-deriving them from the raw array. ``samples`` is
        retained verbatim when the tally keeps samples; it must then
        have exactly ``count`` elements.
        """
        if count <= 0:
            return
        if self._keep and (samples is None or samples.shape[0] != count):
            raise ValueError(
                f"tally keeps samples: need exactly {count} samples, "
                f"got {None if samples is None else samples.shape[0]}"
            )
        n = self._n
        if n == 0:
            self._mean = mean
            self._m2 = m2
        else:
            delta = mean - self._mean
            total = n + count
            self._mean += delta * (count / total)
            self._m2 += m2 + delta * delta * (n * count / total)
        self._n = n + count
        if minimum < self._min:
            self._min = minimum
        if maximum > self._max:
            self._max = maximum
        if self._keep:
            buf = self._buf
            cap = buf.shape[0]
            if self._n > cap:
                while cap < self._n:
                    cap *= 2
                grown = np.empty(cap, dtype=np.float64)
                grown[:n] = buf[:n]
                self._buf = buf = grown
            buf[n : self._n] = samples

    # ------------------------------------------------------------------ #
    @property
    def count(self) -> int:
        """Number of observations recorded."""
        return self._n

    @property
    def mean(self) -> float:
        """Sample mean; ``nan`` with zero observations."""
        return self._mean if self._n else math.nan

    @property
    def variance(self) -> float:
        """Unbiased sample variance; ``nan`` with < 2 observations."""
        return self._m2 / (self._n - 1) if self._n > 1 else math.nan

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        var = self.variance
        return math.sqrt(var) if not math.isnan(var) else math.nan

    @property
    def minimum(self) -> float:
        """Smallest observation; ``nan`` if empty."""
        return self._min if self._n else math.nan

    @property
    def maximum(self) -> float:
        """Largest observation; ``nan`` if empty."""
        return self._max if self._n else math.nan

    @property
    def samples(self) -> np.ndarray:
        """Raw observations (requires ``keep=True`` at construction).

        Returns a copy so callers may mutate freely without corrupting
        the live buffer.
        """
        if not self._keep:
            raise ValueError("Tally was created with keep=False; raw samples unavailable")
        return self._buf[: self._n].copy()

    def forget_samples(self) -> None:
        """Switch off raw-sample retention (drops any retained so far).

        Streaming moments (count/mean/variance/min/max) keep working.
        The vectorized client path calls this on server tallies — it
        retains flushed latency cohorts itself, and per-server buffer
        appends would copy every observation a second time.
        """
        self._keep = False
        self._buf = None

    def samples_view(self) -> np.ndarray:
        """Raw observations as a read-only view (requires ``keep=True``).

        Unlike :attr:`samples`, no copy is made — but the view is
        invalidated by later observations (the buffer may be replaced
        on growth). For aggregation-time consumers that immediately
        copy into their own storage, e.g. result assembly
        concatenating a thousand server tallies.
        """
        if not self._keep:
            raise ValueError("Tally was created with keep=False; raw samples unavailable")
        view = self._buf[: self._n]
        view.flags.writeable = False
        return view

    def percentile(self, q: float) -> float:
        """``q``-th percentile (requires ``keep=True`` at construction)."""
        if not self._keep:
            raise ValueError("Tally was created with keep=False; raw samples unavailable")
        if not self._n:
            return math.nan
        return float(np.percentile(self._buf[: self._n], q))

    def reset(self) -> None:
        """Forget all observations."""
        self.__init__(keep=self._keep)  # type: ignore[misc]

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return f"<Tally n={self._n} mean={self.mean:.6g}>"


class TimeSeries:
    """Timestamped samples, retained in full.

    Backing storage is two parallel Python lists (cheap appends);
    :meth:`times` / :meth:`values` expose NumPy views for vectorized
    analysis, following the repo's "append in Python, analyse in NumPy"
    idiom.
    """

    __slots__ = ("name", "_t", "_v")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._t: List[float] = []
        self._v: List[float] = []

    def record(self, time: float, value: float) -> None:
        """Append one ``(time, value)`` sample. Times must be nondecreasing."""
        if self._t and time < self._t[-1]:
            raise ValueError(
                f"timestamps must be nondecreasing: got {time} after {self._t[-1]}"
            )
        self._t.append(float(time))
        self._v.append(float(value))

    def __len__(self) -> int:
        return len(self._t)

    def times(self) -> np.ndarray:
        """Sample timestamps as a float array."""
        return np.asarray(self._t, dtype=np.float64)

    def values(self) -> np.ndarray:
        """Sample values as a float array."""
        return np.asarray(self._v, dtype=np.float64)

    def window(self, t0: float, t1: float) -> Tuple[np.ndarray, np.ndarray]:
        """Samples with ``t0 <= time < t1`` as ``(times, values)`` arrays."""
        t = self.times()
        v = self.values()
        mask = (t >= t0) & (t < t1)
        return t[mask], v[mask]

    def window_mean(self, t0: float, t1: float) -> float:
        """Mean value over ``[t0, t1)``; ``nan`` if the window is empty."""
        _, v = self.window(t0, t1)
        return float(v.mean()) if v.size else math.nan

    def resample(self, edges: Sequence[float]) -> np.ndarray:
        """Mean value in each ``[edges[i], edges[i+1])`` bucket.

        Empty buckets yield ``nan``. Vectorized via ``np.searchsorted`` —
        O(n log n) once rather than one scan per bucket.
        """
        edges_arr = np.asarray(edges, dtype=np.float64)
        if edges_arr.size < 2:
            raise ValueError("need at least two bucket edges")
        t = self.times()
        v = self.values()
        idx = np.searchsorted(edges_arr, t, side="right") - 1
        nbuckets = edges_arr.size - 1
        valid = (idx >= 0) & (idx < nbuckets) & (t < edges_arr[-1])
        sums = np.bincount(idx[valid], weights=v[valid], minlength=nbuckets)
        counts = np.bincount(idx[valid], minlength=nbuckets)
        with np.errstate(invalid="ignore"):
            out = sums / counts
        out[counts == 0] = np.nan
        return out

    def last(self) -> Tuple[float, float]:
        """Most recent ``(time, value)``; raises ``IndexError`` if empty."""
        return self._t[-1], self._v[-1]

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return f"<TimeSeries {self.name!r} n={len(self._t)}>"
