"""Shared resources with FIFO queueing.

The paper's simulated file servers "use a first-in-first-out queuing
discipline for workload" (§5.1). :class:`Resource` models a station with
``capacity`` identical service slots and a FIFO wait queue. A
:class:`Request` is an event that fires when a slot is granted; releasing
the slot admits the next waiter.

:class:`Store` is a FIFO producer/consumer buffer used by the control
plane (message queues between servers and the delegate).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional

from .errors import EventStateError, SimulationError
from .events import Event, EventState

__all__ = ["Request", "Resource", "Store"]


class Request(Event):
    """Pending claim on a :class:`Resource` slot.

    Usable as a context manager inside a process::

        with server.request() as req:
            yield req            # wait for a slot
            yield env.timeout(service_time)
        # slot released on exit
    """

    __slots__ = ("resource", "enqueued_at", "granted_at")

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        #: Simulated time the request joined the queue.
        self.enqueued_at = resource.env.now
        #: Simulated time the slot was granted (``None`` while waiting).
        self.granted_at: Optional[float] = None

    @property
    def wait_time(self) -> float:
        """Queueing delay experienced by this request (post-grant only)."""
        if self.granted_at is None:
            raise EventStateError("request has not been granted yet")
        return self.granted_at - self.enqueued_at

    def release(self) -> None:
        """Return the slot (or cancel the request if still queued)."""
        self.resource._release(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()


class Resource:
    """A multi-slot service station with a FIFO wait queue.

    Parameters
    ----------
    env:
        Owning simulator.
    capacity:
        Number of concurrent holders (≥ 1). File servers in the cluster
        model use ``capacity=1`` (a single metadata service thread), which
        matches the paper's FIFO single-queue servers.
    """

    def __init__(self, env: Any, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = int(capacity)
        self._holders: List[Request] = []
        self._waiting: Deque[Request] = deque()

    # ------------------------------------------------------------------ #
    @property
    def in_use(self) -> int:
        """Number of currently held slots."""
        return len(self._holders)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> Request:
        """Join the queue; the returned event fires when a slot is granted."""
        req = Request(self)
        if len(self._holders) < self.capacity:
            self._grant(req)
        else:
            self._waiting.append(req)
        return req

    # ------------------------------------------------------------------ #
    def _grant(self, req: Request) -> None:
        self._holders.append(req)
        req.granted_at = self.env.now
        req.succeed(req)

    def _release(self, req: Request) -> None:
        if req in self._holders:
            self._holders.remove(req)
            while self._waiting and len(self._holders) < self.capacity:
                nxt = self._waiting.popleft()
                if nxt._state == EventState.PENDING:
                    self._grant(nxt)
        else:
            # Cancellation of a queued (or already-released) request.
            try:
                self._waiting.remove(req)
            except ValueError:
                pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return f"<Resource in_use={self.in_use}/{self.capacity} queued={self.queue_length}>"


class Store:
    """Unbounded FIFO buffer of Python objects (message-queue primitive).

    ``put`` never blocks. ``get`` returns an event that fires with the
    oldest item, immediately if one is available.
    """

    def __init__(self, env: Any) -> None:
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Append ``item``; wakes the oldest pending getter, if any."""
        while self._getters:
            getter = self._getters.popleft()
            if getter._state == EventState.PENDING:
                getter.succeed(item)
                return
        self._items.append(item)

    def get(self) -> Event:
        """Event that fires with the next item (FIFO)."""
        ev = Event(self.env)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def drain(self) -> List[Any]:
        """Remove and return all buffered items without waiting."""
        items = list(self._items)
        self._items.clear()
        return items
