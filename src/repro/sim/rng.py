"""Named, reproducible random-number streams.

Every stochastic component of the reproduction (arrival processes,
file-set sizing, hash salts for the synthetic workload, baseline
randomization) draws from its own named stream so that

* changing how one component consumes randomness never perturbs another
  component's draws (stream independence), and
* an entire experiment is reproducible from a single root seed.

Streams are derived with :class:`numpy.random.SeedSequence` spawning
keyed by the stream name, which is the NumPy-recommended way to build
statistically independent generators.
"""

from __future__ import annotations

import zlib
from typing import Dict, Optional

import numpy as np

__all__ = ["StreamRegistry"]


def _name_key(name: str) -> int:
    """Stable 32-bit key for a stream name (CRC32 of its UTF-8 bytes)."""
    return zlib.crc32(name.encode("utf-8"))


class StreamRegistry:
    """Factory of independent named :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    seed:
        Root seed for the whole experiment. Two registries with the same
        seed hand out identical streams for identical names.

    Example
    -------
    >>> reg = StreamRegistry(seed=42)
    >>> arrivals = reg.stream("arrivals")
    >>> sizes = reg.stream("fileset-sizes")
    >>> reg2 = StreamRegistry(seed=42)
    >>> float(arrivals.random()) == float(reg2.stream("arrivals").random())
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._root = np.random.SeedSequence(self.seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator
        object (its state advances as it is consumed).
        """
        gen = self._streams.get(name)
        if gen is None:
            child = np.random.SeedSequence(
                entropy=self._root.entropy, spawn_key=(_name_key(name),)
            )
            gen = np.random.default_rng(child)
            self._streams[name] = gen
        return gen

    def fresh(self, name: str) -> np.random.Generator:
        """A *new* generator for ``name`` reset to its initial state.

        Unlike :meth:`stream`, this never shares state with previous
        callers — used by tests asserting reproducibility.
        """
        child = np.random.SeedSequence(
            entropy=self._root.entropy, spawn_key=(_name_key(name),)
        )
        return np.random.default_rng(child)

    def spawn(self, name: str, count: int) -> list:
        """``count`` independent generators under the ``name`` namespace.

        Useful for per-entity streams, e.g. one arrival process per file
        set: ``reg.spawn("arrivals", n_filesets)``.
        """
        base = np.random.SeedSequence(
            entropy=self._root.entropy, spawn_key=(_name_key(name),)
        )
        return [np.random.default_rng(s) for s in base.spawn(count)]

    def names(self) -> list:
        """Names of streams created so far (sorted)."""
        return sorted(self._streams)

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return f"<StreamRegistry seed={self.seed} streams={len(self._streams)}>"
