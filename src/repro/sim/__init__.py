"""Discrete-event simulation kernel (the YACSIM substitute).

The paper evaluates ANU randomization with a trace-driven simulator
built on YACSIM, a C discrete-event library. This package provides the
equivalent substrate in Python:

* :class:`Simulator` — virtual clock + deterministic event calendar
* generator-based :class:`Process`\\ es
* :class:`Resource` — FIFO service stations (the paper's server queues)
* :class:`Store` — FIFO message buffers for the control plane
* :class:`Tally` / :class:`TimeSeries` — measurement collection
* :class:`StreamRegistry` — named reproducible RNG streams
"""

from .errors import (
    EventStateError,
    Interrupt,
    ProcessError,
    SchedulingError,
    SimulationError,
    StopSimulation,
)
from .events import AllOf, AnyOf, Event, EventQueue, EventState, Timeout
from .kernel import Simulator
from .monitor import Tally, TimeSeries
from .process import Process
from .resources import Request, Resource, Store
from .rng import StreamRegistry

__all__ = [
    "Simulator",
    "Process",
    "Event",
    "EventState",
    "EventQueue",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Resource",
    "Request",
    "Store",
    "Tally",
    "TimeSeries",
    "StreamRegistry",
    "SimulationError",
    "SchedulingError",
    "EventStateError",
    "ProcessError",
    "Interrupt",
    "StopSimulation",
]
