"""The discrete-event simulation kernel (YACSIM substitute).

The paper's evaluation uses YACSIM, a C library for discrete-event
simulation. :class:`Simulator` provides the equivalent facilities in
Python: a virtual clock, an event calendar, generator-based processes,
and (via :mod:`repro.sim.resources`) FIFO service stations.

The kernel is single-threaded and fully deterministic: given the same
seeds and the same scheduling order, two runs produce identical event
sequences. All times are ``float`` seconds of *simulated* time.

Example
-------
>>> from repro.sim import Simulator
>>> sim = Simulator()
>>> log = []
>>> def proc(env):
...     yield env.timeout(5.0)
...     log.append(env.now)
>>> _ = sim.process(proc(sim))
>>> sim.run()
>>> log
[5.0]
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, Optional

from .errors import SchedulingError, SimulationError, StopSimulation
from .events import AllOf, AnyOf, Event, EventQueue, Timeout
from .process import Process

__all__ = ["Simulator"]


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial value of the simulated clock (default ``0.0``).

    Notes
    -----
    The public surface mirrors the small, well-known process-interaction
    style (SimPy-like): :meth:`process` registers a generator as a
    process, :meth:`timeout` creates delay events, and :meth:`run`
    executes the calendar until exhaustion or a deadline.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue = EventQueue()
        self._stopped: Optional[StopSimulation] = None
        #: Number of events processed so far (diagnostic counter).
        self.events_processed = 0

    # ------------------------------------------------------------------ #
    # clock
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    # ------------------------------------------------------------------ #
    # event factories
    # ------------------------------------------------------------------ #
    def event(self) -> Event:
        """Create an untriggered :class:`Event` owned by this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Register ``generator`` as a process and start it immediately.

        The generator may ``yield`` any :class:`Event` (including other
        processes) to wait for it; the value sent back into the generator
        is the event's ``value``.
        """
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires once every event in ``events`` has fired."""
        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires once any event in ``events`` has fired."""
        return AnyOf(self, list(events))

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = EventQueue.NORMAL) -> None:
        """Place a triggered event on the calendar ``delay`` from now."""
        if delay < 0:
            raise SchedulingError(f"cannot schedule {delay!r} seconds into the past")
        self._queue.push(self._now + delay, event, priority)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Run ``callback()`` at absolute simulated ``time``.

        Returns the underlying event. This is the hook used by periodic
        controllers (e.g. the ANU tuning loop) that prefer callback style
        over full processes.
        """
        if time < self._now:
            raise SchedulingError(f"schedule_at({time}) is in the past (now={self._now})")
        ev = Event(self)
        ev.callbacks.append(lambda _ev: callback())
        ev.ok = True
        ev._state = ev._state.__class__.TRIGGERED  # type: ignore[attr-defined]
        self._queue.push(time, ev, EventQueue.NORMAL)
        return ev

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def step(self) -> None:
        """Process exactly one event from the calendar.

        Raises ``IndexError`` if the calendar is empty. Raises the
        failure of an un-defused failed event.
        """
        time, _prio, _seq, event = self._queue.pop()
        if time < self._now:  # pragma: no cover - defensive, cannot happen
            raise SimulationError("calendar produced an event in the past")
        self._now = time
        event._mark_processed()
        self.events_processed += 1
        for callback in event.callbacks:
            callback(event)
        event.callbacks = []  # free references; event is one-shot
        if not event.ok and not event._defused:
            # Nobody handled the failure: surface it.
            raise event.value

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        try:
            return self._queue.peek_time()
        except IndexError:
            return float("inf")

    def run(self, until: Optional[float] = None) -> Any:
        """Run the calendar.

        Parameters
        ----------
        until:
            If given, stop once the clock would pass ``until`` and set the
            clock to exactly ``until``. If ``None``, run until no events
            remain.

        Returns
        -------
        The value passed to :meth:`stop`, if the run was stopped early.
        """
        if until is not None and until < self._now:
            raise SchedulingError(f"run(until={until}) is in the past (now={self._now})")
        try:
            while self._queue:
                if until is not None and self._queue.peek_time() > until:
                    break
                self.step()
        except StopSimulation as stop:
            return stop.value
        if until is not None and self._now < until:
            self._now = until
        return None

    def stop(self, value: Any = None) -> None:
        """Terminate the enclosing :meth:`run` call immediately."""
        raise StopSimulation(value)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        """Number of events currently on the calendar."""
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return f"<Simulator now={self._now} pending={len(self._queue)}>"
