"""The discrete-event simulation kernel (YACSIM substitute).

The paper's evaluation uses YACSIM, a C library for discrete-event
simulation. :class:`Simulator` provides the equivalent facilities in
Python: a virtual clock, an event calendar, generator-based processes,
and (via :mod:`repro.sim.resources`) FIFO service stations.

The kernel is single-threaded and fully deterministic: given the same
seeds and the same scheduling order, two runs produce identical event
sequences. All times are ``float`` seconds of *simulated* time.

The dispatch loop is the throughput floor for every experiment, so
:meth:`step` works directly on the calendar's heap (no method-call
indirection) and dispatches the compact waiter representation of
:class:`~repro.sim.events.Event` — ``None`` / single callable / list —
without allocating per event.

Example
-------
>>> from repro.sim import Simulator
>>> sim = Simulator()
>>> log = []
>>> def proc(env):
...     yield env.timeout(5.0)
...     log.append(env.now)
>>> _ = sim.process(proc(sim))
>>> sim.run()
>>> log
[5.0]
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

from .errors import SchedulingError, StopSimulation
from .events import (
    AllOf,
    AnyOf,
    Event,
    EventQueue,
    Timeout,
    _PROCESSED,
    _TRIGGERED,
    _URGENT_OFFSET,
)
from .process import Process

__all__ = ["Simulator"]


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial value of the simulated clock (default ``0.0``).

    Notes
    -----
    The public surface mirrors the small, well-known process-interaction
    style (SimPy-like): :meth:`process` registers a generator as a
    process, :meth:`timeout` creates delay events, and :meth:`run`
    executes the calendar until exhaustion or a deadline.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue = EventQueue()
        # Fast-lane aliases: the hot loop pushes/pops the heap directly.
        # Both views share state, so external pushes via ``_queue`` (or
        # ``EventQueue.clear``) remain visible here.
        self._heap = self._queue._heap
        self._seq = self._queue._seq
        #: Number of events processed so far (diagnostic counter).
        self.events_processed = 0

    # ------------------------------------------------------------------ #
    # clock
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    # ------------------------------------------------------------------ #
    # event factories
    # ------------------------------------------------------------------ #
    def event(self) -> Event:
        """Create an untriggered :class:`Event` owned by this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` simulated seconds from now.

        Builds the Timeout without chaining through ``__init__`` — one
        timeout per simulated delay makes this the hottest allocation
        site in the kernel, and skipping the extra frame is measurable.
        """
        if delay < 0:
            raise SchedulingError(f"negative timeout delay {delay!r}")
        tm = Timeout.__new__(Timeout)
        tm.env = self
        tm._cbs = None
        tm.value = value
        tm.ok = True
        tm._state = _TRIGGERED
        tm._defused = False
        if type(delay) is not float:
            delay = float(delay)
        tm.delay = delay
        heappush(self._heap, (self._now + delay, next(self._seq), tm))
        return tm

    def process(self, generator: Generator) -> Process:
        """Register ``generator`` as a process and start it immediately.

        The generator may ``yield`` any :class:`Event` (including other
        processes) to wait for it; the value sent back into the generator
        is the event's ``value``.
        """
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires once every event in ``events`` has fired."""
        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires once any event in ``events`` has fired."""
        return AnyOf(self, list(events))

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = EventQueue.NORMAL) -> None:
        """Place a triggered event on the calendar ``delay`` from now."""
        if delay < 0:
            raise SchedulingError(f"cannot schedule {delay!r} seconds into the past")
        key = next(self._seq)
        if priority == EventQueue.URGENT:
            key -= _URGENT_OFFSET
        heappush(self._heap, (self._now + delay, key, event))

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Run ``callback()`` at absolute simulated ``time``.

        Returns the underlying event. This is the hook used by periodic
        controllers (e.g. the ANU tuning loop) that prefer callback style
        over full processes.
        """
        if time < self._now:
            raise SchedulingError(f"schedule_at({time}) is in the past (now={self._now})")
        ev = Event(self)
        ev._add_callback(lambda _ev: callback())
        ev.force_trigger()
        self._queue.push(time, ev, EventQueue.NORMAL)
        return ev

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def step(self) -> None:
        """Process exactly one event from the calendar.

        Raises ``IndexError`` if the calendar is empty. Raises the
        failure of an un-defused failed event.
        """
        entry = heappop(self._heap)
        event = entry[2]
        self._now = entry[0]
        event._state = _PROCESSED
        self.events_processed += 1
        cbs = event._cbs
        if cbs is not None:
            event._cbs = None  # free references; event is one-shot
            if type(cbs) is list:
                for callback in cbs:
                    callback(event)
            else:
                # Single-waiter fast lane (the timeout→resume pattern).
                cbs(event)
        if not event.ok and not event._defused:
            # Nobody handled the failure: surface it.
            raise event.value

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        heap = self._heap
        return heap[0][0] if heap else float("inf")

    def run(self, until: Optional[float] = None) -> Any:
        """Run the calendar.

        Parameters
        ----------
        until:
            If given, stop once the clock would pass ``until`` and set the
            clock to exactly ``until``. If ``None``, run until no events
            remain.

        Returns
        -------
        The value passed to :meth:`stop`, if the run was stopped early.
        """
        if until is not None and until < self._now:
            raise SchedulingError(f"run(until={until}) is in the past (now={self._now})")
        # Inlined step() body: the dispatch loop is the throughput floor
        # of every experiment, so it runs without per-event method calls.
        heap = self._heap
        pop = heappop
        done = _PROCESSED
        processed = 0
        # The clock is stored back to ``self._now`` only when someone
        # can observe it mid-loop (callbacks, failures); waiter-less
        # successful events — bare timeouts — skip the attribute store.
        # The calendar-exhaustion loop is specialized so the unbounded
        # case does not evaluate a deadline per event.
        entry = None
        # Bulk fast lane: a deep calendar whose head event has no
        # waiters (bulk pre-scheduled timeouts) is sorted once — a
        # sorted list is a valid heap, and sorted order IS pop order —
        # then consumed by index at O(1) per event instead of an
        # O(log n) sift each. The drain stops at the first event whose
        # processing anyone could observe (waiters or a failure) and
        # compacts the consumed prefix away; the classic loop below
        # takes over on the still-valid remainder.
        n = len(heap)
        if n >= 256 and heap[0][2]._cbs is None and heap[0][2].ok:
            heap.sort()
            i = 0
            if until is None:
                while i < n:
                    event = heap[i][2]
                    if event._cbs is not None or not event.ok:
                        break
                    event._state = done
                    i += 1
            else:
                while i < n:
                    head = heap[i]
                    if head[0] > until:
                        break
                    event = head[2]
                    if event._cbs is not None or not event.ok:
                        break
                    event._state = done
                    i += 1
            if i:
                processed += i
                entry = heap[i - 1]
                del heap[:i]
        try:
            if until is None:
                while heap:
                    entry = pop(heap)
                    event = entry[2]
                    event._state = done
                    processed += 1
                    cbs = event._cbs
                    if cbs is not None:
                        self._now = entry[0]
                        event._cbs = None  # free references; one-shot
                        if type(cbs) is list:
                            for callback in cbs:
                                callback(event)
                        else:
                            # Single-waiter fast lane (timeout→resume).
                            cbs(event)
                    if not event.ok and not event._defused:
                        self._now = entry[0]
                        raise event.value
            else:
                while heap and heap[0][0] <= until:
                    entry = pop(heap)
                    event = entry[2]
                    event._state = done
                    processed += 1
                    cbs = event._cbs
                    if cbs is not None:
                        self._now = entry[0]
                        event._cbs = None  # free references; one-shot
                        if type(cbs) is list:
                            for callback in cbs:
                                callback(event)
                        else:
                            cbs(event)
                    if not event.ok and not event._defused:
                        self._now = entry[0]
                        raise event.value
        except StopSimulation as stop:
            return stop.value
        finally:
            self.events_processed += processed
            if entry is not None and entry[0] > self._now:
                self._now = entry[0]
        if until is not None and self._now < until:
            self._now = until
        return None

    def stop(self, value: Any = None) -> None:
        """Terminate the enclosing :meth:`run` call immediately."""
        raise StopSimulation(value)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        """Number of events currently on the calendar."""
        return len(self._heap)

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return f"<Simulator now={self._now} pending={len(self._heap)}>"
