"""repro.service — ANU as a live placement service.

The paper's delegate run as a daemon: an asyncio locator serving the
authoritative ANU map over a length-prefixed JSON wire protocol, echo
file servers whose service times follow the paper's power ratios, a
multi-process hardened load generator, a real wall-clock tuning loop on
epoch-batched latency reports, and a digital-twin parity harness that
replays every live run through the simulator.

Layering: this package sits *above* the engine — it may import
``repro.core`` / ``repro.control`` / ``repro.engine`` /
``repro.workloads``, but nothing below may import it back
(``tools/check_layering.py`` enforces both directions).

Start with ``python -m repro.service bench --smoke``.
"""

from __future__ import annotations

from .bench import SCHEMA_VERSION, bench_payload, run_bench, run_bench_sync
from .client import DriveOutcome, FramedConnection, HardenedServiceClient
from .config import PAPER_POWERS, ServiceConfig, full_config, smoke_config
from .fileserver import EchoFileServer
from .loadgen import ClientResult, make_schedule, run_clients, split_schedule
from .locator import LocatorService
from .protocol import (
    MAX_FRAME,
    FrameDecoder,
    ProtocolError,
    decode_payload,
    encode_frame,
    read_frame,
    write_frame,
)
from .recording import (
    EpochRecord,
    MembershipRecord,
    RequestTrace,
    ServiceRecording,
)
from .twin import (
    DECISION_TOLERANCE,
    SIM_TOLERANCE,
    TwinReport,
    build_twin_workload,
    replay_decisions,
    replay_simulation,
    run_twin,
)

__all__ = [
    "SCHEMA_VERSION",
    "bench_payload",
    "run_bench",
    "run_bench_sync",
    "DriveOutcome",
    "FramedConnection",
    "HardenedServiceClient",
    "PAPER_POWERS",
    "ServiceConfig",
    "full_config",
    "smoke_config",
    "EchoFileServer",
    "ClientResult",
    "make_schedule",
    "run_clients",
    "split_schedule",
    "LocatorService",
    "MAX_FRAME",
    "FrameDecoder",
    "ProtocolError",
    "decode_payload",
    "encode_frame",
    "read_frame",
    "write_frame",
    "EpochRecord",
    "MembershipRecord",
    "RequestTrace",
    "ServiceRecording",
    "DECISION_TOLERANCE",
    "SIM_TOLERANCE",
    "TwinReport",
    "build_twin_workload",
    "replay_decisions",
    "replay_simulation",
    "run_twin",
]
