"""Multi-process load generation: replay a workload against the service.

The bench replays the same synthetic workload family the simulator
uses (:func:`repro.workloads.generate_synthetic` — Pareto bursts,
lognormal work, §5.1's ``X ~ U[1,10]`` file-set weights), but paced
against the wall clock: a request scheduled at ``t`` seconds is
injected ``t`` seconds after the shared run origin. Requests fan out
over ``config.clients`` forked worker processes, each running its own
event loop and one :class:`~repro.service.client.HardenedServiceClient`
— real processes, real sockets, real contention, which is the point.

The schedule is split round-robin by arrival rank, so every worker
carries an arrival-sorted slice of the same burst structure, and the
union reconstructs the schedule exactly. Workers report back over a
``multiprocessing`` queue: final ledger counters plus the full
per-request trace (the twin's request timeline).

Platforms without the ``fork`` start method (and in-process tests) use
``processes=False``, which runs every client as a task on the calling
loop — same code path, no isolation.
"""

from __future__ import annotations

import asyncio
import multiprocessing as mp
import queue as queue_module
import random
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..engine.client_path import RetryPolicy
from ..engine.record import derive_seed
from ..workloads.synthetic import SyntheticConfig, Workload, generate_synthetic
from .client import HardenedServiceClient
from .config import ServiceConfig
from .recording import RequestTrace

__all__ = ["ClientResult", "make_schedule", "split_schedule", "run_clients"]

#: (fileset, arrival-offset seconds, work units) — one scheduled request.
Job = Tuple[str, float, float]


@dataclass
class ClientResult:
    """One load generator's final ledger plus its request traces."""

    client_index: int
    injected: int = 0
    completed: int = 0
    failed: int = 0
    retries: int = 0
    redirects: int = 0
    timeouts: int = 0
    #: Ledger residue — nonzero means the run lost track of a request.
    lost: int = 0
    conserved: bool = True
    classified: bool = True
    traces: List[RequestTrace] = field(default_factory=list)


def make_schedule(config: ServiceConfig) -> Workload:
    """The wall-clock workload for one service bench run.

    Reuses the simulator's synthetic generator with the service's
    horizon as the duration; capacity is expressed in work units per
    second (``power / time_scale`` summed over servers), so the
    configured utilization means the same thing it means in simulation.
    """
    synth = SyntheticConfig(
        n_filesets=config.n_filesets,
        duration=config.duration_seconds,
        target_requests=config.target_requests,
        utilization=config.utilization,
        total_capacity=config.total_capacity / config.time_scale,
    )
    return generate_synthetic(synth, seed=config.seed)


def split_schedule(workload: Workload, n_clients: int) -> List[List[Job]]:
    """Round-robin the schedule by arrival rank into per-client slices.

    Each slice stays arrival-sorted; their union is the exact schedule.
    """
    slices: List[List[Job]] = [[] for _ in range(n_clients)]
    for i, request in enumerate(workload.requests):
        slices[i % n_clients].append(
            (request.fileset, float(request.arrival), float(request.work))
        )
    return slices


# ---------------------------------------------------------------------- #
# one client's replay
# ---------------------------------------------------------------------- #
async def replay_client(
    client_index: int,
    jobs: Sequence[Job],
    locator: Tuple[str, int],
    t0: float,
    seed: int,
    retry: Optional[RetryPolicy] = None,
) -> ClientResult:
    """Replay one schedule slice through a hardened client.

    ``t0`` is the shared run origin on the ``time.monotonic`` timebase;
    a job with arrival ``t`` is injected at ``t0 + t``.
    """
    rng = random.Random(derive_seed(seed, f"service-client-{client_index}"))
    client = HardenedServiceClient(locator, policy=retry, rng=rng)
    tasks: List[asyncio.Task] = []
    try:
        await client.connect()
        for name, arrival, work in jobs:
            delay = t0 + arrival - time.monotonic()
            if delay > 0:
                await asyncio.sleep(delay)
            tasks.append(asyncio.ensure_future(client.drive(name, work)))
        outcomes = await asyncio.gather(*tasks)
    finally:
        for task in tasks:
            if not task.done():
                task.cancel()
        await client.close()
    result = ClientResult(
        client_index=client_index,
        injected=client.injected,
        completed=client.completed,
        failed=client.failed,
        retries=client.retries,
        redirects=client.redirects,
        timeouts=client.timeouts,
        lost=client.lost,
        conserved=client.conserved,
        classified=client.classified,
    )
    for (name, arrival, work), outcome in zip(jobs, outcomes):
        result.traces.append(
            RequestTrace(
                fileset=name,
                arrival=arrival,
                work=work,
                server=outcome.server,
                latency=outcome.latency,
                ok=outcome.ok,
            )
        )
    return result


def _worker_main(
    client_index: int,
    jobs: List[Job],
    locator: Tuple[str, int],
    t0: float,
    seed: int,
    queue: "mp.queues.Queue",
) -> None:
    """Forked worker entry point: fresh loop, one client, one result."""
    try:
        result = asyncio.run(
            replay_client(client_index, jobs, locator, t0, seed)
        )
        queue.put((client_index, result, None))
    except BaseException as exc:  # the parent must learn of any death
        queue.put((client_index, None, repr(exc)))


async def run_clients(
    config: ServiceConfig,
    workload: Workload,
    locator: Tuple[str, int],
    t0: float,
    processes: bool = True,
) -> List[ClientResult]:
    """Fan the workload out over the configured client count.

    With ``processes=True`` (and ``fork`` available) each client is a
    forked process; the awaiting side polls the result queue without
    blocking the caller's event loop, which keeps serving the locator
    and echo servers in the meantime. With ``processes=False`` the
    clients run as tasks on the calling loop.
    """
    slices = split_schedule(workload, config.clients)
    if not processes or "fork" not in mp.get_all_start_methods():
        return list(
            await asyncio.gather(
                *(
                    replay_client(i, jobs, locator, t0, config.seed)
                    for i, jobs in enumerate(slices)
                )
            )
        )
    ctx = mp.get_context("fork")
    queue: "mp.queues.Queue" = ctx.Queue()
    procs = [
        ctx.Process(
            target=_worker_main,
            args=(i, jobs, locator, t0, config.seed, queue),
            daemon=True,
        )
        for i, jobs in enumerate(slices)
    ]
    for proc in procs:
        proc.start()
    results: List[ClientResult] = []
    failures: List[str] = []
    try:
        for _ in procs:
            while True:
                try:
                    index, result, error = queue.get_nowait()
                    break
                except queue_module.Empty:
                    await asyncio.sleep(0.05)
            if error is not None:
                failures.append(f"client {index}: {error}")
            else:
                results.append(result)
    finally:
        for proc in procs:
            proc.join(timeout=10.0)
            if proc.is_alive():  # pragma: no cover - watchdog
                proc.terminate()
    if failures:
        raise RuntimeError("load generator(s) crashed: " + "; ".join(failures))
    results.sort(key=lambda r: r.client_index)
    return results
