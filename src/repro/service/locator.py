"""The locator service: the ANU map behind a TCP socket.

This is the paper's delegate turned into a daemon. One asyncio server
owns the authoritative :class:`~repro.core.anu.ANUManager` and speaks
the :mod:`~repro.service.protocol` frame protocol:

``LOCATE name``
    Resolve (registering on first sight) a file set to its current
    server and that server's socket address. Placement changes take
    effect for the *next* locate — exactly the paper's semantics.
``REPORT server latency n``
    Fold a client-measured latency sample into the open epoch's
    :class:`~repro.control.EpochBatcher` window.
``MAP``
    The current epoch, per-server region lengths, and membership —
    what a monitoring dashboard would poll.
``ADMIN join/leave/kill``
    Live membership: commission a new echo server into the layout,
    decommission one gracefully, or declare one crashed.

Every ``epoch_seconds`` the epoch loop closes the batcher window and
runs one real tuning round on the wall-clock reports; the exact report
batch and resulting region lengths are appended to the run's
:class:`~repro.service.recording.ServiceRecording` — the digital twin
replays that control timeline verbatim.

The event loop is single-threaded and every manager operation is
synchronous, so handlers and the epoch loop interleave only at await
points — no locks, no torn tuning rounds.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, Optional, Tuple

from ..control import EpochBatcher, as_controller
from ..core.anu import ANUManager
from ..core.errors import ConfigurationError
from ..core.hashing import HashFamily
from .protocol import ProtocolError, read_frame, write_frame
from .recording import EpochRecord, MembershipRecord, ServiceRecording

__all__ = ["LocatorService"]


class LocatorService:
    """The ANU placement map served over length-prefixed JSON frames.

    Parameters
    ----------
    server_powers:
        Initial membership: server id -> relative power. Powers are
        *recorded* for the twin but never shown to the controller —
        the tuning loop must discover heterogeneity from latencies
        (the paper's central claim).
    addresses:
        Server id -> ``(host, port)`` of the echo server carrying the
        id. Servers joining later announce theirs via ``ADMIN join``.
    epoch_seconds:
        Wall-clock tuning-epoch length.
    hash_seed:
        Seed of the shared :class:`~repro.core.hashing.HashFamily`; the
        twin must be built with the same seed.
    controller:
        Tuning rule (anything :func:`repro.control.as_controller`
        accepts); defaults to the paper's multiplicative rule.
    time_scale:
        Copied into the recording so the twin charges the same
        work -> seconds conversion the echo servers used.
    """

    def __init__(
        self,
        server_powers: Dict[str, float],
        addresses: Dict[str, Tuple[str, int]],
        epoch_seconds: float = 1.0,
        hash_seed: int = 0,
        controller: Optional[object] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        time_scale: float = 1.0,
    ) -> None:
        if epoch_seconds <= 0:
            raise ValueError(f"epoch_seconds must be > 0, got {epoch_seconds}")
        missing = set(server_powers) - set(addresses)
        if missing:
            raise ValueError(f"no address for servers: {sorted(missing)}")
        self.host = host
        self.port = port
        self.epoch_seconds = float(epoch_seconds)
        self.hash_seed = int(hash_seed)
        self.controller = as_controller(controller)
        self.manager = ANUManager(
            server_ids=list(server_powers),
            hash_family=HashFamily(seed=hash_seed),
            controller=self.controller,
        )
        self.batcher = EpochBatcher(list(server_powers))
        self.addresses: Dict[str, Tuple[str, int]] = dict(addresses)
        self.recording = ServiceRecording(
            server_powers=dict(server_powers),
            hash_seed=self.hash_seed,
            epoch_seconds=self.epoch_seconds,
            time_scale=float(time_scale),
            initial_servers=tuple(server_powers),
            initial_lengths={
                str(k): v for k, v in self.manager.lengths().items()
            },
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._writers: set = set()
        self._epoch_task: Optional[asyncio.Task] = None
        self._t0: Optional[float] = None
        self._epoch_index = 0
        #: Request counters (diagnostics / bench cross-checks).
        self.locates = 0
        self.reports_received = 0
        self.samples_received = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self, t0: Optional[float] = None) -> Tuple[str, int]:
        """Bind, start serving, and start the epoch loop.

        ``t0`` is the run's wall-clock origin (``time.monotonic``
        timebase); the bench passes one shared origin so the locator's
        epoch windows line up with the load generators' pacing.
        """
        if self._server is not None:
            raise RuntimeError("locator already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port or 0
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._t0 = time.monotonic() if t0 is None else t0
        self._epoch_task = asyncio.ensure_future(self._epoch_loop())
        return self.host, self.port

    async def stop(self) -> None:
        """Stop the epoch loop and close the listener."""
        if self._epoch_task is not None:
            self._epoch_task.cancel()
            try:
                await self._epoch_task
            except asyncio.CancelledError:
                pass
            self._epoch_task = None
        for writer in list(self._writers):
            try:
                writer.close()
            except Exception:
                pass
        self._writers.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def elapsed(self) -> float:
        """Seconds since the run origin."""
        if self._t0 is None:
            return 0.0
        return time.monotonic() - self._t0

    # ------------------------------------------------------------------ #
    # the epoch loop
    # ------------------------------------------------------------------ #
    async def _epoch_loop(self) -> None:
        while True:
            target = self._t0 + (self._epoch_index + 1) * self.epoch_seconds
            delay = target - time.monotonic()
            if delay > 0:
                await asyncio.sleep(delay)
            self.close_epoch()

    def close_epoch(self) -> EpochRecord:
        """Close the open epoch and run one tuning round *now*.

        Public so tests (and the drain phase of the bench) can force a
        final round without waiting out the timer.
        """
        start = self._epoch_index * self.epoch_seconds
        end = (self._epoch_index + 1) * self.epoch_seconds
        self._epoch_index += 1
        reports = self.batcher.close_epoch(window=(start, end))
        rec = self.manager.tune(reports)
        record = EpochRecord(
            index=self._epoch_index,
            window=(start, end),
            reports=tuple(reports),
            average_latency=rec.average_latency,
            lengths_after={str(k): v for k, v in rec.lengths_after.items()},
            moved=rec.moved,
        )
        self.recording.events.append(record)
        return record

    # ------------------------------------------------------------------ #
    # request handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    message = await read_frame(reader)
                except ProtocolError:
                    break
                if message is None:
                    break
                reply = self.handle(message)
                try:
                    await write_frame(writer, reply)
                except (ConnectionError, RuntimeError):
                    break
        finally:
            self._writers.discard(writer)
            writer.close()

    def handle(self, message: dict) -> dict:
        """Process one request message; returns the reply message.

        Synchronous on purpose: every op is pure bookkeeping against
        in-memory state, and keeping the handler non-async guarantees a
        request is handled atomically w.r.t. the epoch loop.
        """
        op = message.get("op")
        try:
            if op == "locate":
                reply = self._op_locate(message)
            elif op == "report":
                reply = self._op_report(message)
            elif op == "map":
                reply = self._op_map()
            elif op == "admin":
                reply = self._op_admin(message)
            else:
                reply = {"ok": False, "error": f"unknown op {op!r}"}
        except (ConfigurationError, KeyError, ValueError) as exc:
            reply = {"ok": False, "error": str(exc)}
        if "id" in message:
            reply["id"] = message["id"]
        return reply

    def _op_locate(self, message: dict) -> dict:
        name = message.get("name")
        if not isinstance(name, str) or not name:
            return {"ok": False, "error": f"locate needs a name, got {name!r}"}
        self.locates += 1
        server = self.manager.register_fileset(name)
        address = self.addresses.get(server)
        if address is None:
            return {"ok": False, "error": f"server {server!r} has no address"}
        return {
            "ok": True,
            "name": name,
            "server": server,
            "host": address[0],
            "port": address[1],
            "epoch": self.manager.cache_epoch,
        }

    def _op_report(self, message: dict) -> dict:
        server = message.get("server")
        latency = message.get("latency")
        count = message.get("count", 1)
        if not isinstance(latency, (int, float)) or isinstance(latency, bool):
            return {"ok": False, "error": f"bad latency {latency!r}"}
        if not isinstance(count, int) or isinstance(count, bool):
            return {"ok": False, "error": f"bad count {count!r}"}
        self.batcher.observe(server, float(latency), count)
        self.reports_received += 1
        self.samples_received += count
        return {"ok": True}

    def _op_map(self) -> dict:
        lengths = {str(k): v for k, v in self.manager.lengths().items()}
        return {
            "ok": True,
            "epoch": self.manager.cache_epoch,
            "round": self.manager.round_index,
            "lengths": lengths,
            "servers": {
                sid: {"host": addr[0], "port": addr[1]}
                for sid, addr in self.addresses.items()
            },
            "filesets": len(self.manager.assignments),
        }

    def _op_admin(self, message: dict) -> dict:
        action = message.get("action")
        server = message.get("server")
        if not isinstance(server, str) or not server:
            return {"ok": False, "error": f"admin needs a server id, got {server!r}"}
        if action == "join":
            host, port, power = message.get("host"), message.get("port"), message.get("power")
            if not isinstance(host, str) or not isinstance(port, int):
                return {"ok": False, "error": "join needs host and port"}
            if not isinstance(power, (int, float)) or power <= 0:
                return {"ok": False, "error": f"join needs a positive power, got {power!r}"}
            rec = self.manager.add_server(server)
            self.addresses[server] = (host, port)
            self.batcher.track(server)
            self.recording.server_powers[server] = float(power)
        elif action in ("leave", "kill"):
            rec = (
                self.manager.remove_server(server)
                if action == "leave"
                else self.manager.fail_server(server)
            )
            self.addresses.pop(server, None)
            self.batcher.forget(server)
        else:
            return {"ok": False, "error": f"unknown admin action {action!r}"}
        self.recording.events.append(
            MembershipRecord(
                kind=action,
                server_id=server,
                time=self.elapsed,
                lengths_after={str(k): v for k, v in rec.lengths_after.items()},
            )
        )
        return {"ok": True, "moved": rec.moved, "epoch": self.manager.cache_epoch}

    # ------------------------------------------------------------------ #
    def convergence_epoch(self, movement_threshold: float = 0.02) -> Optional[int]:
        """First epoch after which per-epoch region movement stays small.

        Movement is the L1 distance between consecutive epochs' length
        vectors (lengths sum to 1/2, so 1.0 is "everything moved").
        Returns ``None`` when the run never settles.
        """
        trajectory = self.recording.live_trajectory()
        if not trajectory:
            return None
        settled_from: Optional[int] = None
        prev = trajectory[0]
        for i, lengths in enumerate(trajectory[1:], start=2):
            keys = set(prev) | set(lengths)
            move = sum(abs(lengths.get(k, 0.0) - prev.get(k, 0.0)) for k in keys)
            if move > movement_threshold:
                settled_from = None
            elif settled_from is None:
                settled_from = i
            prev = lengths
        return settled_from

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return (
            f"<LocatorService port={self.port} servers={len(self.addresses)} "
            f"epoch={self._epoch_index} locates={self.locates}>"
        )
