"""The live client path: locate, execute, retry, redirect — on sockets.

A port of the simulator's hardened client
(:class:`repro.engine.client_path.HardenedClient`) to asyncio TCP. The
two share the :class:`~repro.engine.client_path.RequestLedger` and the
:class:`~repro.engine.client_path.RetryPolicy`, so the conservation and
classification invariants the chaos harness enforces in simulation are
checked, unchanged, against a real wire:

* every logical request re-**locates** through the locator before each
  attempt — a tuning round redirects the next retry automatically;
* a per-attempt **timeout** abandons dead servers; capped, seeded-
  jitter exponential **backoff** spaces the retries;
* the **ledger** accounts for every request:
  ``injected == completed + failed + in_flight``, always.

Connections are persistent and multiplexed: one
:class:`FramedConnection` per peer carries any number of concurrent
requests, matched to their replies by the protocol's ``id`` field —
a load generator never touches the ephemeral-port range per request.
"""

from __future__ import annotations

import asyncio
import math
import random
import time
from typing import Any, Dict, Optional, Tuple

from ..engine.client_path import RequestLedger, RetryPolicy
from .protocol import ProtocolError, read_frame, write_frame

__all__ = ["FramedConnection", "HardenedServiceClient", "DriveOutcome"]


class FramedConnection:
    """One persistent, request-id-multiplexed protocol connection.

    Concurrent callers of :meth:`request` share the socket; a reader
    task dispatches each reply to its caller by the echoed ``id``. Any
    transport or protocol failure fails *every* pending request — a
    desynchronized frame stream cannot be trusted for any of them.
    """

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self._pending: Dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._closed = False
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def open(cls, host: str, port: int) -> "FramedConnection":
        """Connect to ``host:port`` and start the reply dispatcher."""
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def _read_loop(self) -> None:
        error: Exception = ConnectionResetError("connection closed")
        try:
            while True:
                message = await read_frame(self._reader)
                if message is None:
                    break
                future = self._pending.pop(message.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(message)
        except (ProtocolError, ConnectionError, asyncio.IncompleteReadError) as exc:
            error = exc
        finally:
            self._closed = True
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(error)
            self._pending.clear()

    async def request(
        self, message: Dict[str, Any], timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Send ``message`` and await its reply (matched by ``id``).

        Raises :class:`ConnectionError` when the transport is gone and
        :class:`asyncio.TimeoutError` when the reply misses ``timeout``
        — in the latter case the request's slot is dropped, so a
        straggler reply is discarded instead of crossing wires.
        """
        if self._closed:
            raise ConnectionResetError("connection already closed")
        request_id = self._next_id
        self._next_id += 1
        future: asyncio.Future = asyncio.get_event_loop().create_future()
        self._pending[request_id] = future
        try:
            await write_frame(self._writer, {**message, "id": request_id})
            if timeout is None:
                return await future
            return await asyncio.wait_for(future, timeout)
        finally:
            self._pending.pop(request_id, None)

    async def close(self) -> None:
        """Tear the connection down; pending requests fail."""
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):
            pass
        try:
            self._writer.close()
        except Exception:
            pass

    @property
    def closed(self) -> bool:
        return self._closed


class DriveOutcome:
    """What one logical request came to (the live MetadataRequest)."""

    __slots__ = ("fileset", "work", "server", "latency", "attempt_latency", "ok")

    def __init__(
        self,
        fileset: str,
        work: float,
        server: Optional[str],
        latency: float,
        attempt_latency: float,
        ok: bool,
    ) -> None:
        self.fileset = fileset
        self.work = work
        self.server = server
        self.latency = latency
        self.attempt_latency = attempt_latency
        self.ok = ok


class HardenedServiceClient(RequestLedger):
    """Drives logical requests through locator + echo servers.

    Parameters
    ----------
    locator:
        ``(host, port)`` of the :class:`~repro.service.locator.LocatorService`.
    policy:
        The shared :class:`~repro.engine.client_path.RetryPolicy`
        (defaults match the simulator's hardened path).
    rng:
        Seeded :class:`random.Random` for backoff jitter — live runs
        stay as reproducible as wall clocks allow.
    """

    def __init__(
        self,
        locator: Tuple[str, int],
        policy: Optional[RetryPolicy] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__()
        self.locator_address = locator
        self.policy = policy or RetryPolicy()
        self.rng = rng
        self._locator: Optional[FramedConnection] = None
        self._servers: Dict[str, FramedConnection] = {}

    # ------------------------------------------------------------------ #
    async def connect(self) -> None:
        """Open the locator connection (server connections open lazily)."""
        if self._locator is None or self._locator.closed:
            self._locator = await FramedConnection.open(*self.locator_address)

    async def close(self) -> None:
        """Close every connection this client holds."""
        if self._locator is not None:
            await self._locator.close()
            self._locator = None
        for conn in list(self._servers.values()):
            await conn.close()
        self._servers.clear()

    # ------------------------------------------------------------------ #
    # thin ops (used directly by tests and the bench)
    # ------------------------------------------------------------------ #
    async def locate(self, name: str) -> Dict[str, Any]:
        """One LOCATE round trip (raises on transport failure)."""
        await self.connect()
        return await self._locator.request(
            {"op": "locate", "name": name}, timeout=self.policy.request_timeout
        )

    async def fetch_map(self) -> Dict[str, Any]:
        """One MAP round trip."""
        await self.connect()
        return await self._locator.request(
            {"op": "map"}, timeout=self.policy.request_timeout
        )

    async def admin(self, action: str, server: str, **extra) -> Dict[str, Any]:
        """One ADMIN round trip (join / leave / kill)."""
        await self.connect()
        return await self._locator.request(
            {"op": "admin", "action": action, "server": server, **extra},
            timeout=self.policy.request_timeout,
        )

    async def report(self, server: str, latency: float, count: int = 1) -> None:
        """Send one latency report; transport failures are swallowed
        (a lost report is a lost sample, not a lost request)."""
        try:
            await self.connect()
            await self._locator.request(
                {"op": "report", "server": server, "latency": latency, "count": count},
                timeout=self.policy.request_timeout,
            )
        except (ConnectionError, ProtocolError, asyncio.TimeoutError):
            pass

    # ------------------------------------------------------------------ #
    # the hardened drive loop
    # ------------------------------------------------------------------ #
    async def drive(self, name: str, work: float) -> DriveOutcome:
        """Drive one logical request to completion (or exhaustion).

        The live mirror of the simulator's ``drive_attempts``: locate,
        execute with a timeout, back off with jitter, re-locate, give
        up after ``max_attempts``. Measured latency spans the whole
        logical request — retries and backoffs included — exactly like
        the simulated hardened path charges its requests.

        Ledger discipline: the request sits in ``dispatching`` while
        locating/connecting, ``awaiting_service`` while an attempt is
        on the wire, ``backing_off`` during retry sleeps — and every
        section restores ``dispatching`` on the way out, so the
        classification invariant holds at *every* await point and a
        cancelled drive unwinds to a plain failed request.
        """
        self.ledger_inject()  # enters the ``dispatching`` bucket
        policy = self.policy
        t_start = time.monotonic()
        attempts = 0
        last_target: Optional[str] = None
        settled = False
        try:
            while attempts < policy.max_attempts:
                attempts += 1
                target = await self._locate_target(name)
                if target is None:
                    await self._backoff(attempts)
                    continue
                server, host, port = target
                if last_target is not None and server != last_target:
                    self.redirects += 1
                last_target = server
                conn = await self._server_connection(server, host, port)
                if conn is None:
                    await self._backoff(attempts)
                    continue
                self.dispatching -= 1
                self.awaiting_service += 1
                attempt_start = time.monotonic()
                try:
                    reply = await conn.request(
                        {"op": "exec", "name": name, "work": work},
                        timeout=policy.request_timeout,
                    )
                    succeeded = bool(reply.get("ok"))
                except asyncio.TimeoutError:
                    self.timeouts += 1
                    succeeded = False
                    await self._drop_server(server)
                except (ConnectionError, ProtocolError):
                    succeeded = False
                    await self._drop_server(server)
                finally:
                    self.awaiting_service -= 1
                    self.dispatching += 1
                if succeeded:
                    now = time.monotonic()
                    latency = now - t_start
                    attempt_latency = now - attempt_start
                    self.dispatching -= 1
                    settled = True
                    self.ledger_settle(latency)
                    await self.report(server, attempt_latency)
                    return DriveOutcome(name, work, server, latency, attempt_latency, True)
                await self._backoff(attempts)
            self.dispatching -= 1
            self.ledger_exhaust()
            return DriveOutcome(name, work, None, math.nan, math.nan, False)
        except asyncio.CancelledError:
            # A cancelled drive (harness shutdown) must not corrupt the
            # ledger: the backoff/exec sections restored ``dispatching``
            # on unwind, so account the request as failed and re-raise.
            if not settled:
                self.dispatching -= 1
                self.ledger_exhaust()
            raise

    async def _locate_target(self, name: str) -> Optional[Tuple[str, str, int]]:
        try:
            reply = await self.locate(name)
        except (ConnectionError, ProtocolError, asyncio.TimeoutError):
            return None
        if not reply.get("ok"):
            return None
        server, host, port = reply.get("server"), reply.get("host"), reply.get("port")
        if not isinstance(server, str) or not isinstance(port, int):
            return None
        return server, host, port

    async def _server_connection(
        self, server: str, host: str, port: int
    ) -> Optional[FramedConnection]:
        conn = self._servers.get(server)
        if conn is not None and not conn.closed:
            return conn
        try:
            conn = await FramedConnection.open(host, port)
        except OSError:
            return None
        self._servers[server] = conn
        return conn

    async def _drop_server(self, server: str) -> None:
        conn = self._servers.pop(server, None)
        if conn is not None:
            await conn.close()

    async def _backoff(self, attempts: int) -> None:
        self.retries += 1
        self.dispatching -= 1
        self.backing_off += 1
        try:
            await asyncio.sleep(self.policy.backoff(attempts, self.rng))
        finally:
            self.backing_off -= 1
            self.dispatching += 1
