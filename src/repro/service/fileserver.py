"""Lightweight echo "file servers" with power-scaled service times.

Each :class:`EchoFileServer` is one asyncio TCP listener standing in
for a metadata server of the paper's cluster. It does no real metadata
work — an ``exec`` request sleeps ``work * time_scale / power``
seconds, the same service-time law the simulator's
:class:`~repro.cluster.server.FileServer` charges, then echoes back.
The paper's heterogeneity lives entirely in ``power``: the {1,3,5,7,9}
line-up makes the weakest server nine times slower per unit of work
than the strongest, which is exactly the imbalance the locator's
tuning loop must discover from wall-clock latencies alone.

Service is FIFO through one queue per server (``asyncio.Lock`` wakes
waiters in arrival order), so queueing delay builds up on overloaded
servers just as it does in the simulator — that queueing signal is
what the controller feeds on.
"""

from __future__ import annotations

import asyncio
from typing import Optional, Set, Tuple

from .protocol import ProtocolError, read_frame, write_frame

__all__ = ["EchoFileServer"]


class EchoFileServer:
    """One power-scaled echo server on a loopback TCP port.

    Parameters
    ----------
    server_id:
        The id the locator's layout knows this server by.
    power:
        Relative processing power; service time is
        ``work * time_scale / power``.
    time_scale:
        Seconds of service per work unit on a power-1 server.
    host:
        Bind address (loopback by default — this is a bench harness,
        not a daemon).
    """

    def __init__(
        self,
        server_id: str,
        power: float,
        time_scale: float = 1.0,
        host: str = "127.0.0.1",
    ) -> None:
        if power <= 0:
            raise ValueError(f"power must be > 0, got {power}")
        self.server_id = server_id
        self.power = float(power)
        self.time_scale = float(time_scale)
        self.host = host
        self.port: Optional[int] = None
        self._server: Optional[asyncio.base_events.Server] = None
        # One FIFO service queue, exactly like the simulator's server.
        self._service = asyncio.Lock()
        self._tasks: Set[asyncio.Task] = set()
        self._writers: Set[asyncio.StreamWriter] = set()
        self._killed = False
        #: Requests fully served (diagnostics; the bench cross-checks
        #: the sum against the clients' completion counters).
        self.completed = 0
        #: Total seconds spent in service sleeps.
        self.busy_time = 0.0

    # ------------------------------------------------------------------ #
    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns the bound ``(host, port)``."""
        if self._server is not None:
            raise RuntimeError(f"server {self.server_id!r} already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port or 0
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.host, self.port

    async def stop(self) -> None:
        """Stop listening, drop every connection, cancel in-flight work.

        Dropping established connections matters: peers blocked on a
        reply must see the transport die (that is what drives the
        hardened client's timeout/redirect path on a kill), and
        ``Server.wait_closed`` alone only stops the *listener*.
        """
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()
        for writer in list(self._writers):
            try:
                writer.close()
            except Exception:
                pass
        self._writers.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def kill(self) -> None:
        """Crash-stop: like :meth:`stop`, but refuse future requests.

        Mimics a server failure for the client-hardening tests — open
        connections drop mid-request, which is what drives the client's
        timeout/redirect path.
        """
        self._killed = True
        await self.stop()

    @property
    def address(self) -> Tuple[str, int]:
        """The bound address (only valid after :meth:`start`)."""
        if self.port is None:
            raise RuntimeError(f"server {self.server_id!r} not started")
        return self.host, self.port

    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # One reader loop per connection; each request is served by its
        # own task so a single connection can pipeline requests (the
        # FIFO lock still serializes actual service).
        self._writers.add(writer)
        try:
            while True:
                try:
                    message = await read_frame(reader)
                except ProtocolError:
                    break
                if message is None:
                    break
                task = asyncio.ensure_future(self._serve(message, writer))
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)
        finally:
            self._writers.discard(writer)
            writer.close()

    async def _serve(self, message: dict, writer: asyncio.StreamWriter) -> None:
        reply = {"ok": True, "server": self.server_id}
        if "id" in message:
            reply["id"] = message["id"]
        op = message.get("op")
        if self._killed:
            return  # a dead server answers nothing
        if op == "exec":
            work = message.get("work")
            if not isinstance(work, (int, float)) or work < 0:
                reply = {"ok": False, "error": f"bad work {work!r}", "id": message.get("id")}
            else:
                service = float(work) * self.time_scale / self.power
                async with self._service:
                    if service > 0:
                        await asyncio.sleep(service)
                self.completed += 1
                self.busy_time += service
                reply["service"] = service
                reply["name"] = message.get("name")
        elif op == "ping":
            reply["power"] = self.power
        else:
            reply = {"ok": False, "error": f"unknown op {op!r}", "id": message.get("id")}
        try:
            await write_frame(writer, reply)
        except (ConnectionError, RuntimeError):
            pass  # peer gone; its client-side timeout handles the rest

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return (
            f"<EchoFileServer {self.server_id!r} power={self.power} "
            f"port={self.port} completed={self.completed}>"
        )
