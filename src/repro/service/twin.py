"""The digital-twin parity harness: replay a live run in the simulator.

The bridge that lets the simulator validate against real measurements.
A live run leaves a :class:`~repro.service.recording.ServiceRecording`;
the twin replays it at two levels of strictness:

**Decision replay (exact).** The control timeline holds the *exact*
:class:`~repro.core.tuning.LatencyReport` batches the live controller
consumed. Feeding them to a freshly built manager — same membership,
same hash family, same controller family — must reproduce the live
region trajectory to float precision. This pins the fail-over contract
end-to-end on live data: a newly elected delegate reconstructing from
replicated state makes *identical* decisions. Any drift here is a bug,
not noise.

**Simulation replay (tolerant).** The request timeline (file set,
arrival, work) is rebuilt into a :class:`~repro.workloads.Workload`
and run through the full discrete-event engine with the same powers,
epoch length, controller, and hash seed — but *simulated* latencies.
Wall clocks are noisy (scheduler jitter, socket overhead), so the
simulated trajectory only *tracks* the live one: the per-epoch L1
distance between region-length vectors must stay below a stated
tolerance. Region lengths sum to 1/2, so an L1 distance of 1.0 means
"every region is somewhere else entirely"; the default tolerance of
0.35 says the twin keeps the shape of the live layout while individual
boundaries wobble with the noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..cluster.cache import CacheConfig
from ..cluster.fileset import FileSet, FileSetCatalog
from ..cluster.request import MetadataRequest
from ..control import as_controller
from ..core.anu import ANUManager
from ..core.hashing import HashFamily
from ..engine.builder import ExperimentSpec
from ..engine.record import ClusterConfig
from ..policies.anu import ANURandomization
from ..workloads.synthetic import Workload
from .recording import EpochRecord, MembershipRecord, ServiceRecording

__all__ = [
    "DECISION_TOLERANCE",
    "SIM_TOLERANCE",
    "TwinReport",
    "replay_decisions",
    "build_twin_workload",
    "replay_simulation",
    "run_twin",
]

#: Exact-replay bound: pure float round-off, nothing more.
DECISION_TOLERANCE = 1e-9
#: Simulation-replay bound on per-epoch L1 trajectory distance. See
#: the module docstring for what the scale means; DESIGN.md §10
#: documents the contract.
SIM_TOLERANCE = 0.35


@dataclass
class TwinReport:
    """Both parity verdicts for one recorded run."""

    #: Exact decision replay: max L1 deviation per epoch (float dust).
    decision_max_l1: float
    decision_epochs: int
    decision_ok: bool
    #: Tolerant simulation replay: per-epoch L1 distances live vs sim.
    sim_distances: List[float] = field(default_factory=list)
    sim_max_l1: float = 0.0
    sim_epochs: int = 0
    sim_ok: bool = True
    decision_tolerance: float = DECISION_TOLERANCE
    sim_tolerance: float = SIM_TOLERANCE

    @property
    def ok(self) -> bool:
        """Both replays within their documented tolerances."""
        return self.decision_ok and self.sim_ok


def _l1(a: Dict[str, float], b: Dict[str, float]) -> float:
    keys = set(a) | set(b)
    return sum(abs(a.get(k, 0.0) - b.get(k, 0.0)) for k in keys)


# ---------------------------------------------------------------------- #
# level 1: exact decision replay
# ---------------------------------------------------------------------- #
def replay_decisions(
    recording: ServiceRecording,
    controller: Optional[object] = None,
) -> Tuple[float, int]:
    """Feed the recorded report batches to a fresh manager; compare.

    Returns ``(max_l1_deviation, epochs_replayed)``. The replayed
    manager is what a newly elected delegate would reconstruct: same
    initial membership, same hash family, a fresh fork of the same
    controller family. Membership events are reapplied in recorded
    order, so joins and failures interleave exactly as they did live.
    """
    manager = ANUManager(
        server_ids=list(recording.initial_servers),
        hash_family=HashFamily(seed=recording.hash_seed),
        controller=as_controller(controller).fork(),
    )
    max_l1 = 0.0
    epochs = 0
    for event in recording.events:
        if isinstance(event, EpochRecord):
            rec = manager.tune(list(event.reports))
            replayed = {str(k): v for k, v in rec.lengths_after.items()}
            max_l1 = max(max_l1, _l1(replayed, event.lengths_after))
            epochs += 1
        elif isinstance(event, MembershipRecord):
            if event.kind == "join":
                manager.add_server(event.server_id)
            elif event.kind == "leave":
                manager.remove_server(event.server_id)
            else:  # "kill"
                manager.fail_server(event.server_id)
    return max_l1, epochs


# ---------------------------------------------------------------------- #
# level 2: tolerant simulation replay
# ---------------------------------------------------------------------- #
def build_twin_workload(recording: ServiceRecording) -> Workload:
    """The recorded request timeline as a simulator workload.

    Work is pre-scaled by the recording's ``time_scale`` so the
    simulated service time (``work / power``) equals the live echo
    server's sleep (``work * time_scale / power``).
    """
    traces = sorted(recording.requests, key=lambda t: t.arrival)
    if not traces:
        raise ValueError("recording has no request timeline to replay")
    requests: List[MetadataRequest] = []
    per_fs_work: Dict[str, float] = {}
    per_fs_count: Dict[str, int] = {}
    for trace in traces:
        work = trace.work * recording.time_scale
        requests.append(
            MetadataRequest(fileset=trace.fileset, arrival=trace.arrival, work=work)
        )
        per_fs_work[trace.fileset] = per_fs_work.get(trace.fileset, 0.0) + work
        per_fs_count[trace.fileset] = per_fs_count.get(trace.fileset, 0) + 1
    catalog = FileSetCatalog(
        [
            FileSet(name=name, total_work=per_fs_work[name], n_requests=per_fs_count[name])
            for name in per_fs_work
        ]
    )
    n_epochs = len(recording.epochs)
    duration = max(
        (n_epochs or 1) * recording.epoch_seconds,
        max(t.arrival for t in traces) + recording.epoch_seconds,
    )
    return Workload(
        name="twin-replay",
        catalog=catalog,
        requests=requests,
        duration=duration,
    )


def replay_simulation(
    recording: ServiceRecording,
    controller: Optional[object] = None,
) -> Tuple[List[float], int]:
    """Run the recorded timeline through the discrete-event engine.

    Returns the per-epoch L1 distances between the live and simulated
    region trajectories (and the number of epochs compared). The twin
    engine mirrors the live stack piece for piece — same powers, same
    epoch length, same hash seed, a fork of the same controller — with
    a zero-cost cache model, because the echo servers have no cache to
    flush or warm.
    """
    workload = build_twin_workload(recording)
    policy = ANURandomization(
        server_ids=list(recording.initial_servers),
        hash_family=HashFamily(seed=recording.hash_seed),
    )
    trajectory: List[Dict[str, float]] = []
    policy.manager.add_reconfiguration_hook(
        lambda rec: trajectory.append(
            {str(k): v for k, v in rec.lengths_after.items()}
        )
        if rec.kind == "tune"
        else None
    )
    config = ClusterConfig(
        server_powers={
            sid: recording.server_powers[sid] for sid in recording.initial_servers
        },
        tuning_interval=recording.epoch_seconds,
        cache=CacheConfig(flush_work_scale=0.0, cold_factor=1.0, warmup_time=0.0),
        supply_knowledge=False,
    )
    spec = ExperimentSpec(
        workload=workload,
        policy=policy,
        config=config,
        controller=as_controller(controller),
    )
    engine = spec.build()
    engine.run()
    live = recording.live_trajectory()
    n = min(len(live), len(trajectory))
    return [_l1(live[i], trajectory[i]) for i in range(n)], n


# ---------------------------------------------------------------------- #
# the combined harness
# ---------------------------------------------------------------------- #
def run_twin(
    recording: ServiceRecording,
    controller: Optional[object] = None,
    sim_tolerance: float = SIM_TOLERANCE,
    decision_tolerance: float = DECISION_TOLERANCE,
) -> TwinReport:
    """Both parity checks over one recording; returns the full report."""
    decision_max, decision_epochs = replay_decisions(recording, controller)
    report = TwinReport(
        decision_max_l1=decision_max,
        decision_epochs=decision_epochs,
        decision_ok=decision_epochs > 0 and decision_max <= decision_tolerance,
        decision_tolerance=decision_tolerance,
        sim_tolerance=sim_tolerance,
    )
    if recording.requests:
        distances, epochs = replay_simulation(recording, controller)
        report.sim_distances = distances
        report.sim_epochs = epochs
        report.sim_max_l1 = max(distances) if distances else math.inf
        report.sim_ok = epochs > 0 and report.sim_max_l1 <= sim_tolerance
    else:
        report.sim_ok = False
    return report
