"""Service configuration and its ``REPRO_SERVICE_*`` environment knobs.

All knobs go through :mod:`repro.knobs`, the same strict validator the
cache / fan-out / relocation knobs use: unset means default, anything
set must parse exactly or the service refuses to start. The paper's
cluster shape — powers {1, 3, 5, 7, 9} — is the default line-up; the
smoke profile trims it to two servers so CI finishes in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..knobs import env_float, env_int, register_knob

__all__ = ["ServiceConfig", "smoke_config", "full_config"]

register_knob(
    "REPRO_SERVICE_PORT",
    kind="int",
    default=0,
    help="locator TCP port (0 = ephemeral, the bench default)",
)
register_knob(
    "REPRO_SERVICE_EPOCH_SECONDS",
    kind="float",
    default=None,
    help="wall-clock seconds per tuning epoch (default: profile-dependent)",
)
register_knob(
    "REPRO_SERVICE_CLIENTS",
    kind="int",
    default=None,
    help="load-generating client processes (default: profile-dependent)",
)

#: The paper's heterogeneous cluster: relative powers {1, 3, 5, 7, 9}.
PAPER_POWERS: Tuple[float, ...] = (1.0, 3.0, 5.0, 7.0, 9.0)


@dataclass(frozen=True)
class ServiceConfig:
    """Everything one service bench run needs to know.

    Attributes
    ----------
    host / port:
        Where the locator listens. Port 0 binds an ephemeral port (the
        bench inspects the bound socket); file servers always bind
        ephemeral ports and announce them through ``ADMIN join``.
    server_powers:
        Server id -> relative power; an echo server's service time for
        a request of ``work`` units is ``work * time_scale / power``.
    epoch_seconds:
        Wall-clock tuning-epoch length — the live analogue of the
        simulator's ``tuning_interval``.
    duration_seconds:
        Load-generation horizon. The bench runs the epoch loop until
        the generated schedule *and* all in-flight requests drain.
    clients:
        Load-generating client processes.
    n_filesets / target_requests / utilization:
        Synthetic-workload shape (see
        :class:`repro.workloads.SyntheticConfig`).
    time_scale:
        Seconds of service per work unit on a power-1 server. Chosen
        so the busiest smoke/full profiles keep service times in the
        milliseconds — fast enough for CI, slow enough to measure.
    seed:
        Master seed: workload generation, hash family, retry jitter.
    """

    host: str = "127.0.0.1"
    port: int = 0
    server_powers: Dict[str, float] = field(
        default_factory=lambda: {f"s{i}": p for i, p in enumerate(PAPER_POWERS)}
    )
    epoch_seconds: float = 1.0
    duration_seconds: float = 12.0
    clients: int = 4
    n_filesets: int = 50
    target_requests: int = 4000
    utilization: float = 0.55
    time_scale: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.server_powers:
            raise ValueError("need at least one server")
        if any(p <= 0 for p in self.server_powers.values()):
            raise ValueError("server powers must be > 0")
        if self.epoch_seconds <= 0:
            raise ValueError(f"epoch_seconds must be > 0, got {self.epoch_seconds}")
        if self.duration_seconds <= 0:
            raise ValueError(
                f"duration_seconds must be > 0, got {self.duration_seconds}"
            )
        if self.clients < 1:
            raise ValueError(f"clients must be >= 1, got {self.clients}")
        if self.time_scale <= 0:
            raise ValueError(f"time_scale must be > 0, got {self.time_scale}")

    @property
    def total_capacity(self) -> float:
        """Sum of server powers (the workload calibration base)."""
        return float(sum(self.server_powers.values()))

    def with_env_overrides(self) -> "ServiceConfig":
        """This config with ``REPRO_SERVICE_*`` knobs applied on top."""
        port = env_int("REPRO_SERVICE_PORT", default=None, minimum=0, maximum=65535)
        epoch = env_float(
            "REPRO_SERVICE_EPOCH_SECONDS", default=None, exclusive_minimum=0.0
        )
        clients = env_int("REPRO_SERVICE_CLIENTS", default=None, minimum=1)
        changes = {}
        if port is not None:
            changes["port"] = port
        if epoch is not None:
            changes["epoch_seconds"] = epoch
        if clients is not None:
            changes["clients"] = clients
        if not changes:
            return self
        from dataclasses import replace

        return replace(self, **changes)


def smoke_config(seed: int = 0) -> ServiceConfig:
    """The CI smoke profile: 2 servers, ~4 s of load, short epochs."""
    return ServiceConfig(
        server_powers={"s0": 1.0, "s1": 3.0},
        epoch_seconds=0.5,
        duration_seconds=4.0,
        clients=2,
        n_filesets=16,
        target_requests=600,
        utilization=0.5,
        seed=seed,
    )


def full_config(seed: int = 0) -> ServiceConfig:
    """The committed-bench profile: the paper's 5 powers, ~24 s of load."""
    return ServiceConfig(
        server_powers={f"s{i}": p for i, p in enumerate(PAPER_POWERS)},
        epoch_seconds=1.5,
        duration_seconds=24.0,
        clients=4,
        n_filesets=50,
        target_requests=6000,
        utilization=0.55,
        seed=seed,
    )
