"""Run recordings — the material the digital twin replays.

A live service run leaves two timelines behind:

* the **control timeline** (:class:`EpochRecord` / :class:`MembershipRecord`,
  kept by the locator): per epoch, the exact
  :class:`~repro.core.tuning.LatencyReport` batch the controller saw
  and the region lengths it produced;
* the **request timeline** (:class:`RequestTrace`, kept by the load
  generators): every logical request's file set, arrival offset, work,
  outcome, and measured latency.

:class:`ServiceRecording` bundles both with the run's static identity
(powers, hash seed, epoch length). The twin harness replays the
control timeline *exactly* (same reports -> same controller -> same
lengths, to float precision) and the request timeline *approximately*
(through the discrete-event simulator, judged against a tolerance).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple, Union

from ..core.tuning import LatencyReport

__all__ = [
    "EpochRecord",
    "MembershipRecord",
    "RequestTrace",
    "ServiceRecording",
]


@dataclass(frozen=True)
class EpochRecord:
    """One live tuning epoch: what the controller saw and decided."""

    index: int
    #: Epoch window in seconds since the run started.
    window: Tuple[float, float]
    #: The exact report batch fed to ``ANUManager.tune``.
    reports: Tuple[LatencyReport, ...]
    #: The delegate's system average this epoch (``nan`` if all idle).
    average_latency: float
    #: Region lengths after the tuning round.
    lengths_after: Dict[str, float]
    #: File sets that changed servers in the round.
    moved: int


@dataclass(frozen=True)
class MembershipRecord:
    """One live membership event (join / leave / kill)."""

    kind: str  # "join" | "leave" | "kill"
    server_id: str
    #: Seconds since the run started.
    time: float
    lengths_after: Dict[str, float]


@dataclass(frozen=True)
class RequestTrace:
    """One logical request as the load generator drove it."""

    fileset: str
    #: Scheduled arrival, seconds since the run started.
    arrival: float
    work: float
    #: Serving server id (``None`` when the request failed outright).
    server: Union[str, None]
    #: Measured end-to-end latency in seconds (``nan`` on failure).
    latency: float
    ok: bool


@dataclass
class ServiceRecording:
    """Everything needed to rebuild a live run inside the simulator."""

    server_powers: Dict[str, float]
    hash_seed: int
    epoch_seconds: float
    time_scale: float
    #: Membership at run start (``server_powers`` gains joiners later).
    initial_servers: Tuple[str, ...] = ()
    #: Region lengths at run start (equal split under ANU).
    initial_lengths: Dict[str, float] = field(default_factory=dict)
    #: Control timeline in wall-clock order.
    events: List[Union[EpochRecord, MembershipRecord]] = field(default_factory=list)
    #: Request timeline (unordered; sort by ``arrival`` to replay).
    requests: List[RequestTrace] = field(default_factory=list)

    @property
    def epochs(self) -> List[EpochRecord]:
        """The tuning epochs of the control timeline, in order."""
        return [e for e in self.events if isinstance(e, EpochRecord)]

    def live_trajectory(self) -> List[Dict[str, float]]:
        """Per-epoch region-length vectors of the live run."""
        return [dict(e.lengths_after) for e in self.epochs]

    def completed_traces(self) -> List[RequestTrace]:
        """The requests that completed, arrival-sorted."""
        done = [t for t in self.requests if t.ok]
        done.sort(key=lambda t: t.arrival)
        return done
