"""The locator wire protocol: length-prefixed JSON frames.

Every message on the wire is one *frame*: a 4-byte big-endian unsigned
length followed by exactly that many bytes of UTF-8 JSON encoding one
object. The format is deliberately boring — it survives partial reads,
needs no escaping, and a sans-io decoder (:class:`FrameDecoder`) can be
property-tested without sockets.

Requests (client -> locator)::

    {"op": "locate", "name": "/fs/0001"}
    {"op": "report", "server": "s0", "latency": 0.0123, "count": 4}
    {"op": "map"}
    {"op": "admin", "action": "join",  "server": "s5", "host": ..., "port": ..., "power": 3.0}
    {"op": "admin", "action": "leave", "server": "s5"}
    {"op": "admin", "action": "kill",  "server": "s5"}

Requests (client -> file server)::

    {"op": "exec", "name": "/fs/0001", "work": 0.8}

Every request may carry an ``"id"`` (any JSON scalar); the response
echoes it verbatim, which lets one connection multiplex concurrent
requests. Responses are ``{"ok": true, ...}`` or
``{"ok": false, "error": "..."}``.

Failure discipline: a malformed frame raises :class:`ProtocolError`
immediately — the decoder never blocks on garbage, never yields a
partial object, and never resynchronises silently (a desynchronized
length prefix would misparse every subsequent frame, so the connection
must be torn down).
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "MAX_FRAME",
    "ProtocolError",
    "encode_frame",
    "decode_payload",
    "FrameDecoder",
    "read_frame",
    "write_frame",
]

#: Hard cap on one frame's payload. Locator messages are tens to a few
#: hundred bytes; anything near this bound is a desynchronized stream
#: or an attack, and must kill the connection rather than allocate.
MAX_FRAME = 1 << 20

_LEN = struct.Struct(">I")


class ProtocolError(Exception):
    """A frame or message that violates the wire contract."""


def encode_frame(message: Dict[str, Any]) -> bytes:
    """One message as its on-the-wire frame (length prefix + JSON)."""
    if not isinstance(message, dict):
        raise ProtocolError(
            f"messages are JSON objects, got {type(message).__name__}"
        )
    payload = json.dumps(
        message, separators=(",", ":"), ensure_ascii=False, allow_nan=False
    ).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds MAX_FRAME={MAX_FRAME}"
        )
    return _LEN.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> Dict[str, Any]:
    """One frame's payload bytes back into a message object."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame payload: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(message).__name__}"
        )
    return message


class FrameDecoder:
    """Incremental, sans-io frame decoder.

    Feed arbitrary byte chunks with :meth:`feed`; complete messages come
    back in order. Bytes of an incomplete frame are buffered until the
    rest arrives — the decoder never yields a partial message and never
    raises on a merely *incomplete* frame, only on an *invalid* one
    (oversized length prefix, undecodable payload). After an error the
    decoder is poisoned: the stream cannot be trusted past a bad frame,
    so every later feed re-raises.
    """

    def __init__(self, max_frame: int = MAX_FRAME) -> None:
        self.max_frame = max_frame
        self._buffer = bytearray()
        self._error: Optional[ProtocolError] = None

    def feed(self, data: bytes) -> List[Dict[str, Any]]:
        """Absorb ``data``; return every message completed by it."""
        if self._error is not None:
            raise self._error
        self._buffer.extend(data)
        messages: List[Dict[str, Any]] = []
        try:
            while True:
                if len(self._buffer) < _LEN.size:
                    return messages
                (length,) = _LEN.unpack_from(self._buffer)
                if length > self.max_frame:
                    raise ProtocolError(
                        f"frame length {length} exceeds max_frame={self.max_frame}"
                    )
                if len(self._buffer) < _LEN.size + length:
                    return messages
                payload = bytes(self._buffer[_LEN.size : _LEN.size + length])
                del self._buffer[: _LEN.size + length]
                messages.append(decode_payload(payload))
        except ProtocolError as exc:
            self._error = exc
            raise

    def feed_iter(self, data: bytes) -> Iterator[Dict[str, Any]]:
        """Iterator spelling of :meth:`feed` (tests read nicer)."""
        return iter(self.feed(data))

    @property
    def buffered(self) -> int:
        """Bytes held back waiting for the rest of a frame."""
        return len(self._buffer)

    @property
    def poisoned(self) -> bool:
        """``True`` once a bad frame has been seen (stream is dead)."""
        return self._error is not None


# ---------------------------------------------------------------------- #
# asyncio stream helpers
# ---------------------------------------------------------------------- #
async def read_frame(reader: asyncio.StreamReader) -> Optional[Dict[str, Any]]:
    """Read one message; ``None`` on clean EOF between frames.

    EOF in the *middle* of a frame is a :class:`ProtocolError` — the
    peer died mid-write and the partial bytes must not be mistaken for
    a clean shutdown.
    """
    try:
        header = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(
            f"connection closed inside a frame header ({len(exc.partial)} bytes)"
        ) from None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError(f"frame length {length} exceeds MAX_FRAME={MAX_FRAME}")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed inside a frame body "
            f"({len(exc.partial)}/{length} bytes)"
        ) from None
    return decode_payload(payload)


async def write_frame(writer: asyncio.StreamWriter, message: Dict[str, Any]) -> None:
    """Write one message and drain the transport."""
    writer.write(encode_frame(message))
    await writer.drain()
