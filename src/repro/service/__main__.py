"""``python -m repro.service`` — the live-service command line.

Subcommands
-----------
``bench``
    The full loopback bench: echo servers + locator + forked load
    generators, a real wall-clock tuning loop, the digital-twin parity
    harness, and a schema-gated ``BENCH_service.json``. ``--smoke``
    selects the 2-server CI profile (~5 s); the default is the paper's
    5-power profile. Exits nonzero when any hard gate fails
    (``requests_lost != 0``, no convergence, twin parity broken), so CI
    can call it directly.
``serve``
    Stand up echo servers plus the locator and keep serving until
    interrupted — for poking at the wire protocol by hand.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import List, Optional

from .bench import bench_payload, gate_failures, run_bench, write_payload
from .config import ServiceConfig, full_config, smoke_config
from .fileserver import EchoFileServer
from .locator import LocatorService


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="ANU as a live placement service (see DESIGN.md §10).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    bench = sub.add_parser("bench", help="run the loopback service bench")
    bench.add_argument(
        "--smoke",
        action="store_true",
        help="CI profile: 2 servers, ~5 seconds of load",
    )
    bench.add_argument("--seed", type=int, default=0, help="master seed")
    bench.add_argument(
        "--clients", type=int, default=None, help="override client-process count"
    )
    bench.add_argument(
        "--inline",
        action="store_true",
        help="run load generators as tasks instead of forked processes",
    )
    bench.add_argument(
        "--out",
        default=None,
        help="write the payload here (default: print to stdout)",
    )
    bench.add_argument(
        "--no-gate",
        action="store_true",
        help="report gate failures but exit 0 anyway",
    )

    serve = sub.add_parser("serve", help="run servers + locator until interrupted")
    serve.add_argument("--port", type=int, default=0, help="locator port (0=ephemeral)")
    serve.add_argument("--seed", type=int, default=0, help="hash-family seed")
    serve.add_argument(
        "--epoch-seconds", type=float, default=1.0, help="tuning-epoch length"
    )
    return parser


def _bench_config(args: argparse.Namespace) -> ServiceConfig:
    config = smoke_config(args.seed) if args.smoke else full_config(args.seed)
    config = config.with_env_overrides()
    if args.clients is not None:
        from dataclasses import replace

        config = replace(config, clients=args.clients)
    return config


def _cmd_bench(args: argparse.Namespace) -> int:
    config = _bench_config(args)
    profile = "smoke" if args.smoke else "full"
    recording, results, locator, twin = asyncio.run(
        run_bench(config, processes=not args.inline)
    )
    payload = bench_payload(config, profile, recording, results, locator, twin)
    if args.out:
        write_payload(payload, args.out)
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        json.dump(payload, sys.stdout, indent=2, sort_keys=True, allow_nan=False)
        sys.stdout.write("\n")
    summary = (
        f"[bench:{profile}] {payload['requests_completed']}/"
        f"{payload['requests_injected']} completed, "
        f"{payload['requests_per_sec']:.1f} req/s, "
        f"p99={payload['p99_latency_s']}, "
        f"converged at epoch {payload['convergence_epochs']}, "
        f"twin_ok={payload['twin_ok']}"
    )
    print(summary, file=sys.stderr)
    problems = gate_failures(payload)
    for problem in problems:
        print(f"[bench:{profile}] GATE FAILED: {problem}", file=sys.stderr)
    if problems and not args.no_gate:
        return 1
    return 0


async def _serve(config: ServiceConfig, epoch_seconds: float) -> None:
    servers: List[EchoFileServer] = [
        EchoFileServer(sid, power, time_scale=config.time_scale, host=config.host)
        for sid, power in config.server_powers.items()
    ]
    addresses = {}
    for server in servers:
        addresses[server.server_id] = await server.start()
    locator = LocatorService(
        server_powers=dict(config.server_powers),
        addresses=addresses,
        epoch_seconds=epoch_seconds,
        hash_seed=config.seed,
        host=config.host,
        port=config.port,
        time_scale=config.time_scale,
    )
    host, port = await locator.start()
    print(f"locator on {host}:{port}", file=sys.stderr)
    for sid, (shost, sport) in addresses.items():
        print(f"  server {sid} on {shost}:{sport}", file=sys.stderr)
    try:
        while True:
            await asyncio.sleep(3600)
    except asyncio.CancelledError:
        pass
    finally:
        await locator.stop()
        for server in servers:
            await server.stop()


def _cmd_serve(args: argparse.Namespace) -> int:
    config = full_config(args.seed).with_env_overrides()
    from dataclasses import replace

    config = replace(config, port=args.port if args.port else config.port)
    try:
        asyncio.run(_serve(config, args.epoch_seconds))
    except KeyboardInterrupt:
        pass
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "bench":
        return _cmd_bench(args)
    return _cmd_serve(args)


if __name__ == "__main__":
    sys.exit(main())
