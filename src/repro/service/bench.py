"""The service bench: servers + locator + clients on loopback, measured.

``python -m repro.service bench`` orchestrates one complete live run:

1. start one :class:`~repro.service.fileserver.EchoFileServer` per
   configured power on ephemeral loopback ports;
2. start the :class:`~repro.service.locator.LocatorService` over them,
   epoch loop armed on a shared run origin;
3. fork the load-generating client processes
   (:mod:`~repro.service.loadgen`) against the same origin and let the
   schedule drain;
4. close the final epoch, stop everything, and fold the client traces
   into the locator's :class:`~repro.service.recording.ServiceRecording`;
5. run the digital-twin parity harness (:mod:`~repro.service.twin`);
6. emit the schema-gated ``BENCH_service.json`` payload.

The payload's hard gates — checked here *and* by
``tools/check_bench_schema.py`` on the committed artifact:

* ``requests_lost == 0`` — the conservation ledger accounts for every
  injected request, on real sockets;
* ``twin.decision_ok`` — the recorded control timeline replays exactly;
* ``twin.sim_ok`` — the simulator tracks the live region trajectory
  within the documented tolerance.
"""

from __future__ import annotations

import asyncio
import json
import math
import time
from typing import Dict, List, Optional, Tuple

from .. import __version__
from .config import ServiceConfig
from .fileserver import EchoFileServer
from .loadgen import ClientResult, make_schedule, run_clients
from .locator import LocatorService
from .recording import ServiceRecording
from .twin import TwinReport, run_twin

__all__ = ["SCHEMA_VERSION", "run_bench", "bench_payload", "run_bench_sync"]

#: Bump alongside ``tools/check_bench_schema.py`` when the payload
#: shape changes.
SCHEMA_VERSION = 1

#: Load-generator start margin: the run origin sits this far in the
#: future so forked clients are up before the first arrival is due.
START_MARGIN_S = 0.3


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return math.nan
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


async def run_bench(
    config: ServiceConfig,
    processes: bool = True,
    controller: Optional[object] = None,
) -> Tuple[ServiceRecording, List[ClientResult], LocatorService, TwinReport]:
    """One live run end to end; returns every measurement artifact."""
    servers = [
        EchoFileServer(sid, power, time_scale=config.time_scale, host=config.host)
        for sid, power in config.server_powers.items()
    ]
    locator: Optional[LocatorService] = None
    try:
        addresses: Dict[str, Tuple[str, int]] = {}
        for server in servers:
            addresses[server.server_id] = await server.start()
        locator = LocatorService(
            server_powers=dict(config.server_powers),
            addresses=addresses,
            epoch_seconds=config.epoch_seconds,
            hash_seed=config.seed,
            controller=controller,
            host=config.host,
            port=config.port,
            time_scale=config.time_scale,
        )
        workload = make_schedule(config)
        t0 = time.monotonic() + START_MARGIN_S
        host, port = await locator.start(t0=t0)
        results = await run_clients(
            config, workload, (host, port), t0, processes=processes
        )
        # The clients have all joined: every request is settled and its
        # report delivered. One forced epoch close folds the samples of
        # the open partial window into the recording.
        locator.close_epoch()
    finally:
        if locator is not None:
            await locator.stop()
        for server in servers:
            await server.stop()
    recording = locator.recording
    for result in results:
        recording.requests.extend(result.traces)
    twin = run_twin(recording, controller)
    return recording, results, locator, twin


def bench_payload(
    config: ServiceConfig,
    profile: str,
    recording: ServiceRecording,
    results: List[ClientResult],
    locator: LocatorService,
    twin: TwinReport,
) -> dict:
    """The ``BENCH_service.json`` payload for one finished run."""
    injected = sum(r.injected for r in results)
    completed = sum(r.completed for r in results)
    failed = sum(r.failed for r in results)
    lost = sum(r.lost for r in results)
    conserved = all(r.conserved for r in results)
    classified = all(r.classified for r in results)
    latencies = sorted(
        t.latency for t in recording.requests if t.ok and math.isfinite(t.latency)
    )
    epochs = recording.epochs
    horizon = max(
        (e.window[1] for e in epochs), default=config.duration_seconds
    )
    # Per-epoch rows: completions bucketed by completion time.
    per_epoch_done: Dict[int, List[float]] = {}
    for trace in recording.requests:
        if not trace.ok or not math.isfinite(trace.latency):
            continue
        done_at = trace.arrival + trace.latency
        bucket = min(int(done_at / config.epoch_seconds), max(len(epochs) - 1, 0))
        per_epoch_done.setdefault(bucket, []).append(trace.latency)
    rows = []
    prev_lengths = dict(recording.initial_lengths)
    for i, epoch in enumerate(epochs):
        keys = set(prev_lengths) | set(epoch.lengths_after)
        movement = sum(
            abs(epoch.lengths_after.get(k, 0.0) - prev_lengths.get(k, 0.0))
            for k in keys
        )
        prev_lengths = dict(epoch.lengths_after)
        done = sorted(per_epoch_done.get(i, []))
        rows.append(
            {
                "epoch": epoch.index,
                "start_s": epoch.window[0],
                "end_s": epoch.window[1],
                "completed": len(done),
                "requests_per_sec": len(done) / config.epoch_seconds,
                "mean_latency_s": (sum(done) / len(done)) if done else None,
                "p99_latency_s": _percentile(done, 0.99) if done else None,
                "average_latency_s": (
                    None
                    if math.isnan(epoch.average_latency)
                    else epoch.average_latency
                ),
                "movement_l1": movement,
                "moved_filesets": epoch.moved,
            }
        )
    convergence = locator.convergence_epoch()
    return {
        "bench": "service",
        "schema_version": SCHEMA_VERSION,
        "version": __version__,
        "profile": profile,
        "seed": config.seed,
        "clients": config.clients,
        "epoch_seconds": config.epoch_seconds,
        "duration_s": horizon,
        "time_scale": config.time_scale,
        "n_servers": len(config.server_powers),
        "server_powers": {k: float(v) for k, v in config.server_powers.items()},
        "n_filesets": config.n_filesets,
        "requests_injected": injected,
        "requests_completed": completed,
        "requests_failed": failed,
        "requests_lost": lost,
        "conserved": conserved,
        "classified": classified,
        "retries": sum(r.retries for r in results),
        "redirects": sum(r.redirects for r in results),
        "timeouts": sum(r.timeouts for r in results),
        "requests_per_sec": completed / horizon if horizon > 0 else 0.0,
        "mean_latency_s": (sum(latencies) / len(latencies)) if latencies else None,
        "p50_latency_s": _percentile(latencies, 0.50) if latencies else None,
        "p99_latency_s": _percentile(latencies, 0.99) if latencies else None,
        "epochs": len(epochs),
        "convergence_epochs": convergence,
        "converged": convergence is not None,
        "locates": locator.locates,
        "latency_samples": locator.samples_received,
        "twin": {
            "decision_max_l1": twin.decision_max_l1,
            "decision_epochs": twin.decision_epochs,
            "decision_ok": twin.decision_ok,
            "decision_tolerance": twin.decision_tolerance,
            "sim_max_l1": twin.sim_max_l1,
            "sim_epochs": twin.sim_epochs,
            "sim_ok": twin.sim_ok,
            "sim_tolerance": twin.sim_tolerance,
        },
        "twin_ok": twin.ok,
        "rows": rows,
    }


def gate_failures(payload: dict) -> List[str]:
    """The bench's own hard gates (CI fails the job on any of these)."""
    problems = []
    if payload["requests_lost"] != 0:
        problems.append(f"requests_lost = {payload['requests_lost']} (must be 0)")
    if not payload["conserved"]:
        problems.append("conservation ledger violated")
    if not payload["classified"]:
        problems.append("in-flight classification violated")
    if payload["requests_completed"] == 0:
        problems.append("no requests completed")
    if not payload["converged"]:
        problems.append("live tuning loop did not converge within the run")
    if not payload["twin"]["decision_ok"]:
        problems.append(
            f"twin decision replay deviated by {payload['twin']['decision_max_l1']}"
        )
    if not payload["twin"]["sim_ok"]:
        problems.append(
            f"twin simulation replay off by L1={payload['twin']['sim_max_l1']} "
            f"(tolerance {payload['twin']['sim_tolerance']})"
        )
    return problems


def run_bench_sync(
    config: ServiceConfig,
    profile: str,
    processes: bool = True,
    controller: Optional[object] = None,
) -> dict:
    """Blocking wrapper: run the bench and return the payload."""
    recording, results, locator, twin = asyncio.run(
        run_bench(config, processes=processes, controller=controller)
    )
    return bench_payload(config, profile, recording, results, locator, twin)


def write_payload(payload: dict, path: str) -> None:
    """Write the artifact (strict JSON — no NaN/Infinity tokens)."""
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True, allow_nan=False)
        fh.write("\n")
