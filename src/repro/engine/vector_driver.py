"""The vectorized client path: whole-cohort request drains.

:class:`VectorizedClientPath` is a drop-in
:class:`~repro.engine.client_path.ClientPath` — same engine, same
control plane, same tuning loop, same result record — whose driver
advances one *tuning interval of requests* per simulation event instead
of one request. Each wake it:

1. refreshes the policy's file-set → server assignment (array-valued
   when the policy provides :meth:`assignment_vector`, else via scalar
   ``locate`` calls);
2. slices the workload's columnar arrays for arrivals in ``[t0, t1)``
   and computes every completion time with the
   :func:`~repro.core.vector.fifo_drain` recurrence;
3. flushes completions that fall *inside* closed windows into each
   server's interval accumulators — strictly before the tuner's
   ``interval_report`` runs at the same instant, preserving the scalar
   path's measurement windows.

The driver wakes before the tuner at every boundary by construction:
the engine builds the client path first, so the driver's timeout always
carries the earlier sequence number.

Scope (validated at run start, loud errors otherwise):

* cache effects disabled (``CacheConfig.enabled`` false) — cohort
  service times are state-free;
* :class:`~repro.engine.control.DirectControlPlane` and
  :class:`~repro.engine.fault_layer.NullFaultLayer` — no mid-interval
  failures or power changes;
* no per-request probes (``RequestCompleted`` subscribers);
* per-file-set window work is not tracked (``drain_fileset_work``
  stays empty), so observation-driven bin-packing policies are out of
  scope on this path;
* per-server tallies do not retain raw samples (the driver keeps the
  flushed cohorts itself and hands the aggregate to the engine), so
  per-server percentile/SLA metrics are unavailable — aggregate
  latencies and per-server streaming moments are unaffected.

Aggregate metrics agree with the scalar driver to float rounding; see
``tests/engine/test_vector_equivalence.py`` for the documented
tolerances.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from ..core.errors import ConfigurationError
from ..core.vector import fifo_drain
from .client_path import ClientPath
from .probes import RequestCompleted

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import ClusterEngine

__all__ = ["VectorizedClientPath", "VectorizedRequestDriver"]


class VectorizedRequestDriver:
    """Drains whole request cohorts through array-backed FIFO servers."""

    def __init__(self, engine: "ClusterEngine") -> None:
        workload = engine.workload
        for attr in ("_arrivals", "_works", "_fs_idx"):
            if not hasattr(workload, attr):
                raise ConfigurationError(
                    f"workload {workload!r} lacks columnar array {attr!r}; "
                    "the vectorized client path needs array-backed workloads"
                )
        self.engine = engine
        self.env = engine.env
        self._arrivals: np.ndarray = workload._arrivals
        self._works: np.ndarray = workload._works
        self._fs_idx: np.ndarray = workload._fs_idx
        if self._fs_idx.dtype.itemsize > 4 and len(workload.catalog) < 2**31:
            self._fs_idx = self._fs_idx.astype(np.int32)
        names = getattr(workload, "_fs_names", None)
        self._names: List[str] = (
            list(names) if names is not None else list(workload.catalog.names)
        )
        # Fixed slot order: the config's server insertion order, same
        # order the engine builds FileServers in.
        server_ids = list(engine.config.server_powers)
        self._slots: Dict[object, int] = {sid: i for i, sid in enumerate(server_ids)}
        self._servers = [engine.servers[sid] for sid in server_ids]
        self._powers = np.array(
            [engine.config.server_powers[sid] for sid in server_ids], dtype=np.float64
        )
        #: Absolute time each server's queue drains empty.
        self._free_at = np.zeros(len(server_ids), dtype=np.float64)
        # The driver retains flushed latency cohorts itself (handed to
        # the engine via collected_latencies); per-server tally buffers
        # would copy every latency a second time and regrow along the
        # way. Per-server raw samples are therefore unavailable on this
        # path — streaming per-server moments are kept as always.
        for server in self._servers:
            server.completed.forget_samples()
        self._flushed: List[np.ndarray] = []
        # Computed-but-unflushed completions: (server slot, completion,
        # latency, service) column tuples.
        self._pending: List[Tuple[np.ndarray, ...]] = []
        # Narrow-dtype view of the current assignment vector, memoized
        # on the source array (policies cache theirs per epoch).
        self._assign_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._cursor = 0
        self._submitted = 0
        self._dropped = 0
        #: Compat with the scalar driver surface (no hardened client).
        self.client = None
        self.process = engine.env.process(self._drive())

    # ------------------------------------------------------------------ #
    @property
    def submitted(self) -> int:
        """Requests handed to servers so far."""
        return self._submitted

    @property
    def dropped(self) -> int:
        """Requests that could not be routed (always 0: no fault layer)."""
        return self._dropped

    # ------------------------------------------------------------------ #
    def _validate(self) -> None:
        """Check the engine assembly fits the vectorized path's scope.

        Runs at process start (t=0), after every layer is attached.
        """
        from .control import DirectControlPlane
        from .fault_layer import NullFaultLayer

        engine = self.engine
        if engine.cache.config.enabled:
            raise ConfigurationError(
                "vectorized client path requires cache effects disabled "
                "(CacheConfig(flush_work_scale=0, cold_factor=1.0) or "
                "warmup_time=0); got "
                f"{engine.cache.config!r}"
            )
        if not isinstance(engine.control, DirectControlPlane):
            raise ConfigurationError(
                "vectorized client path requires DirectControlPlane, got "
                f"{type(engine.control).__name__}"
            )
        if type(engine.faults) is not NullFaultLayer:
            raise ConfigurationError(
                "vectorized client path requires NullFaultLayer, got "
                f"{type(engine.faults).__name__}"
            )
        if engine.bus.wants(RequestCompleted):
            raise ConfigurationError(
                "vectorized client path does not publish per-request "
                "RequestCompleted probes; detach the subscriber or use "
                "BasicClientPath"
            )

    def _drive(self):
        self._validate()
        env = self.env
        interval = self.engine.config.tuning_interval
        duration = self.engine.workload.duration
        t0 = env.now
        while t0 < duration:
            t1 = min(t0 + interval, duration)
            yield env.timeout(t1 - t0)
            self._drain(t1)
            self._flush(t1, final=t1 >= duration)
            t0 = t1

    # ------------------------------------------------------------------ #
    def _assignment(self) -> np.ndarray:
        """File-set → server-slot vector under the current placement."""
        policy = self.engine.policy
        vector_fn = getattr(policy, "assignment_vector", None)
        if vector_fn is not None:
            assign = vector_fn(self._slots)
        else:
            slots = self._slots
            locate = policy.locate
            assign = np.fromiter(
                (slots[locate(name)] for name in self._names),
                dtype=np.int64,
                count=len(self._names),
            )
        # Gathering int16 slots moves a quarter of the bytes of int64
        # (and hands fifo_drain its radix-sort key for free).
        if assign.dtype != np.int16 and self._free_at.shape[0] <= np.iinfo(np.int16).max:
            cache = self._assign_cache
            if cache is not None and cache[0] is assign:
                return cache[1]
            narrow = assign.astype(np.int16)
            self._assign_cache = (assign, narrow)
            return narrow
        return assign

    def _drain(self, t1: float) -> None:
        """Route and queue the cohort of arrivals in ``[t0, t1)``."""
        lo = self._cursor
        hi = int(np.searchsorted(self._arrivals, t1, side="left"))
        self._cursor = hi
        if hi == lo:
            return
        assign = self._assignment()
        srv = assign[self._fs_idx[lo:hi]]
        cohort = fifo_drain(
            self._arrivals[lo:hi],
            self._works[lo:hi],
            srv,
            self._free_at,
            power=self._powers,
        )
        self._submitted += hi - lo
        # Latency overwrites the cohort's arrival buffer (fifo_drain
        # hands us freshly gathered copies, and arrivals are not needed
        # past this point).
        latency = np.subtract(cohort.completion, cohort.arrival, out=cohort.arrival)
        # Pending chunks stay grouped by server (fifo_drain's order),
        # so flushes never re-sort — they just segment-scan each chunk.
        self._pending.append((cohort.server, cohort.completion, latency, cohort.service))

    def _flush(self, t1: float, final: bool) -> None:
        """Land completions due by ``t1`` in the server accumulators.

        Boundary flushes take completions strictly before ``t1``: in
        the scalar path a completion at exactly the boundary is a
        timeout created mid-interval, which sorts after the tuner's
        (created at the previous boundary) and lands in the next
        window. The final flush is inclusive — the kernel processes
        events at exactly the horizon — and discards everything later
        (still in queue at the deadline, same as the scalar run).

        Chunks are processed oldest-first: every chunk is grouped by
        server with FIFO order inside each group, and a server's
        earlier-cohort requests always complete before its later ones,
        so per-server observation order matches the scalar event order
        without any sorting here. Masking with ``due`` preserves the
        grouping (it drops elements, never reorders them).
        """
        if not self._pending:
            return
        chunks = self._pending
        self._pending = []
        for srv, completion, latency, service in chunks:
            due = completion <= t1 if final else completion < t1
            if not due.all():
                if not final:
                    keep = ~due
                    self._pending.append(
                        (srv[keep], completion[keep], latency[keep], service[keep])
                    )
                if not due.any():
                    continue
                srv = srv[due]
                latency = latency[due]
                service = service[due]
            self._flushed.append(latency)
            seg_start = np.flatnonzero(np.r_[True, srv[1:] != srv[:-1]])
            bounds = np.r_[seg_start, srv.size]
            # Per-server batch statistics in six vectorized passes; the
            # Python loop below only lands scalars (absorb_moments),
            # instead of paying observe_many's call overhead per server
            # per window (~14k calls at planet scale).
            lat_sum = np.add.reduceat(latency, seg_start)
            svc_sum = np.add.reduceat(service, seg_start)
            lat_min = np.minimum.reduceat(latency, seg_start)
            lat_max = np.maximum.reduceat(latency, seg_start)
            # The service buffer is dead after svc_sum (chunks are
            # popped or freshly masked), so reuse it for the squares.
            np.multiply(latency, latency, out=service)
            sq_sum = np.add.reduceat(service, seg_start)
            heads = srv[seg_start]
            servers = self._servers
            for i in range(seg_start.size):
                lo, hi = bounds[i], bounds[i + 1]
                count = int(hi - lo)
                total = float(lat_sum[i])
                mean = total / count
                m2 = float(sq_sum[i]) - count * mean * mean
                if m2 < 0.0:  # rounding can push the difference negative
                    m2 = 0.0
                servers[heads[i]].absorb_moments(
                    count,
                    total,
                    m2,
                    float(lat_min[i]),
                    float(lat_max[i]),
                    busy=float(svc_sum[i]),
                    samples=latency[lo:hi],
                )

    def collected_latencies(self) -> np.ndarray:
        """Latency of every flushed (completed-in-run) request.

        The engine calls this at result-assembly time instead of
        concatenating per-server tally buffers — the driver already
        holds every flushed cohort, so the aggregate costs exactly one
        concatenation. Order is flush order (by completion window),
        not the scalar path's per-server order; aggregate statistics
        do not depend on it.
        """
        if not self._flushed:
            return np.empty(0, dtype=np.float64)
        return np.concatenate(self._flushed)


class VectorizedClientPath(ClientPath):
    """Client-path layer that assembles a :class:`VectorizedRequestDriver`."""

    def build(self, engine: "ClusterEngine") -> VectorizedRequestDriver:
        return VectorizedRequestDriver(engine)
