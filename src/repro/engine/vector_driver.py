"""The vectorized client path: whole-cohort request drains.

:class:`VectorizedClientPath` is a drop-in
:class:`~repro.engine.client_path.ClientPath` — same engine, same
control plane, same tuning loop, same result record — whose driver
advances one *tuning interval of requests* per simulation event instead
of one request. Each wake it:

1. refreshes the policy's file-set → server assignment (array-valued
   when the policy provides :meth:`assignment_vector`, else via scalar
   ``locate`` calls);
2. slices the workload's columnar arrays for arrivals in ``[t0, t1)``
   and computes every completion time with the
   :func:`~repro.core.vector.fifo_drain` recurrence;
3. flushes completions that fall *inside* closed windows into each
   server's interval accumulators — strictly before the tuner's
   ``interval_report`` runs at the same instant, preserving the scalar
   path's measurement windows.

The driver wakes before the tuner at every boundary by construction:
the engine builds the client path first, so the driver's timeout always
carries the earlier sequence number.

Scope (validated at run start, loud errors otherwise):

* cache effects disabled (``CacheConfig.enabled`` false) — cohort
  service times are state-free;
* :class:`~repro.engine.control.DirectControlPlane`, and either
  :class:`~repro.engine.fault_layer.NullFaultLayer` (no faults) or
  :class:`~repro.engine.vector_faults.VectorChaosFaultLayer` — the
  latter hands the driver a compiled fault timeline, and the drive
  loop splits each tuning interval at every timeline event: drain up
  to the event, apply it (mask/rate mutations, policy churn, orphan
  re-drive), continue. Faults the scalar path discovers reactively
  are replayed deterministically here;
* no per-request probes (``RequestCompleted`` subscribers);
* per-file-set window work is not tracked (``drain_fileset_work``
  stays empty), so observation-driven bin-packing policies are out of
  scope on this path;
* per-server tallies do not retain raw samples (the driver keeps the
  flushed cohorts itself and hands the aggregate to the engine), so
  per-server percentile/SLA metrics are unavailable — aggregate
  latencies and per-server streaming moments are unaffected.

Aggregate metrics agree with the scalar driver to float rounding; see
``tests/engine/test_vector_equivalence.py`` for the documented
tolerances.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from ..core.errors import ConfigurationError
from ..core.vector import fifo_drain
from .client_path import ClientPath
from .probes import RequestCompleted

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import ClusterEngine

__all__ = ["VectorizedClientPath", "VectorizedRequestDriver"]


class VectorizedRequestDriver:
    """Drains whole request cohorts through array-backed FIFO servers."""

    def __init__(self, engine: "ClusterEngine") -> None:
        workload = engine.workload
        for attr in ("_arrivals", "_works", "_fs_idx"):
            if not hasattr(workload, attr):
                raise ConfigurationError(
                    f"workload {workload!r} lacks columnar array {attr!r}; "
                    "the vectorized client path needs array-backed workloads"
                )
        self.engine = engine
        self.env = engine.env
        self._arrivals: np.ndarray = workload._arrivals
        self._works: np.ndarray = workload._works
        self._fs_idx: np.ndarray = workload._fs_idx
        if self._fs_idx.dtype.itemsize > 4 and len(workload.catalog) < 2**31:
            self._fs_idx = self._fs_idx.astype(np.int32)
        names = getattr(workload, "_fs_names", None)
        self._names: List[str] = (
            list(names) if names is not None else list(workload.catalog.names)
        )
        # Fixed slot order: the config's server insertion order, same
        # order the engine builds FileServers in.
        server_ids = list(engine.config.server_powers)
        self._slots: Dict[object, int] = {sid: i for i, sid in enumerate(server_ids)}
        self._servers = [engine.servers[sid] for sid in server_ids]
        self._powers = np.array(
            [engine.config.server_powers[sid] for sid in server_ids], dtype=np.float64
        )
        #: Absolute time each server's queue drains empty.
        self._free_at = np.zeros(len(server_ids), dtype=np.float64)
        # The driver retains flushed latency cohorts itself (handed to
        # the engine via collected_latencies); per-server tally buffers
        # would copy every latency a second time and regrow along the
        # way. Per-server raw samples are therefore unavailable on this
        # path — streaming per-server moments are kept as always.
        for server in self._servers:
            server.completed.forget_samples()
        self._flushed: List[np.ndarray] = []
        # Computed-but-unflushed completions: (server slot, completion,
        # latency, service) column tuples.
        self._pending: List[Tuple[np.ndarray, ...]] = []
        # Narrow-dtype view of the current assignment vector, memoized
        # on the source array (policies cache theirs per epoch).
        self._assign_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._cursor = 0
        self._submitted = 0
        self._dropped = 0
        #: Chaos-mode state (None / empty on the fault-free path). The
        #: orphan pool holds per-slot ``(arrival, work, fileset)``
        #: column triples awaiting re-location after a crash; the
        #: discard counter classifies still-queued-at-horizon requests.
        self._chaos = None
        self._orphans: Dict[int, List[Tuple[np.ndarray, np.ndarray, np.ndarray]]] = {}
        self._orphan_total = 0
        self._discarded = 0
        #: Compat with the scalar driver surface (no hardened client).
        self.client = None
        self.process = engine.env.process(self._drive())

    # ------------------------------------------------------------------ #
    @property
    def submitted(self) -> int:
        """Requests handed to servers so far."""
        return self._submitted

    @property
    def dropped(self) -> int:
        """Requests that could not be routed (always 0: no fault layer)."""
        return self._dropped

    # ------------------------------------------------------------------ #
    def _validate(self) -> None:
        """Check the engine assembly fits the vectorized path's scope.

        Runs at process start (t=0), after every layer is attached.
        """
        from .control import DirectControlPlane
        from .fault_layer import NullFaultLayer

        engine = self.engine
        if engine.cache.config.enabled:
            raise ConfigurationError(
                "vectorized client path requires cache effects disabled "
                "(CacheConfig(flush_work_scale=0, cold_factor=1.0) or "
                "warmup_time=0); got "
                f"{engine.cache.config!r}"
            )
        if not isinstance(engine.control, DirectControlPlane):
            raise ConfigurationError(
                "vectorized client path requires DirectControlPlane, got "
                f"{type(engine.control).__name__}"
            )
        if type(engine.faults) is not NullFaultLayer and engine.faults is not self._chaos:
            # VectorChaosFaultLayer registers itself via attach_chaos
            # during assembly; anything else (notably the scalar
            # ChaosFaultLayer) is out of scope.
            raise ConfigurationError(
                "vectorized client path requires NullFaultLayer or "
                "VectorChaosFaultLayer, got "
                f"{type(engine.faults).__name__}"
            )
        if engine.bus.wants(RequestCompleted):
            raise ConfigurationError(
                "vectorized client path does not publish per-request "
                "RequestCompleted probes; detach the subscriber or use "
                "BasicClientPath"
            )

    def _drive(self):
        self._validate()
        env = self.env
        interval = self.engine.config.tuning_interval
        duration = self.engine.workload.duration
        chaos = self._chaos
        events = chaos.timeline.events if chaos is not None else []
        next_event = 0
        t0 = env.now
        while t0 < duration:
            t1 = min(t0 + interval, duration)
            yield env.timeout(t1 - t0)
            # Timeline events split the interval into piecewise drains:
            # completions are computed analytically, so draining the
            # sub-windows at the boundary wake is equivalent to waking
            # at each event — without paying a kernel event per fault.
            while next_event < len(events) and events[next_event].time <= t1:
                event = events[next_event]
                next_event += 1
                self._drain(event.time)
                chaos.apply_event(event)
            self._drain(t1)
            final = t1 >= duration
            self._flush(t1, final=final)
            if chaos is not None:
                chaos.sweep("boundary", t1, final=final)
            t0 = t1

    # ------------------------------------------------------------------ #
    def _assignment(self) -> np.ndarray:
        """File-set → server-slot vector under the current placement."""
        policy = self.engine.policy
        vector_fn = getattr(policy, "assignment_vector", None)
        if vector_fn is not None:
            assign = vector_fn(self._slots)
        else:
            slots = self._slots
            locate = policy.locate
            assign = np.fromiter(
                (slots[locate(name)] for name in self._names),
                dtype=np.int64,
                count=len(self._names),
            )
        # Gathering int16 slots moves a quarter of the bytes of int64
        # (and hands fifo_drain its radix-sort key for free).
        if assign.dtype != np.int16 and self._free_at.shape[0] <= np.iinfo(np.int16).max:
            cache = self._assign_cache
            if cache is not None and cache[0] is assign:
                return cache[1]
            narrow = assign.astype(np.int16)
            self._assign_cache = (assign, narrow)
            return narrow
        return assign

    def _drain(self, t1: float) -> None:
        """Route and queue the cohort of arrivals in ``[t0, t1)``."""
        lo = self._cursor
        hi = int(np.searchsorted(self._arrivals, t1, side="left"))
        self._cursor = hi
        if hi == lo:
            return
        assign = self._assignment()
        fs = self._fs_idx[lo:hi]
        srv = assign[fs]
        self._submitted += hi - lo
        if self._chaos is None:
            cohort = fifo_drain(
                self._arrivals[lo:hi],
                self._works[lo:hi],
                srv,
                self._free_at,
                power=self._powers,
            )
            # Latency overwrites the cohort's arrival buffer (fifo_drain
            # hands us freshly gathered copies, and arrivals are not
            # needed past this point).
            latency = np.subtract(
                cohort.completion, cohort.arrival, out=cohort.arrival
            )
            # Pending chunks stay grouped by server (fifo_drain's
            # order), so flushes never re-sort — they just segment-scan
            # each chunk.
            self._pending.append(
                (cohort.server, cohort.completion, latency, cohort.service)
            )
            return
        arrivals = self._arrivals[lo:hi]
        works = self._works[lo:hi]
        dead = ~self._chaos.alive[srv]
        if dead.any():
            # Arrivals routed to a crashed-but-undetected slot wait in
            # the orphan pool until a reconfiguration re-locates them.
            for s in np.unique(srv[dead]):
                sel = dead & (srv == s)
                self._stash(int(s), arrivals[sel], works[sel], fs[sel])
            keep = ~dead
            if not keep.any():
                return
            arrivals = arrivals[keep]
            works = works[keep]
            srv = srv[keep]
            fs = fs[keep]
        self._queue_cohort(arrivals, works, srv, fs)

    # ------------------------------------------------------------------ #
    # chaos-mode surface (used by VectorChaosFaultLayer)
    # ------------------------------------------------------------------ #
    def attach_chaos(self, layer) -> None:
        """Register the vectorized fault layer (engine assembly time)."""
        self._chaos = layer

    def orphan_count(self) -> int:
        """Requests parked in the orphan pool awaiting re-location."""
        return self._orphan_total

    def reset_free_at(self, slot: int, t: float) -> None:
        """A recovered server restarts with an empty queue at ``t``."""
        if self._free_at[slot] < t:
            self._free_at[slot] = t

    def _stash(
        self, slot: int, arr0: np.ndarray, work: np.ndarray, fs: np.ndarray
    ) -> None:
        self._orphans.setdefault(slot, []).append((arr0, work, fs))
        self._orphan_total += int(arr0.size)

    def _queue_cohort(
        self,
        arrivals: np.ndarray,
        works: np.ndarray,
        srv: np.ndarray,
        fs: np.ndarray,
        arr0: Optional[np.ndarray] = None,
    ) -> None:
        """Drain one chaos-mode cohort into a 7-column pending chunk.

        Chaos chunks carry ``(fileset, work, original arrival)`` columns
        past the fault-free four so a later crash can re-orphan any
        queued entry with everything re-drive needs. ``arr0`` overrides
        the latency baseline for re-driven orphans: they enter the
        queue *now* but their measured latency spans the whole outage.
        """
        chaos = self._chaos
        cohort = fifo_drain(
            arrivals, works, srv, self._free_at,
            power=chaos.effective_powers(self._powers),
        )
        order = cohort.order
        arr0_g = cohort.arrival if arr0 is None else arr0[order]
        latency = cohort.completion - arr0_g
        self._pending.append(
            (
                cohort.server,
                cohort.completion,
                latency,
                cohort.service,
                fs[order],
                works[order],
                arr0_g,
            )
        )

    def orphan_extract(self, slot: int, t: float) -> int:
        """Pull ``slot``'s queued-but-unfinished work into the pool.

        Called at a crash instant: completions strictly after ``t`` on
        the victim die with its queue. Returns the extraction count
        (the scalar ledger's ``timeouts`` analogue) and resets the
        victim's backlog clock.
        """
        extracted = 0
        rebuilt = []
        for chunk in self._pending:
            sel = (chunk[0] == slot) & (chunk[1] > t)
            if not sel.any():
                rebuilt.append(chunk)
                continue
            self._stash(slot, chunk[6][sel], chunk[5][sel], chunk[4][sel])
            extracted += int(sel.sum())
            keep = ~sel
            if keep.any():
                rebuilt.append(tuple(col[keep] for col in chunk))
        self._pending = rebuilt
        self._free_at[slot] = t
        return extracted

    def redrive_orphans(self, slot: int, t: float) -> Tuple[int, int]:
        """Re-locate ``slot``'s orphan pool through the current layout.

        Returns ``(redriven, redirected)``: every popped orphan counts
        as a retry; landing on a different server than the one it died
        on is a redirect. Orphans whose new target is *also* dead (a
        concurrent undetected crash) go back to the pool under the new
        slot — conservation holds throughout.
        """
        stash = self._orphans.pop(slot, None)
        if not stash:
            return 0, 0
        arr0 = np.concatenate([c[0] for c in stash])
        work = np.concatenate([c[1] for c in stash])
        fs = np.concatenate([c[2] for c in stash])
        redriven = int(arr0.size)
        self._orphan_total -= redriven
        assign = self._assignment()
        srv = assign[fs]
        dead = ~self._chaos.alive[srv]
        if dead.any():
            for s in np.unique(srv[dead]):
                sel = dead & (srv == s)
                self._stash(int(s), arr0[sel], work[sel], fs[sel])
            keep = ~dead
            if not keep.any():
                return redriven, 0
            arr0 = arr0[keep]
            work = work[keep]
            srv = srv[keep]
            fs = fs[keep]
        redirected = int(np.count_nonzero(srv != slot))
        now = np.full(arr0.size, t, dtype=np.float64)
        self._queue_cohort(now, work, srv, fs, arr0=arr0)
        return redriven, redirected

    def _flush(self, t1: float, final: bool) -> None:
        """Land completions due by ``t1`` in the server accumulators.

        Boundary flushes take completions strictly before ``t1``: in
        the scalar path a completion at exactly the boundary is a
        timeout created mid-interval, which sorts after the tuner's
        (created at the previous boundary) and lands in the next
        window. The final flush is inclusive — the kernel processes
        events at exactly the horizon — and discards everything later
        (still in queue at the deadline, same as the scalar run).

        Chunks are processed oldest-first: every chunk is grouped by
        server with FIFO order inside each group, and a server's
        earlier-cohort requests always complete before its later ones,
        so per-server observation order matches the scalar event order
        without any sorting here. Masking with ``due`` preserves the
        grouping (it drops elements, never reorders them).
        """
        if not self._pending:
            return
        chunks = self._pending
        self._pending = []
        for chunk in chunks:
            completion = chunk[1]
            due = completion <= t1 if final else completion < t1
            if not due.all():
                if not final:
                    keep = ~due
                    self._pending.append(tuple(col[keep] for col in chunk))
                else:
                    # Still queued at the deadline, same as the scalar
                    # run — counted so the chaos conservation ledger
                    # classifies rather than loses them.
                    self._discarded += int(np.count_nonzero(~due))
                if not due.any():
                    continue
                chunk = tuple(col[due] for col in chunk)
            srv, _, latency, service = chunk[:4]
            self._flushed.append(latency)
            seg_start = np.flatnonzero(np.r_[True, srv[1:] != srv[:-1]])
            bounds = np.r_[seg_start, srv.size]
            # Per-server batch statistics in six vectorized passes; the
            # Python loop below only lands scalars (absorb_moments),
            # instead of paying observe_many's call overhead per server
            # per window (~14k calls at planet scale).
            lat_sum = np.add.reduceat(latency, seg_start)
            svc_sum = np.add.reduceat(service, seg_start)
            lat_min = np.minimum.reduceat(latency, seg_start)
            lat_max = np.maximum.reduceat(latency, seg_start)
            # The service buffer is dead after svc_sum (chunks are
            # popped or freshly masked), so reuse it for the squares.
            np.multiply(latency, latency, out=service)
            sq_sum = np.add.reduceat(service, seg_start)
            heads = srv[seg_start]
            servers = self._servers
            for i in range(seg_start.size):
                lo, hi = bounds[i], bounds[i + 1]
                count = int(hi - lo)
                total = float(lat_sum[i])
                mean = total / count
                m2 = float(sq_sum[i]) - count * mean * mean
                if m2 < 0.0:  # rounding can push the difference negative
                    m2 = 0.0
                servers[heads[i]].absorb_moments(
                    count,
                    total,
                    m2,
                    float(lat_min[i]),
                    float(lat_max[i]),
                    busy=float(svc_sum[i]),
                    samples=latency[lo:hi],
                )

    def collected_latencies(self) -> np.ndarray:
        """Latency of every flushed (completed-in-run) request.

        The engine calls this at result-assembly time instead of
        concatenating per-server tally buffers — the driver already
        holds every flushed cohort, so the aggregate costs exactly one
        concatenation. Order is flush order (by completion window),
        not the scalar path's per-server order; aggregate statistics
        do not depend on it.
        """
        if not self._flushed:
            return np.empty(0, dtype=np.float64)
        return np.concatenate(self._flushed)


class VectorizedClientPath(ClientPath):
    """Client-path layer that assembles a :class:`VectorizedRequestDriver`."""

    def build(self, engine: "ClusterEngine") -> VectorizedRequestDriver:
        return VectorizedRequestDriver(engine)
