"""The fault layer: nothing, or the full chaos harness.

:class:`NullFaultLayer` is the paper-figure default — no injection, no
detector, no auditor; :meth:`finalize` hands the base result straight
through.

:class:`ChaosFaultLayer` composes the robustness stack onto an engine
with a distributed control plane:

* a :class:`~repro.distributed.heartbeat.HeartbeatMonitor` with
  recovery hysteresis — failures are *detected*, not announced: a
  crashed server leaves the layout only after the detector declares
  it, which is what makes detection latency a measurable quantity;
* an :class:`~repro.faults.invariants.InvariantChecker` hooked into
  every reconfiguration plus a periodic sweep;
* a :class:`~repro.faults.injector.FaultInjector` executing the
  ``(seed, schedule)`` fault script against this layer's injection
  surface (crash/heal, partition, straggle, link faults).

Import discipline: ``repro.faults`` re-exports the legacy chaos shim,
which subclasses the engine — so this module must not import it at top
level. Everything from ``repro.faults`` is imported inside
:meth:`ChaosFaultLayer.attach`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from .probes import (
    FailureDeclared,
    FaultInjected,
    InvariantAudit,
    RecoveryDeclared,
)
from .record import ChaosConfig, ChaosResult, FailureRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..distributed.heartbeat import HeartbeatMonitor
    from ..faults.injector import FaultInjector
    from ..faults.invariants import InvariantChecker
    from ..faults.schedule import FaultSchedule
    from .engine import ClusterEngine
    from .record import ClusterResult

__all__ = ["MONITOR_ID", "FaultLayer", "NullFaultLayer", "ChaosFaultLayer"]

#: Observer node id used by the chaos heartbeat monitor.
MONITOR_ID = "chaos-monitor"


class FaultLayer:
    """What (if anything) goes wrong during the run."""

    def attach(self, engine: "ClusterEngine") -> None:
        """Wire the layer into a freshly assembled engine (once)."""

    def finalize(self, engine: "ClusterEngine", base: "ClusterResult"):
        """Post-run hook; returns the run's result view."""
        return base


class NullFaultLayer(FaultLayer):
    """No faults: the engine runs exactly the paper's experiments."""


class ChaosFaultLayer(FaultLayer):
    """Fault injection + failure detection + continuous auditing.

    Parameters
    ----------
    schedule:
        The fault script to execute (default: empty schedule).
    chaos:
        Harness configuration; its ``seed`` is the replay key embedded
        in every violation artifact.

    Requires an engine with a :class:`~repro.engine.control.DistributedControlPlane`
    (the detector and the injection surface need the network and the
    delegate) and, for the conservation invariant, a hardened client
    path.
    """

    def __init__(
        self,
        schedule: Optional["FaultSchedule"] = None,
        chaos: Optional[ChaosConfig] = None,
    ) -> None:
        self.chaos = chaos or ChaosConfig()
        self.schedule = schedule
        self.engine: Optional["ClusterEngine"] = None
        self.monitor: Optional["HeartbeatMonitor"] = None
        self.checker: Optional["InvariantChecker"] = None
        self.injector: Optional["FaultInjector"] = None
        #: Crash/suspect timelines, in fault order.
        self.failures: List[FailureRecord] = []
        self._open_records: Dict[object, FailureRecord] = {}

    # ------------------------------------------------------------------ #
    def attach(self, engine: "ClusterEngine") -> None:
        from ..distributed.heartbeat import HeartbeatMonitor
        from ..faults.injector import FaultInjector
        from ..faults.invariants import InvariantChecker
        from ..faults.schedule import FaultSchedule

        if self.schedule is None:
            self.schedule = FaultSchedule()
        network = getattr(engine.control, "network", None)
        if network is None:
            raise TypeError(
                "ChaosFaultLayer needs a DistributedControlPlane "
                f"(got {type(engine.control).__name__})"
            )
        self.engine = engine
        self.network = network
        network.register(MONITOR_ID)
        self.monitor = HeartbeatMonitor(
            engine.env,
            network,
            MONITOR_ID,
            peers=list(engine.servers),
            period=self.chaos.heartbeat_period,
            misses=self.chaos.heartbeat_misses,
            recoveries=self.chaos.heartbeat_recoveries,
            on_failure=self._on_peer_failure,
            on_recovery=self._on_peer_recovery,
        )
        self.checker = InvariantChecker(
            engine.policy.manager,
            client=engine.client,
            delegates=lambda: [engine.control.service.delegate_id],
            seed=self.chaos.seed,
            schedule=self.schedule,
            now=lambda: engine.env.now,
        )
        self.injector = FaultInjector(engine.env, self, self.schedule)
        self._auditor = engine.env.process(self._invariant_loop())

    # ------------------------------------------------------------------ #
    # injection surface (used by FaultInjector)
    # ------------------------------------------------------------------ #
    def current_delegate(self) -> object:
        """Whoever holds the delegate office right now."""
        return self.engine.control.service.delegate_id

    def crash_server(self, server_id: object) -> bool:
        """Crash a server (data + control plane); ``False`` if skipped."""
        engine = self.engine
        server = engine.servers.get(server_id)
        if server is None or server.failed:
            return False
        live = sum(1 for s in engine.servers.values() if not s.failed)
        if live <= 2:
            # Never crash the cluster below two live servers: elections
            # and the half-occupancy story need a survivor pair.
            return False
        server.fail()  # orphaned queue entries are re-driven by the client
        self.network.set_down(server_id, True)
        record = FailureRecord(server_id, "crash", t_fault=engine.env.now)
        self.failures.append(record)
        self._open_records[server_id] = record
        engine.bus.publish(
            FaultInjected(time=engine.env.now, kind="crash", target=server_id)
        )
        return True

    def heal_server(self, server_id: object) -> None:
        """Lift the crash: restore the link; recovery is then *detected*."""
        engine = self.engine
        self.network.set_down(server_id, False)
        record = self._open_records.get(server_id)
        if record is not None:
            record.t_heal = engine.env.now
        server = engine.servers.get(server_id)
        if (
            server is not None
            and server.failed
            and self.monitor is not None
            and server_id not in self.monitor.suspected
        ):
            # The blip healed before the detector declared it: the layout
            # never changed, so the server simply reboots in place.
            server.recover()
            if record is not None:
                record.t_readmit = engine.env.now
                self._open_records.pop(server_id, None)

    def apply_partition(self, nodes) -> None:
        """Isolate ``nodes`` from the rest of the control plane."""
        engine = self.engine
        self.network.set_partition(list(nodes))
        for sid in nodes:
            if sid in engine.servers and sid not in self._open_records:
                record = FailureRecord(sid, "suspect", t_fault=engine.env.now)
                self.failures.append(record)
                self._open_records[sid] = record
        engine.bus.publish(
            FaultInjected(time=engine.env.now, kind="partition", target=tuple(nodes))
        )

    def heal_partition(self) -> None:
        """Reconnect all partition groups."""
        engine = self.engine
        self.network.heal_partition()
        suspected = self.monitor.suspected if self.monitor is not None else set()
        for sid, record in list(self._open_records.items()):
            if record.kind != "suspect":
                continue
            if record.t_heal is None:
                record.t_heal = engine.env.now
            if record.t_detect is None and sid not in suspected:
                # The partition healed before the detector declared it:
                # the layout never changed, nothing to re-admit.
                record.t_readmit = engine.env.now
                self._open_records.pop(sid, None)

    def apply_straggle(self, server_id: object, factor: float) -> bool:
        """Degrade a server's power; ``False`` if it is down/degraded."""
        engine = self.engine
        server = engine.servers.get(server_id)
        if server is None or server.failed or server.degraded:
            return False
        server.set_power_factor(factor)
        engine.bus.publish(
            FaultInjected(time=engine.env.now, kind="straggle", target=server_id)
        )
        return True

    def heal_straggle(self, server_id: object) -> None:
        """Restore a straggler to nominal power."""
        server = self.engine.servers.get(server_id)
        if server is not None:
            server.set_power_factor(1.0)

    def apply_link_faults(self, drop: float, dup: float, extra_delay: float) -> None:
        """Turn on probabilistic message faults."""
        self.network.set_link_faults(drop, dup, extra_delay)
        self.engine.bus.publish(
            FaultInjected(time=self.engine.env.now, kind="link-faults", target=None)
        )

    def heal_link_faults(self) -> None:
        """Turn off probabilistic message faults."""
        self.network.clear_link_faults()

    # ------------------------------------------------------------------ #
    # detector callbacks
    # ------------------------------------------------------------------ #
    def _on_peer_failure(self, server_id: object) -> None:
        engine = self.engine
        now = engine.env.now
        record = self._open_records.get(server_id)
        if record is not None and record.t_detect is None:
            record.t_detect = now
        engine.bus.publish(FailureDeclared(time=now, server_id=server_id))
        manager = engine.policy.manager
        if server_id in manager.layout.server_ids and manager.layout.n_servers > 1:
            moves = engine.policy.server_failed(server_id)
            engine._apply_moves(moves, kind="fail")

    def _on_peer_recovery(self, server_id: object) -> None:
        engine = self.engine
        now = engine.env.now
        engine.bus.publish(RecoveryDeclared(time=now, server_id=server_id))
        server = engine.servers.get(server_id)
        if server is not None and server.failed:
            server.recover()
        manager = engine.policy.manager
        if server_id not in manager.layout.server_ids:
            moves = engine.policy.server_added(
                server_id, power_hint=server.base_power if server else None
            )
            engine._apply_moves(moves, kind="recover")
        record = self._open_records.pop(server_id, None)
        if record is not None:
            record.t_readmit = now

    # ------------------------------------------------------------------ #
    def _invariant_loop(self):
        engine = self.engine
        while True:
            yield engine.env.timeout(self.chaos.invariant_interval)
            self.checker.check("periodic")
            engine.bus.publish(
                InvariantAudit(
                    time=engine.env.now,
                    trigger="periodic",
                    violations=len(self.checker.violations),
                )
            )

    # ------------------------------------------------------------------ #
    def finalize(self, engine: "ClusterEngine", base: "ClusterResult") -> ChaosResult:
        """Final invariant sweep, then the robustness result view."""
        # A final full sweep at the horizon (fail-fast if the end state
        # is inconsistent).
        self.checker.check("final")
        engine.bus.publish(
            InvariantAudit(
                time=engine.env.now,
                trigger="final",
                violations=len(self.checker.violations),
            )
        )
        client = engine.client
        return ChaosResult(
            base=base,
            seed=self.chaos.seed,
            schedule=self.schedule,
            detection_latency_bound=self.chaos.detection_latency_bound,
            faults_injected=self.injector.injected,
            faults_skipped=self.injector.skipped,
            applied=list(self.injector.applied),
            failures=list(self.failures),
            requests_injected=client.injected,
            requests_completed=client.completed,
            requests_failed=client.failed,
            requests_in_flight=client.in_flight,
            retries=client.retries,
            redirects=client.redirects,
            timeouts=client.timeouts,
            failure_declarations=self.monitor.failure_declarations,
            recovery_declarations=self.monitor.recovery_declarations,
            invariant_checks=self.checker.checks,
            invariant_violations=len(self.checker.violations),
            requests_in_flight_queued=client.awaiting_service,
            requests_in_flight_backoff=client.backing_off,
            requests_in_flight_dispatch=client.dispatching,
        )
