"""The composable cluster engine.

:class:`ClusterEngine` is the one simulation driver behind every
experiment in the repo. Where the legacy stack expressed variation as
an inheritance tower (``ClusterSimulation`` →
``DistributedClusterSimulation`` → ``ChaosClusterSimulation``) with
``_make_*`` override hooks, the engine is assembled from four explicit
layers:

* a :class:`~repro.engine.control.ControlPlane` — who decides the
  tuning rounds (in-process shortcut vs message-level delegate);
* a :class:`~repro.engine.client_path.ClientPath` — how requests enter
  the cluster (route-once vs hardened retry/redirect);
* a :class:`~repro.engine.fault_layer.FaultLayer` — what goes wrong
  (nothing vs the chaos harness);
* instrumentation — a :class:`~repro.engine.probes.ProbeBus` every
  layer publishes to, with the canonical
  :class:`~repro.engine.record.RunRecord` built by a bus subscriber
  like any other observer.

Assembly order is part of the determinism contract: layers are built
in exactly the sequence the legacy tower used (servers → placement →
driver → tuner → control plane → fault layer), so process creation
order — and therefore every event tie-break — is unchanged and the
golden fingerprints still match bit-for-bit.

Use :class:`~repro.engine.builder.SimulationBuilder` to assemble one;
the legacy class names remain as deprecated shims subclassing this
engine.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

import numpy as np

from ..policies.base import LazyKnowledge, LoadManager, Move, PrescientKnowledge
from ..sim import Simulator
from .client_path import BasicClientPath, ClientPath, RequestDriver
from .control import ControlPlane, DirectControlPlane
from .fault_layer import FaultLayer, NullFaultLayer
from .probes import (
    MovesApplied,
    Observer,
    ProbeBus,
    RequestCompleted,
    RunCompleted,
    RunStarted,
    ServerFailed,
    ServerRecovered,
)
from .record import ClusterConfig, ClusterResult, RunRecord, RunRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.client import HardenedClient
    from ..cluster.request import MetadataRequest
    from ..cluster.server import FileServer
    from ..workloads.synthetic import Workload

__all__ = ["ClusterEngine"]


class ClusterEngine:
    """One policy × one workload × one cluster configuration.

    Parameters
    ----------
    workload, policy, config:
        The experiment triple (as the legacy tower took).
    control:
        The control-plane layer (default: :class:`DirectControlPlane`).
    client_path:
        The client-path layer (default: :class:`BasicClientPath`).
    faults:
        The fault layer (default: :class:`NullFaultLayer`).
    bus:
        Probe bus to publish on (default: a fresh one). Subscribe
        observers *before* construction to receive assembly events.
    observers:
        :class:`~repro.engine.probes.Observer` instances attached to
        the bus before any layer is built.
    """

    def __init__(
        self,
        workload: "Workload",
        policy: LoadManager,
        config: ClusterConfig,
        control: Optional[ControlPlane] = None,
        client_path: Optional[ClientPath] = None,
        faults: Optional[FaultLayer] = None,
        bus: Optional[ProbeBus] = None,
        observers: Sequence[Observer] = (),
    ) -> None:
        # Deferred: the cluster package re-exports the legacy shims that
        # subclass this engine, so importing it at module level would be
        # circular.
        from ..cluster.cache import CacheModel
        from ..cluster.server import FileServer

        self.workload = workload
        self.policy = policy
        self.config = config
        self.bus = bus if bus is not None else ProbeBus()
        self.record = RunRecord()
        self._recorder = RunRecorder(self.record).attach(self.bus)
        for observer in observers:
            observer.attach(self.bus)

        self.env = Simulator()
        self.cache = CacheModel(config.cache)
        self.servers: Dict[object, "FileServer"] = {
            sid: FileServer(self.env, sid, power, cache=self.cache)
            for sid, power in config.server_powers.items()
        }
        self._round = 0
        # Initial placement before t=0 (prescient systems are balanced
        # "from the very beginning, time 0", §5.2.1). The oracle is
        # offered lazily: the catalog scan only runs if the policy
        # actually reads it.
        knowledge = (
            LazyKnowledge(lambda: self._knowledge(0.0))
            if config.supply_knowledge
            else None
        )
        self.policy.initial_placement(workload.catalog, knowledge)
        # Layer assembly — this order mirrors the legacy tower's
        # construction sequence and must not change (see module doc).
        self.client_path = client_path if client_path is not None else BasicClientPath()
        self.driver: RequestDriver = self.client_path.build(self)
        self._tuner = self.env.process(self._tuning_loop())
        self.control = control if control is not None else DirectControlPlane()
        self.control.attach(self)
        self.faults = faults if faults is not None else NullFaultLayer()
        self.faults.attach(self)
        if self.bus.wants(RequestCompleted):
            self.enable_completion_probe()
        self.bus.publish(
            RunStarted(
                time=self.env.now,
                policy_name=self.policy.name,
                n_servers=len(self.servers),
            )
        )

    # ------------------------------------------------------------------ #
    # instrumentation
    # ------------------------------------------------------------------ #
    def enable_completion_probe(self) -> None:
        """Publish :class:`RequestCompleted` for every served request.

        Off by default (it is the only per-request event); called
        automatically when someone subscribed before assembly.
        """
        bus = self.bus
        env = self.env
        for srv in self.servers.values():
            def probe(request, sid=srv.server_id):
                bus.publish(
                    RequestCompleted(
                        time=env.now,
                        server_id=sid,
                        fileset=request.fileset,
                        latency=request.latency,
                    )
                )
            srv.probe = probe

    # ------------------------------------------------------------------ #
    # routing and knowledge
    # ------------------------------------------------------------------ #
    def _route(self, request: "MetadataRequest") -> Optional["FileServer"]:
        sid = self.policy.locate(request.fileset)
        server = self.servers.get(sid)
        if server is None or server.failed:
            return None
        return server

    def _knowledge(self, t0: float) -> PrescientKnowledge:
        """Oracle for the interval starting at ``t0``."""
        t1 = t0 + self.config.tuning_interval
        interval = self.config.tuning_interval
        return PrescientKnowledge(
            server_powers={
                sid: srv.power for sid, srv in self.servers.items() if not srv.failed
            },
            upcoming_work=self.workload.work_between(t0, t1),
            average_work={
                name: self.workload.catalog.get(name).total_work
                / self.workload.duration
                * interval
                for name in self.workload.catalog.names
            },
        )

    # ------------------------------------------------------------------ #
    # the tuning loop
    # ------------------------------------------------------------------ #
    def _tuning_loop(self):
        interval = self.config.tuning_interval
        while True:
            yield self.env.timeout(interval)
            moves = self.control.tuning_round(self)
            self._apply_moves(moves, kind="tune")

    def _apply_moves(self, moves: Sequence[Move], kind: str) -> None:
        moved_share = 0.0
        for move in moves:
            fs = self.workload.catalog.get(move.fileset)
            moved_share += self.workload.catalog.work_share(move.fileset)
            flush = self.cache.on_shed(
                move.fileset,
                move.source,
                move.target,
                self.env.now,
                fs.mean_request_work,
            )
            source = self.servers.get(move.source)
            if source is not None and not source.failed:
                source.charge_flush(flush)
        # The movement log is recorder-built: publishing is what appends.
        self.bus.publish(
            MovesApplied(
                time=self.env.now,
                round_index=self._round,
                kind=kind,
                moves=len(moves),
                moved_work_share=moved_share,
            )
        )

    # ------------------------------------------------------------------ #
    # churn injection
    # ------------------------------------------------------------------ #
    def schedule_failure(self, time: float, server_id: object) -> None:
        """Fail ``server_id`` at simulated ``time`` (before :meth:`run`)."""
        self.env.schedule_at(time, lambda: self._fail_now(server_id))

    def schedule_recovery(self, time: float, server_id: object) -> None:
        """Recover ``server_id`` at simulated ``time``."""
        self.env.schedule_at(time, lambda: self._recover_now(server_id))

    def _fail_now(self, server_id: object) -> None:
        server = self.servers[server_id]
        orphans = server.fail()
        self.bus.publish(ServerFailed(time=self.env.now, server_id=server_id))
        moves = self.policy.server_failed(server_id)
        self._apply_moves(moves, kind="fail")
        # Clients re-issue the dropped requests to the new owners.
        for request in orphans:
            target = self._route(request)
            if target is not None:
                target.submit(request)

    def _recover_now(self, server_id: object) -> None:
        server = self.servers[server_id]
        server.recover()
        self.bus.publish(ServerRecovered(time=self.env.now, server_id=server_id))
        moves = self.policy.server_added(server_id, power_hint=server.power)
        self._apply_moves(moves, kind="recover")

    # ------------------------------------------------------------------ #
    # compat surface (the attributes the legacy tower exposed)
    # ------------------------------------------------------------------ #
    @property
    def movement(self):
        """The movement log (a live view of the run record)."""
        return self.record.movement

    @property
    def delegate_history(self) -> List[object]:
        """Delegates in office over the run (first entry = initial)."""
        return self.record.delegate_history

    @property
    def network(self):
        """The control-plane network (distributed planes only)."""
        network = getattr(self.control, "network", None)
        if network is None:
            raise AttributeError(
                f"{type(self.control).__name__} has no network "
                "(direct control plane)"
            )
        return network

    @property
    def service(self):
        """The tuning service (distributed planes only)."""
        service = getattr(self.control, "service", None)
        if service is None:
            raise AttributeError(
                f"{type(self.control).__name__} has no tuning service "
                "(direct control plane)"
            )
        return service

    @property
    def failovers(self) -> int:
        """Delegate re-elections that were forced by crashes."""
        return self.control.failovers

    def control_traffic(self) -> Dict[str, int]:
        """Control-plane messages sent, by kind."""
        return dict(self.network.sent_count)

    @property
    def client(self) -> Optional["HardenedClient"]:
        """The hardened client, when the path uses one (else ``None``)."""
        return getattr(self.driver, "client", None)

    @property
    def monitor(self):
        """The failure detector, when a chaos layer installed one."""
        return getattr(getattr(self, "faults", None), "monitor", None)

    @property
    def checker(self):
        """The invariant checker (chaos layer only)."""
        return self.faults.checker

    @property
    def injector(self):
        """The fault injector (chaos layer only)."""
        return self.faults.injector

    @property
    def chaos(self):
        """The chaos configuration (chaos layer only)."""
        return self.faults.chaos

    @property
    def schedule(self):
        """The fault schedule (chaos layer only)."""
        return self.faults.schedule

    @property
    def failures(self):
        """Crash/suspect timelines (chaos layer only)."""
        return self.faults.failures

    # ------------------------------------------------------------------ #
    def run(self, until: Optional[float] = None) -> ClusterResult:
        """Execute the simulation and collect results.

        Runs until ``until`` (default: the workload duration). The
        tuning loop is perpetual, so the run is always bounded by the
        deadline rather than calendar exhaustion.
        """
        horizon = until if until is not None else self.workload.duration
        self.env.run(until=horizon)
        self.bus.publish(
            RunCompleted(time=self.env.now, events_processed=self.env.events_processed)
        )
        # Drivers that accumulate completion cohorts themselves hand
        # the aggregate over directly (the vectorized path — server
        # tallies there do not retain raw samples). Otherwise
        # concatenate the tally buffer *views*: ``samples`` would copy
        # each server's buffer first and concatenate would copy again.
        collect = getattr(self.driver, "collected_latencies", None)
        if collect is not None:
            all_lat = collect()
        elif self.servers:
            all_lat = np.concatenate(
                [srv.completed.samples_view() for srv in self.servers.values()]
            )
        else:
            all_lat = np.empty(0)
        return ClusterResult(
            policy_name=self.policy.name,
            config=self.config,
            duration=horizon,
            server_latency={sid: s.latency_series for sid, s in self.servers.items()},
            server_tally={sid: s.completed for sid, s in self.servers.items()},
            server_requests={
                sid: s.completed_requests for sid, s in self.servers.items()
            },
            server_utilization={
                sid: s.utilization(horizon) for sid, s in self.servers.items()
            },
            movement=list(self.record.movement),
            shared_state_entries=self.policy.shared_state_entries(),
            submitted=self.driver.submitted,
            completed=sum(s.completed_requests for s in self.servers.values()),
            all_latencies=all_lat,
            events_processed=self.env.events_processed,
        )

    def run_chaos(self, until: Optional[float] = None):
        """Execute the run and collect the fault layer's result view.

        With a :class:`~repro.engine.fault_layer.ChaosFaultLayer` this
        is a :class:`~repro.engine.record.ChaosResult`; with the null
        layer it is the plain :class:`ClusterResult`.
        """
        base = self.run(until)
        return self.faults.finalize(self, base)
