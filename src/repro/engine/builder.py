"""Experiment assembly: :class:`ExperimentSpec` and :class:`SimulationBuilder`.

The front door of :mod:`repro.engine`. A spec is the declarative form
— the experiment triple plus one object per layer — and the builder is
the fluent way to produce one::

    engine = (
        SimulationBuilder(workload, policy, config)
        .distributed(delegate_crashes=[200.0])
        .build()
    )
    result = engine.run()

Layer shorthands mirror the legacy tower:

* default layers reproduce ``ClusterSimulation`` (direct control,
  basic client path, no faults);
* :meth:`SimulationBuilder.distributed` reproduces
  ``DistributedClusterSimulation``;
* :meth:`SimulationBuilder.chaos` reproduces
  ``ChaosClusterSimulation`` — distributed control with the seeded
  network rng, hardened client path with the seeded jitter rng, and
  the chaos fault layer, all derived from ``ChaosConfig.seed`` exactly
  as before (the golden-fingerprint tests hold the two forms to
  bit-identical results).

Observers attach through :meth:`observe`/:meth:`probe` before the
engine is assembled, so they see every event from the first one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Type, TYPE_CHECKING

from ..policies.base import LoadManager
from .client_path import ClientPath, HardenedClientPath, RetryPolicy
from .control import ControlPlane, DistributedControlPlane
from .engine import ClusterEngine
from .fault_layer import ChaosFaultLayer, FaultLayer
from .probes import Observer, ProbeBus, ProbeEvent
from .record import ChaosConfig, ClusterConfig, derive_seed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..control import Controller
    from ..faults.schedule import FaultSchedule
    from ..workloads.synthetic import Workload

__all__ = ["ExperimentSpec", "SimulationBuilder"]


@dataclass
class ExperimentSpec:
    """A fully described experiment: the triple plus one object per layer.

    ``None`` layers mean the engine defaults (direct control, basic
    client path, no faults). Specs are plain data — build the same spec
    twice and you get two independent, identically assembled engines.
    """

    workload: "Workload"
    policy: LoadManager
    config: ClusterConfig
    control: Optional[ControlPlane] = None
    client_path: Optional[ClientPath] = None
    faults: Optional[FaultLayer] = None
    observers: Tuple[Observer, ...] = ()
    bus: Optional[ProbeBus] = None
    #: Tuning rule injected into the policy at assembly (a
    #: :class:`repro.control.Controller`; the policy must expose
    #: ``use_controller`` — the ANU adapters do). ``None`` keeps the
    #: policy's own rule.
    controller: Optional["Controller"] = None

    def build(self) -> ClusterEngine:
        """Assemble the engine this spec describes."""
        if self.controller is not None:
            use = getattr(self.policy, "use_controller", None)
            if use is None:
                raise ValueError(
                    f"policy {getattr(self.policy, 'name', self.policy)!r} "
                    "does not take a pluggable controller"
                )
            # fork(): each build gets an isolated controller state, so
            # building the same spec twice yields independent engines.
            use(self.controller.fork())
        return ClusterEngine(
            self.workload,
            self.policy,
            self.config,
            control=self.control,
            client_path=self.client_path,
            faults=self.faults,
            bus=self.bus,
            observers=self.observers,
        )


class SimulationBuilder:
    """Fluent assembly of a :class:`ClusterEngine`.

    All mutators return ``self``; each layer slot may be set at most
    once (setting it twice is almost always a composition bug, so it
    raises).
    """

    def __init__(
        self,
        workload: Optional["Workload"] = None,
        policy: Optional[LoadManager] = None,
        config: Optional[ClusterConfig] = None,
    ) -> None:
        self._workload = workload
        self._policy = policy
        self._config = config
        self._controller: Optional["Controller"] = None
        self._control: Optional[ControlPlane] = None
        self._client_path: Optional[ClientPath] = None
        self._faults: Optional[FaultLayer] = None
        self._observers: List[Observer] = []
        self._bus: Optional[ProbeBus] = None

    # ------------------------------------------------------------------ #
    # the experiment triple
    # ------------------------------------------------------------------ #
    def workload(self, workload: "Workload") -> "SimulationBuilder":
        """Set the workload to replay."""
        self._workload = workload
        return self

    def policy(self, policy: LoadManager) -> "SimulationBuilder":
        """Set the placement policy."""
        self._policy = policy
        return self

    def config(self, config: ClusterConfig) -> "SimulationBuilder":
        """Set the cluster configuration."""
        self._config = config
        return self

    # ------------------------------------------------------------------ #
    # layers
    # ------------------------------------------------------------------ #
    def _set_once(self, slot: str, value) -> "SimulationBuilder":
        if getattr(self, slot) is not None:
            raise ValueError(f"{slot.lstrip('_')} layer already set")
        setattr(self, slot, value)
        return self

    def control(self, control: ControlPlane) -> "SimulationBuilder":
        """Use an explicit control-plane layer."""
        return self._set_once("_control", control)

    def controller(self, controller: "Controller") -> "SimulationBuilder":
        """Inject a tuning rule (:class:`repro.control.Controller`)."""
        return self._set_once("_controller", controller)

    def client_path(self, client_path: ClientPath) -> "SimulationBuilder":
        """Use an explicit client-path layer."""
        return self._set_once("_client_path", client_path)

    def faults(self, faults: FaultLayer) -> "SimulationBuilder":
        """Use an explicit fault layer."""
        return self._set_once("_faults", faults)

    def distributed(
        self,
        delegate_crashes: Optional[Sequence[float]] = None,
        network_rng: Optional[random.Random] = None,
    ) -> "SimulationBuilder":
        """Tune over the message-level control plane (§4)."""
        return self._set_once(
            "_control",
            DistributedControlPlane(
                delegate_crashes=list(delegate_crashes or []),
                network_rng=network_rng,
            ),
        )

    def hardened(
        self,
        retry: Optional[RetryPolicy] = None,
        rng: Optional[random.Random] = None,
    ) -> "SimulationBuilder":
        """Drive requests through the retry/redirect client path."""
        return self._set_once("_client_path", HardenedClientPath(retry=retry, rng=rng))

    def chaos(
        self,
        schedule: Optional["FaultSchedule"] = None,
        chaos: Optional[ChaosConfig] = None,
    ) -> "SimulationBuilder":
        """The full chaos harness: one call sets all three layers.

        Derives the network and client-jitter rngs from
        ``ChaosConfig.seed`` exactly as the legacy harness did, so a
        chaos run stays a pure function of
        ``(workload, config, schedule, chaos)``.
        """
        cfg = chaos if chaos is not None else ChaosConfig()
        self._set_once(
            "_control",
            DistributedControlPlane(
                network_rng=random.Random(derive_seed(cfg.seed, "network"))
            ),
        )
        self._set_once(
            "_client_path",
            HardenedClientPath(
                retry=cfg.retry, rng=random.Random(derive_seed(cfg.seed, "client"))
            ),
        )
        return self._set_once(
            "_faults", ChaosFaultLayer(schedule=schedule, chaos=cfg)
        )

    # ------------------------------------------------------------------ #
    # instrumentation
    # ------------------------------------------------------------------ #
    def observe(self, *observers: Observer) -> "SimulationBuilder":
        """Attach observers to the engine's bus before assembly."""
        self._observers.extend(observers)
        return self

    def probe(
        self, event_type: Type[ProbeEvent], fn: Callable[[ProbeEvent], None]
    ) -> "SimulationBuilder":
        """Subscribe a bare callable to one probe event type."""
        if self._bus is None:
            self._bus = ProbeBus()
        self._bus.subscribe(event_type, fn)
        return self

    def bus(self, bus: ProbeBus) -> "SimulationBuilder":
        """Publish on a caller-owned bus instead of a fresh one."""
        return self._set_once("_bus", bus)

    # ------------------------------------------------------------------ #
    # assembly
    # ------------------------------------------------------------------ #
    def spec(self) -> ExperimentSpec:
        """The declarative form of what this builder would assemble."""
        if self._workload is None or self._policy is None or self._config is None:
            missing = [
                name
                for name, value in (
                    ("workload", self._workload),
                    ("policy", self._policy),
                    ("config", self._config),
                )
                if value is None
            ]
            raise ValueError(f"experiment incomplete: missing {', '.join(missing)}")
        return ExperimentSpec(
            workload=self._workload,
            policy=self._policy,
            config=self._config,
            control=self._control,
            client_path=self._client_path,
            faults=self._faults,
            observers=tuple(self._observers),
            bus=self._bus,
            controller=self._controller,
        )

    def build(self) -> ClusterEngine:
        """Assemble the engine."""
        return self.spec().build()

    def run(self, until: Optional[float] = None):
        """Assemble and run in one step.

        Returns the fault layer's result view: a plain
        :class:`~repro.engine.record.ClusterResult` for the null layer,
        a :class:`~repro.engine.record.ChaosResult` under chaos.
        """
        return self.build().run_chaos(until)
