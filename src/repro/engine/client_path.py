"""The client-path layer: one request driver, parameterized by retries.

Historically the repo carried three near-duplicate drivers
(``RequestDriver``, ``HardenedRequestDriver``, and the ``AccessClient``
metadata phase). This module collapses them onto one replay driver
(:class:`RequestDriver`) and one locate-retry-redirect core
(:func:`drive_attempts`) shared by every client:

* **basic path** — route once at arrival, submit or drop (the paper's
  figure runs: placement changes take effect for new arrivals, queued
  requests finish where they are);
* **hardened path** — :class:`HardenedClient` drives each logical
  request through :func:`drive_attempts` with a :class:`RetryPolicy`:
  per-attempt completion timeout, capped exponential backoff with
  seeded jitter, and re-locate-and-redirect when the target is down or
  suspected. The ledger (``injected = completed + failed + in_flight``)
  is one of the chaos invariants.

The layer objects (:class:`BasicClientPath`, :class:`HardenedClientPath`)
are stateless factories the :class:`~repro.engine.engine.ClusterEngine`
calls to assemble its driver.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Set, TYPE_CHECKING

from ..sim import Simulator, Tally
from .probes import RequestDropped, RequestFailed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.request import MetadataRequest
    from ..cluster.server import FileServer
    from .engine import ClusterEngine

__all__ = [
    "RetryPolicy",
    "RequestLedger",
    "drive_attempts",
    "HardenedClient",
    "RequestDriver",
    "ClientPath",
    "BasicClientPath",
    "HardenedClientPath",
]


class RequestLedger:
    """The request-conservation ledger, independent of any clock.

    Shared bookkeeping between the simulated :class:`HardenedClient`
    and the live ``repro.service`` client: both drive logical requests
    through locate-retry-redirect loops, and both are held to the same
    two invariants —

    * **conservation**: ``injected == completed + failed + in_flight``;
    * **classification**: every in-flight request sits in exactly one
      of ``dispatching`` / ``awaiting_service`` / ``backing_off``.

    The ledger knows nothing about *how* requests are driven (simulated
    processes vs asyncio tasks); it only counts transitions, which is
    what makes the chaos invariants portable to sockets.
    """

    def __init__(self) -> None:
        #: Logical requests handed to the client.
        self.injected = 0
        #: Logical requests that completed (first successful attempt).
        self.completed = 0
        #: Logical requests abandoned after ``max_attempts``.
        self.failed = 0
        #: Logical requests currently being driven.
        self.in_flight = 0
        #: Re-submissions after a failed/suspected/unroutable attempt.
        self.retries = 0
        #: Retries that landed on a *different* server than the last try.
        self.redirects = 0
        #: Attempts abandoned because the timeout found the target dead.
        self.timeouts = 0
        #: Where each in-flight request currently sits (classification
        #: of the horizon remainder): accepted but the driver has not
        #: started yet, waiting on a submitted attempt, or in a backoff
        #: sleep between attempts. Every in-flight request is in exactly
        #: one bucket — the conservation sweep asserts it.
        self.dispatching = 0
        self.awaiting_service = 0
        self.backing_off = 0
        #: End-to-end latency of every completed logical request.
        self.latency = Tally(keep=True)

    # ------------------------------------------------------------------ #
    # transitions
    # ------------------------------------------------------------------ #
    def ledger_inject(self) -> None:
        """A logical request enters the client."""
        self.injected += 1
        self.in_flight += 1
        self.dispatching += 1

    def ledger_settle(self, latency: float) -> None:
        """A logical request completed with measured ``latency``."""
        self.completed += 1
        self.in_flight -= 1
        self.latency.observe(latency)

    def ledger_exhaust(self) -> None:
        """A logical request gave up after exhausting its attempts."""
        self.failed += 1
        self.in_flight -= 1

    # ------------------------------------------------------------------ #
    # invariants
    # ------------------------------------------------------------------ #
    @property
    def conserved(self) -> bool:
        """The request-conservation ledger: injected == done + pending."""
        return self.injected == self.completed + self.failed + self.in_flight

    @property
    def classified(self) -> bool:
        """Every in-flight request sits in exactly one known bucket."""
        return self.in_flight == (
            self.dispatching + self.awaiting_service + self.backing_off
        )

    @property
    def lost(self) -> int:
        """Requests the ledger cannot account for (must always be 0)."""
        return self.injected - self.completed - self.failed - self.in_flight

    @property
    def retries_per_request(self) -> float:
        """Mean retries per injected logical request."""
        return self.retries / self.injected if self.injected else 0.0


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side request-hardening knobs.

    Attributes
    ----------
    request_timeout:
        Seconds to wait on a submitted attempt before re-evaluating the
        target's health. A healthy-but-slow server is *not* abandoned
        (FIFO guarantees progress); only a failed or suspected target
        triggers a redirect, so no work is duplicated on live servers.
    max_attempts:
        Total placement attempts (initial + retries) before the request
        is declared failed.
    backoff_base / backoff_cap:
        Exponential backoff between attempts: ``base · 2^(attempt-1)``
        seconds, capped at ``backoff_cap``.
    jitter:
        Fraction of each backoff randomized (``0`` = deterministic
        full backoff, ``0.5`` = uniform in ``[0.5·b, b]``). Drawn from
        the client's seeded rng, so runs replay bit-identically.
    """

    request_timeout: float = 10.0
    max_attempts: int = 10
    backoff_base: float = 0.25
    backoff_cap: float = 5.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.request_timeout <= 0:
            raise ValueError(f"request_timeout must be > 0, got {self.request_timeout}")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base <= 0 or self.backoff_cap < self.backoff_base:
            raise ValueError(
                f"need 0 < backoff_base <= backoff_cap, got "
                f"{self.backoff_base}/{self.backoff_cap}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def backoff(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Backoff before retry number ``attempt`` (1-based), jittered."""
        base = min(self.backoff_cap, self.backoff_base * (2.0 ** max(0, attempt - 1)))
        if rng is None or self.jitter == 0.0:
            return base
        return base * (1.0 - self.jitter * rng.random())


def drive_attempts(
    env: Simulator,
    route: Callable[["MetadataRequest"], Optional["FileServer"]],
    request: "MetadataRequest",
    policy: Optional[RetryPolicy] = None,
    rng: Optional[random.Random] = None,
    suspected: Optional[Callable[[], Set[object]]] = None,
    ledger: Optional["HardenedClient"] = None,
):
    """The one locate-(retry)-submit-await code path every client shares.

    A generator to ``yield from`` inside a simulation process.

    With ``policy=None`` (the plain access path): locate once, submit,
    wait for completion; an unroutable request raises ``RuntimeError``.

    With a :class:`RetryPolicy`: the full hardened loop — re-locate
    before every attempt (so reconfigurations redirect the next retry
    automatically), per-attempt timeout that abandons only dead or
    suspected targets, capped jittered backoff between attempts. Every
    retry/redirect/timeout is counted on ``ledger`` when given.
    """
    if policy is None:
        server = route(request)
        if server is None:
            raise RuntimeError(f"no server for file set {request.fileset!r}")
        done = env.event()
        request.on_complete = lambda req, ev=done: ev.succeed(req)
        server.submit(request)
        yield done
        return

    from ..cluster.request import MetadataRequest

    attempts = 0
    last_target: Optional[object] = None
    while attempts < policy.max_attempts:
        attempts += 1
        server = route(request)
        if server is None or server.failed or (
            suspected is not None and server.server_id in suspected()
        ):
            # No live owner right now (stale mapping or mid-failover):
            # back off and re-locate.
            if ledger is not None:
                ledger.retries += 1
                ledger.backing_off += 1
            yield env.timeout(policy.backoff(attempts, rng))
            if ledger is not None:
                ledger.backing_off -= 1
            continue
        if last_target is not None and server.server_id != last_target:
            if ledger is not None:
                ledger.redirects += 1
        last_target = server.server_id
        # A pristine attempt copy: the original request's arrival is
        # preserved so measured latency includes every retry delay.
        attempt = MetadataRequest(
            fileset=request.fileset, arrival=request.arrival, work=request.work
        )
        done = env.event()
        attempt.on_complete = lambda req, ev=done: ev.succeed(req)
        incarnation = server.incarnation
        server.submit(attempt)
        if ledger is not None:
            ledger.awaiting_service += 1
        abandoned = False
        while not attempt.done:
            timeout = env.timeout(policy.request_timeout)
            yield env.any_of([done, timeout])
            if attempt.done:
                break
            if (
                server.failed
                or server.incarnation != incarnation
                or (suspected is not None and server.server_id in suspected())
            ):
                # The attempt died with its server (a crash discards
                # the queue — even if it has recovered since, this
                # attempt is gone); abandon and redirect.
                if ledger is not None:
                    ledger.timeouts += 1
                abandoned = True
                break
            # Healthy but slow: keep waiting — FIFO guarantees the
            # attempt is still making progress toward the head.
        if ledger is not None:
            ledger.awaiting_service -= 1
        if not abandoned:
            request.server = attempt.server
            request.service_start = attempt.service_start
            request.completion = attempt.completion
            if ledger is not None:
                ledger._settle(request, attempt.latency)
            if request.on_complete is not None:
                request.on_complete(request)
            return
        if ledger is not None:
            ledger.retries += 1
            ledger.backing_off += 1
        yield env.timeout(policy.backoff(attempts, rng))
        if ledger is not None:
            ledger.backing_off -= 1
    if ledger is not None:
        ledger._exhaust(request)


class HardenedClient(RequestLedger):
    """Retrying, redirecting request submission path.

    Parameters
    ----------
    env:
        The simulator.
    route:
        ``route(request) -> Optional[FileServer]`` — resolves the file
        set's *current* server; re-consulted before every attempt, so a
        reconfiguration redirects the next retry automatically.
    policy:
        Retry/backoff/timeout configuration.
    rng:
        Seeded :class:`random.Random` for backoff jitter (``None``
        disables jitter).
    suspected:
        Optional ``() -> set`` of server ids currently suspected by the
        failure detector; the client refuses to wait on (and redirects
        away from) suspected targets.
    probe:
        Optional :class:`~repro.engine.probes.ProbeBus` receiving
        :class:`~repro.engine.probes.RequestFailed` events.
    """

    def __init__(
        self,
        env: Simulator,
        route: Callable[["MetadataRequest"], Optional["FileServer"]],
        policy: Optional[RetryPolicy] = None,
        rng: Optional[random.Random] = None,
        suspected: Optional[Callable[[], Set[object]]] = None,
        probe=None,
    ) -> None:
        super().__init__()
        self.env = env
        self.route = route
        self.policy = policy or RetryPolicy()
        self.rng = rng
        self.suspected = suspected
        self.probe = probe

    # ------------------------------------------------------------------ #
    def submit(self, request: "MetadataRequest"):
        """Drive one logical request to completion (or exhaustion)."""
        self.ledger_inject()
        return self.env.process(self._drive(request))

    def _drive(self, request: "MetadataRequest"):
        self.dispatching -= 1
        yield from drive_attempts(
            self.env,
            self.route,
            request,
            policy=self.policy,
            rng=self.rng,
            suspected=self.suspected,
            ledger=self,
        )

    # ------------------------------------------------------------------ #
    # ledger transitions (called by drive_attempts)
    # ------------------------------------------------------------------ #
    def _settle(self, request: "MetadataRequest", latency: float) -> None:
        self.ledger_settle(latency)

    def _exhaust(self, request: "MetadataRequest") -> None:
        self.ledger_exhaust()
        if self.probe is not None:
            self.probe.publish(
                RequestFailed(time=self.env.now, fileset=request.fileset)
            )


class RequestDriver:
    """Replays a time-ordered request schedule into the cluster.

    The one driver both client paths share. Exactly one of ``route`` /
    ``client`` must be given:

    ``route``
        Basic path — ``route(request) -> FileServer`` resolves the file
        set's current server *at arrival time*; returning ``None``
        drops the request (counted, optionally published).
    ``client``
        Hardened path — every request is handed to a
        :class:`HardenedClient` for the retry/redirect treatment
        instead of being dropped when routing fails.
    """

    def __init__(
        self,
        env: Simulator,
        schedule: Sequence["MetadataRequest"],
        route: Optional[Callable[["MetadataRequest"], Optional["FileServer"]]] = None,
        client: Optional[HardenedClient] = None,
        probe=None,
    ) -> None:
        if (route is None) == (client is None):
            raise ValueError("exactly one of route/client must be given")
        self.env = env
        self.schedule = list(schedule)
        if any(
            b.arrival < a.arrival for a, b in zip(self.schedule, self.schedule[1:])
        ):
            raise ValueError("request schedule must be sorted by arrival time")
        self.route = route
        self.client = client
        self.probe = probe
        self._submitted = 0
        self._dropped = 0
        self.process = env.process(self._replay())

    def _replay(self):
        submit = self.client.submit if self.client is not None else self._submit_basic
        for request in self.schedule:
            delay = request.arrival - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            submit(request)

    def _submit_basic(self, request: "MetadataRequest") -> None:
        server = self.route(request)
        if server is None:
            self._dropped += 1
            if self.probe is not None and self.probe.wants(RequestDropped):
                self.probe.publish(
                    RequestDropped(time=self.env.now, fileset=request.fileset)
                )
            return
        server.submit(request)
        self._submitted += 1

    # ------------------------------------------------------------------ #
    @property
    def submitted(self) -> int:
        """Requests handed to the cluster (or the client) so far."""
        return self.client.injected if self.client is not None else self._submitted

    @property
    def dropped(self) -> int:
        """Basic path: silently dropped; hardened path: counted failures."""
        return self.client.failed if self.client is not None else self._dropped


# ---------------------------------------------------------------------- #
# the layer objects
# ---------------------------------------------------------------------- #
class ClientPath:
    """Assembles the request driver for an engine (stateless factory)."""

    def build(self, engine: "ClusterEngine") -> RequestDriver:
        """Return the driver that replays ``engine.workload``."""
        raise NotImplementedError


class BasicClientPath(ClientPath):
    """Route-once, submit-or-drop — the paper's figure-run semantics."""

    def build(self, engine: "ClusterEngine") -> RequestDriver:
        return RequestDriver(
            engine.env,
            engine.workload.requests,
            route=engine._route,
            probe=engine.bus,
        )


class HardenedClientPath(ClientPath):
    """Timeout/backoff/redirect submission through a :class:`HardenedClient`.

    Parameters
    ----------
    retry:
        The :class:`RetryPolicy` (default: stock policy).
    rng:
        Seeded rng for backoff jitter.
    trust_detector:
        When ``True`` (default) the client consults the engine's
        failure detector and redirects away from suspected servers.
    """

    def __init__(
        self,
        retry: Optional[RetryPolicy] = None,
        rng: Optional[random.Random] = None,
        trust_detector: bool = True,
    ) -> None:
        self.retry = retry
        self.rng = rng
        self.trust_detector = trust_detector

    def build(self, engine: "ClusterEngine") -> RequestDriver:
        suspected = None
        if self.trust_detector:
            def suspected() -> Set[object]:
                monitor = engine.monitor
                return monitor.suspected if monitor is not None else set()
        client = HardenedClient(
            engine.env,
            engine._route,
            policy=self.retry,
            rng=self.rng,
            suspected=suspected,
            probe=engine.bus,
        )
        return RequestDriver(
            engine.env, engine.workload.requests, client=client, probe=engine.bus
        )
