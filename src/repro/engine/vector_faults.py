"""Array-native fault injection for the vectorized client path.

:class:`VectorChaosFaultLayer` is the planet-scale counterpart of
:class:`~repro.engine.fault_layer.ChaosFaultLayer`. The scalar harness
is reactive — an injector fires faults into a live simulator and a
heartbeat monitor detects them some messages later. The vectorized
driver has no per-request events and no message network to react to,
so this layer replays a *compiled* timeline instead:

1. :func:`~repro.faults.timeline.compile_timeline` resolves the seeded
   :class:`~repro.faults.schedule.FaultSchedule` into an ordered list
   of state transitions (crash, detect, readmit, reboot, partition
   evict/readmit, straggle on/off) with every detection and
   re-admission instant computed analytically on the heartbeat grid.
2. The driver drains request cohorts *between* timeline events and
   hands each event here; the layer applies it as array mutations —
   an ``alive`` mask (data plane up), an ``admitted`` mask (layout
   membership), and a per-slot ``rate`` multiplier (stragglers) — plus
   the matching policy churn call (``server_failed``/``server_added``)
   and orphan re-drive.
3. After every reconfiguration (and every interval boundary) a
   :class:`~repro.faults.vector_invariants.VectorInvariantChecker`
   sweep audits conservation, moment accounting, mask-respecting
   assignment, and layout/alive-set agreement.

Orphan lifecycle: a crash extracts the victim's queued-but-unfinished
completions into the driver's orphan pool (counted as ``timeouts`` —
the scalar analogue of attempts abandoned on a dead target); arrivals
routed to a crashed-but-undetected slot join the pool as they arrive.
Each reconfiguration re-drives the affected pool through the current
assignment (counted as ``retries``; landing on a different server is a
``redirect``), preserving the original arrival time so measured
latency includes the full outage, exactly like the scalar hardened
client.

Deviations from the scalar semantics, all deliberate and documented:

* Partitions isolate the *control plane only*: the victim keeps
  draining its queue (``alive`` stays true) while the detector evicts
  it from the layout — there are no client-visible messages to cut.
* A straggler's rate multiplier applies to whole sub-window cohorts at
  drain time rather than to the individual slice in progress.
* ``FaultInjected`` bus events are published for crash and straggle
  application instants; partitions appear in the ``applied`` ledger
  (they have no data-plane instant on this path) and link faults are
  compiled to counted skips.

Import discipline: ``repro.engine`` must not import ``repro.faults``
at module level (the layering gate enforces it); everything from there
loads inside :meth:`attach`.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

import numpy as np

from ..core.errors import ConfigurationError
from .probes import (
    FailureDeclared,
    FaultInjected,
    InvariantAudit,
    MovesApplied,
    RecoveryDeclared,
)
from .control import publish_relocation
from .record import ChaosConfig, ChaosResult, FailureRecord
from .fault_layer import FaultLayer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.schedule import FaultSchedule
    from ..faults.timeline import ChaosTimeline, TimelineEvent
    from ..faults.vector_invariants import VectorInvariantChecker
    from .engine import ClusterEngine
    from .record import ClusterResult

__all__ = ["VectorChaosFaultLayer"]


class VectorChaosFaultLayer(FaultLayer):
    """Compiled-timeline chaos for :class:`VectorizedRequestDriver`.

    Parameters
    ----------
    schedule:
        The fault script to execute (default: empty schedule).
    chaos:
        Harness configuration; its ``seed`` is the replay key embedded
        in every violation artifact, and its heartbeat knobs define
        the analytic detection grid.
    """

    def __init__(
        self,
        schedule: Optional["FaultSchedule"] = None,
        chaos: Optional[ChaosConfig] = None,
    ) -> None:
        self.chaos = chaos or ChaosConfig()
        self.schedule = schedule
        self.engine: Optional["ClusterEngine"] = None
        self.timeline: Optional["ChaosTimeline"] = None
        self.checker: Optional["VectorInvariantChecker"] = None
        #: Crash/suspect timelines (resolved at compile time).
        self.failures: List[FailureRecord] = []
        #: Data plane up (false between crash and reboot/readmit-heal).
        self.alive: Optional[np.ndarray] = None
        #: Layout membership (false between detect and readmit).
        self.admitted: Optional[np.ndarray] = None
        #: Per-slot service-rate multiplier (straggle factor).
        self.rate: Optional[np.ndarray] = None
        self._degraded_slots = 0
        # Ledger counters (scalar hardened-client analogues).
        self.retries = 0
        self.redirects = 0
        self.timeouts = 0
        self.failure_declarations = 0
        self.recovery_declarations = 0
        #: Compat with the scalar chaos surface (no live detector).
        self.monitor = None
        self.injector = None

    # ------------------------------------------------------------------ #
    def attach(self, engine: "ClusterEngine") -> None:
        from ..faults.schedule import FaultSchedule
        from ..faults.timeline import compile_timeline
        from ..faults.vector_invariants import VectorInvariantChecker

        if self.schedule is None:
            self.schedule = FaultSchedule()
        driver = engine.driver
        if not hasattr(driver, "attach_chaos"):
            raise ConfigurationError(
                "VectorChaosFaultLayer needs the vectorized client path "
                f"(driver {type(driver).__name__} has no attach_chaos); "
                "use ChaosFaultLayer on scalar paths"
            )
        policy = engine.policy
        for hook in ("server_failed", "server_added"):
            if not callable(getattr(policy, hook, None)):
                raise ConfigurationError(
                    f"policy {type(policy).__name__} lacks {hook}(); "
                    "vectorized chaos needs churn-capable policies"
                )
        self.engine = engine
        server_ids = list(engine.config.server_powers)
        self.server_ids = server_ids
        n = len(server_ids)
        self.alive = np.ones(n, dtype=bool)
        self.admitted = np.ones(n, dtype=bool)
        self.rate = np.ones(n, dtype=np.float64)
        self._servers = [engine.servers[sid] for sid in server_ids]
        self.timeline = compile_timeline(
            self.schedule, self.chaos, server_ids, engine.workload.duration
        )
        self.failures = self.timeline.failures
        self.checker = VectorInvariantChecker(
            driver,
            policy,
            lambda: self.admitted,
            server_ids,
            seed=self.chaos.seed,
            schedule=self.schedule,
            now=lambda: engine.env.now,
        )
        driver.attach_chaos(self)

    # ------------------------------------------------------------------ #
    def effective_powers(self, base: np.ndarray) -> np.ndarray:
        """Per-slot service powers with active straggle factors applied."""
        if self._degraded_slots == 0:
            return base
        return base * self.rate

    # ------------------------------------------------------------------ #
    def apply_event(self, event: "TimelineEvent") -> None:
        """Apply one compiled transition (driver already drained to it)."""
        engine = self.engine
        driver = engine.driver
        s = event.slot
        t = event.time
        server = self._servers[s]
        action = event.action
        if action == "crash":
            self.alive[s] = False
            # Queued-but-unfinished work dies with the server; the
            # extracted requests await re-location in the orphan pool.
            self.timeouts += driver.orphan_extract(s, t)
            server.fail()
            engine.bus.publish(
                FaultInjected(time=t, kind="crash", target=event.server_id)
            )
        elif action in ("detect", "part-detect"):
            self.failure_declarations += 1
            engine.bus.publish(FailureDeclared(time=t, server_id=event.server_id))
            if self.admitted[s] and int(self.admitted.sum()) > 1:
                self.admitted[s] = False
                self._churn("fail", event)
            self._redrive(s, t)
            self.sweep(action, t)
        elif action in ("readmit", "part-readmit"):
            if server.failed:
                server.recover()
                driver.reset_free_at(s, t)
            self.alive[s] = True
            self.recovery_declarations += 1
            engine.bus.publish(RecoveryDeclared(time=t, server_id=event.server_id))
            if not self.admitted[s]:
                self.admitted[s] = True
                self._churn("recover", event)
            self._redrive(s, t)
            self.sweep(action, t)
        elif action == "reboot":
            # Undetected blip: the layout never changed; the server
            # reboots in place and its orphans re-queue right there.
            if server.failed:
                server.recover()
                driver.reset_free_at(s, t)
            self.alive[s] = True
            self._redrive(s, t)
        elif action == "straggle-on":
            if self.rate[s] == 1.0:
                self._degraded_slots += 1
            self.rate[s] = event.factor
            server.set_power_factor(event.factor)
            engine.bus.publish(
                FaultInjected(time=t, kind="straggle", target=event.server_id)
            )
        elif action == "straggle-off":
            if self.rate[s] != 1.0:
                self._degraded_slots -= 1
            self.rate[s] = 1.0
            server.set_power_factor(1.0)
        else:  # pragma: no cover - compile_timeline validates actions
            raise ValueError(f"unknown timeline action {action!r}")

    # ------------------------------------------------------------------ #
    def _churn(self, kind: str, event: "TimelineEvent") -> None:
        """One membership change through the policy, moves published."""
        engine = self.engine
        policy = engine.policy
        before = getattr(policy, "total_sheds", 0)
        if kind == "fail":
            policy.server_failed(event.server_id)
        else:
            server = engine.servers.get(event.server_id)
            policy.server_added(
                event.server_id,
                power_hint=server.base_power if server is not None else None,
            )
        sheds = int(getattr(policy, "total_sheds", 0) - before)
        # Published directly: emit_moves=False policies return empty
        # move lists, so engine._apply_moves would log zero. The cache
        # layer is disabled on this path, so there is no move cost to
        # charge either.
        engine.bus.publish(
            MovesApplied(
                time=event.time,
                round_index=engine._round,
                kind=kind,
                moves=sheds,
                moved_work_share=0.0,
            )
        )
        publish_relocation(engine, event.time)

    def _redrive(self, slot: int, t: float) -> None:
        """Re-locate the orphan pool of ``slot`` through the new layout."""
        redriven, redirected = self.engine.driver.redrive_orphans(slot, t)
        self.retries += redriven
        self.redirects += redirected

    def sweep(self, trigger: str, time: float, final: bool = False) -> None:
        """One full invariant sweep, audited on the bus."""
        self.checker.check(trigger, final=final)
        self.engine.bus.publish(
            InvariantAudit(
                time=time,
                trigger=trigger,
                violations=len(self.checker.violations),
            )
        )

    # ------------------------------------------------------------------ #
    def finalize(self, engine: "ClusterEngine", base: "ClusterResult") -> ChaosResult:
        """Final sweep, then the robustness result view.

        The vector path neither abandons nor loses requests: everything
        in flight at the horizon is classified — still queued on a
        server (``queued``) or awaiting re-location in the orphan pool
        (``backoff``) — and the final conservation sweep has already
        proven the split exact.
        """
        driver = engine.driver
        self.sweep("final", engine.env.now, final=True)
        orphaned = driver.orphan_count()
        discarded = driver._discarded
        return ChaosResult(
            base=base,
            seed=self.chaos.seed,
            schedule=self.schedule,
            detection_latency_bound=self.chaos.detection_latency_bound,
            faults_injected=self.timeline.injected,
            faults_skipped=self.timeline.skipped,
            applied=list(self.timeline.applied),
            failures=list(self.failures),
            requests_injected=driver.submitted,
            requests_completed=sum(c.size for c in driver._flushed),
            requests_failed=0,
            requests_in_flight=discarded + orphaned,
            retries=self.retries,
            redirects=self.redirects,
            timeouts=self.timeouts,
            failure_declarations=self.failure_declarations,
            recovery_declarations=self.recovery_declarations,
            invariant_checks=self.checker.checks,
            invariant_violations=len(self.checker.violations),
            requests_in_flight_queued=discarded,
            requests_in_flight_backoff=orphaned,
        )
