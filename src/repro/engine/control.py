"""The control-plane layer: who decides the tuning rounds, and how.

Two interchangeable implementations of one contract
(:class:`ControlPlane`):

* :class:`DirectControlPlane` — the figure experiments' faithful
  shortcut: each round calls the policy's ``rebalance`` in-process
  (the delegate is a pure function of the reports, so the decisions
  are identical to the message-passing path);
* :class:`DistributedControlPlane` — the §4 control plane made of
  messages: reports travel a simulated
  :class:`~repro.distributed.network.Network` to an elected delegate
  (via :class:`~repro.distributed.control.DistributedTuningService`),
  the mapping is broadcast back, and delegate crashes force mid-run
  re-elections.

The engine owns the tuning cadence (one call to :meth:`tuning_round`
per interval) and applies whatever moves the plane returns; the plane
owns everything between "the interval elapsed" and "here are the
moves".

Neither plane knows *which* tuning rule runs: the decision procedure
is the policy's :class:`repro.control.Controller` (injected via
``ExperimentSpec.controller`` or the policy constructor), so direct
and distributed control stay decision-identical for every controller
in the family, including stateful ones (the distributed service forks
the replicated controller state per round; see
:mod:`repro.distributed.control`).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, TYPE_CHECKING

from ..core.tuning import LatencyReport
from ..distributed.control import DistributedTuningService
from ..distributed.network import Network
from ..policies.base import LazyKnowledge, Move, RebalanceContext
from .probes import DelegateElected, RelocationApplied

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import ClusterEngine

__all__ = [
    "ControlPlane",
    "DirectControlPlane",
    "DistributedControlPlane",
    "publish_relocation",
]


class ControlPlane:
    """Decides placement changes once per tuning interval."""

    def attach(self, engine: "ClusterEngine") -> None:
        """Wire the plane into a freshly assembled engine (once)."""

    def tuning_round(self, engine: "ClusterEngine") -> List[Move]:
        """Run one tuning round; returns the moves to apply.

        Implementations collect the servers' interval reports (closing
        their measurement windows), advance ``engine._round``, and
        produce the round's moves. The engine applies them (charging
        cache costs) and records the movement.
        """
        raise NotImplementedError


class DirectControlPlane(ControlPlane):
    """In-process tuning: reports feed ``policy.rebalance`` directly."""

    def tuning_round(self, engine: "ClusterEngine") -> List[Move]:
        reports: List[LatencyReport] = []
        observed: Dict[str, float] = {}
        for srv in engine.servers.values():
            if srv.failed:
                continue
            reports.append(srv.interval_report())
            for fs, work in srv.drain_fileset_work().items():
                observed[fs] = observed.get(fs, 0.0) + work
        engine._round += 1
        # Offered, not computed: LazyKnowledge defers the O(catalog)
        # oracle build until a prescient-class policy reads it, so
        # simple/ANU/table rounds skip the work entirely.
        t0 = engine.env.now
        ctx = RebalanceContext(
            now=t0,
            round_index=engine._round,
            reports=reports,
            knowledge=LazyKnowledge(lambda: engine._knowledge(t0))
            if engine.config.supply_knowledge
            else None,
            observed_fileset_work=observed,
        )
        moves = engine.policy.rebalance(ctx)
        publish_relocation(engine, t0)
        return moves


def publish_relocation(engine: "ClusterEngine", time: float) -> None:
    """Drain the policy's last relocation record onto the bus.

    Policies with :class:`~repro.policies.base.RelocationStats` record
    what each reconfiguration re-resolved; publishing from the control
    plane (and the chaos layers for churn) keeps the policies below the
    engine in the layering.
    """
    consume = getattr(engine.policy, "consume_last_relocation", None)
    if consume is None:
        return
    info = consume()
    if info is None:
        return
    engine.bus.publish(
        RelocationApplied(
            time=time,
            kind=info["kind"],
            relocated=info["relocated"],
            catalog_size=info["catalog_size"],
            seconds=info["seconds"],
            mode=info["mode"],
        )
    )


class DistributedControlPlane(ControlPlane):
    """Message-level tuning rounds through an elected delegate.

    Parameters
    ----------
    delegate_crashes:
        Simulated times at which the *current* delegate crashes. The
        crash downs the node on the network (so the next round must
        re-elect) without failing its file server — modeling a control-
        plane fault rather than a data-plane one, which is the pure
        fail-over case the §4 claim addresses.
    network_rng:
        Seeded :class:`random.Random` for the network's probabilistic
        link faults (the chaos harness hands one in; ``None`` gives a
        perfectly reliable network).
    """

    def __init__(
        self,
        delegate_crashes: Optional[List[float]] = None,
        network_rng: Optional[random.Random] = None,
    ) -> None:
        self.delegate_crashes = list(delegate_crashes or [])
        self.network_rng = network_rng
        self.network: Optional[Network] = None
        self.service: Optional[DistributedTuningService] = None
        self._pending_reports: List[LatencyReport] = []
        self._last_delegate: object = None

    # ------------------------------------------------------------------ #
    def attach(self, engine: "ClusterEngine") -> None:
        from ..policies.anu import ANURandomization  # heavy policy module

        if not isinstance(engine.policy, ANURandomization):
            raise TypeError(
                "the distributed control plane drives ANU; got "
                f"{type(engine.policy).__name__}"
            )
        self.network = Network(engine.env, rng=self.network_rng)
        self.service = DistributedTuningService(
            engine.env,
            self.network,
            engine.policy.manager,
            collect_reports=lambda: self._pending_reports,
        )
        self._last_delegate = self.service.delegate_id
        engine.bus.publish(
            DelegateElected(
                time=engine.env.now,
                delegate_id=self.service.delegate_id,
                failover=False,
            )
        )
        for t in self.delegate_crashes:
            engine.env.schedule_at(t, lambda: self._crash_delegate(engine))

    def _crash_delegate(self, engine: "ClusterEngine") -> None:
        victim = self.service.fail_delegate()
        # The node is gone from the control plane only; it rejoins after
        # the next tuning round has re-elected (1.5 intervals), so the
        # experiment measures pure delegate fail-over. (Server-failure
        # churn is exercised through schedule_failure as usual.)
        engine.env.schedule_at(
            engine.env.now + 1.5 * engine.config.tuning_interval,
            lambda: self.network.set_down(victim, False),
        )

    # ------------------------------------------------------------------ #
    def tuning_round(self, engine: "ClusterEngine") -> List[Move]:
        reports: List[LatencyReport] = []
        for srv in engine.servers.values():
            if srv.failed:
                continue
            reports.append(srv.interval_report())
            srv.drain_fileset_work()
        engine._round += 1
        self._pending_reports = reports
        rec = self.service.run_round()
        moves = [Move(s.fileset, s.source, s.target) for s in rec.sheds]
        if self.service.delegate_id != self._last_delegate:
            self._last_delegate = self.service.delegate_id
            engine.bus.publish(
                DelegateElected(
                    time=engine.env.now,
                    delegate_id=self.service.delegate_id,
                    failover=True,
                )
            )
        return moves

    # ------------------------------------------------------------------ #
    @property
    def failovers(self) -> int:
        """Delegate re-elections that were forced by crashes."""
        return self.service.failovers if self.service is not None else 0
