"""Run records and result views.

The canonical home of every configuration/result type the experiment
stack shares:

* :class:`ClusterConfig` — static cluster shape (moved from
  ``repro.cluster.cluster``, which still re-exports it);
* :class:`MovementRecord` / :class:`ClusterResult` — the paper-figure
  measurements of one run;
* :class:`ChaosConfig` / :class:`FailureRecord` / :class:`ChaosResult`
  — the robustness measurements (moved from ``repro.faults.chaos``);
* :class:`RunRecord` + :class:`RunRecorder` — the engine-side half:
  one recorder subscribed to the probe bus accumulates the movement
  log, delegate history, and fault/detector/audit counters, and the
  result dataclasses above are built as *views* of that record instead
  of being scraped out of each driver after the fact.

This module must stay import-light: it is loaded while the legacy shim
modules (``repro.cluster.cluster`` …) are still half-initialised, so it
only imports :mod:`repro.sim` and sibling engine modules at top level —
anything from ``repro.cluster``/``repro.faults`` is deferred.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

import numpy as np

from ..sim import Tally, TimeSeries
from .client_path import RetryPolicy
from .probes import (
    DelegateElected,
    FaultInjected,
    FailureDeclared,
    InvariantAudit,
    MovesApplied,
    Observer,
    RecoveryDeclared,
    RequestDropped,
    RequestFailed,
    RunCompleted,
    RunStarted,
    ServerFailed,
    ServerRecovered,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.cache import CacheConfig
    from ..faults.schedule import FaultSchedule

__all__ = [
    "ClusterConfig",
    "MovementRecord",
    "ClusterResult",
    "ChaosConfig",
    "FailureRecord",
    "ChaosResult",
    "RunRecord",
    "RunRecorder",
    "derive_seed",
]


def derive_seed(seed: int, name: str) -> int:
    """Stable integer sub-seed (independent of PYTHONHASHSEED)."""
    return (int(seed) * 2654435761 + zlib.crc32(name.encode("utf-8"))) % (2**63)


def _default_cache_config() -> "CacheConfig":
    # Deferred: repro.cluster may still be mid-import when this module
    # loads; by the time a config is *constructed* it is fully loaded.
    from ..cluster.cache import CacheConfig

    return CacheConfig()


@dataclass(frozen=True)
class ClusterConfig:
    """Static configuration of one cluster experiment.

    Attributes
    ----------
    server_powers:
        Ordered map server id → processing power. The paper's cluster is
        ``{0: 1, 1: 3, 2: 5, 3: 7, 4: 9}``.
    tuning_interval:
        Seconds between tuning rounds (paper: 120 s, "to avoid
        over-tuning while still providing responsiveness").
    cache:
        Cost model for file-set movement.
    supply_knowledge:
        Whether to compute the prescient oracle each round. The driver
        always *offers* it; only prescient-class policies read it.
    """

    server_powers: Dict[object, float]
    tuning_interval: float = 120.0
    cache: "CacheConfig" = field(default_factory=_default_cache_config)
    supply_knowledge: bool = True

    def __post_init__(self) -> None:
        if not self.server_powers:
            raise ValueError("need at least one server")
        if any(p <= 0 for p in self.server_powers.values()):
            raise ValueError("server powers must be > 0")
        if self.tuning_interval <= 0:
            raise ValueError(f"tuning_interval must be > 0: {self.tuning_interval}")


@dataclass(frozen=True)
class MovementRecord:
    """Movement caused by one reconfiguration (tuning round or churn)."""

    round_index: int
    time: float
    kind: str
    moves: int
    moved_work_share: float


@dataclass
class ClusterResult:
    """Everything measured during one cluster run."""

    policy_name: str
    config: ClusterConfig
    duration: float
    #: Per-server time series of per-interval mean latency.
    server_latency: Dict[object, TimeSeries]
    #: Per-server whole-run latency tallies.
    server_tally: Dict[object, Tally]
    #: Per-server completed-request counts.
    server_requests: Dict[object, int]
    #: Per-server busy-time utilization over the run.
    server_utilization: Dict[object, float]
    #: One record per reconfiguration.
    movement: List[MovementRecord]
    #: Replicated shared-state size (entries) at end of run.
    shared_state_entries: int
    #: Requests submitted / completed / still queued at the end.
    submitted: int
    completed: int
    #: Latency of every completed request (aggregate figures).
    all_latencies: np.ndarray
    #: Kernel events processed during the run (determinism fingerprint:
    #: two runs of the same experiment must process the same count).
    events_processed: int = 0

    # ------------------------------------------------------------------ #
    @property
    def aggregate_mean_latency(self) -> float:
        """Mean latency over all completed requests (Figure 6a)."""
        return float(self.all_latencies.mean()) if self.all_latencies.size else float("nan")

    @property
    def aggregate_std_latency(self) -> float:
        """Standard deviation of request latency (Figure 6a error bars)."""
        return float(self.all_latencies.std(ddof=1)) if self.all_latencies.size > 1 else float("nan")

    @property
    def per_server_mean_latency(self) -> Dict[object, float]:
        """Mean latency of requests served by each server (Figure 6b)."""
        return {sid: t.mean for sid, t in self.server_tally.items()}

    @property
    def unfinished(self) -> int:
        """Requests that never completed (overloaded-server backlog)."""
        return self.submitted - self.completed

    @property
    def total_moves(self) -> int:
        """File-set moves across all reconfigurations (Figure 7 total)."""
        return sum(m.moves for m in self.movement)

    @property
    def total_moved_work_share(self) -> float:
        """Cumulative share of total workload moved (Figure 7, right axis)."""
        return sum(m.moved_work_share for m in self.movement)

    def request_share(self, server_id: object) -> float:
        """Fraction of all completed requests served by ``server_id``.

        Reproduces the paper's server-0 observation: "server 0 served
        only 248 requests (0.37%) out of the total 66,401" (§5.2.2).
        """
        if not self.completed:
            return float("nan")
        return self.server_requests.get(server_id, 0) / self.completed


@dataclass(frozen=True)
class ChaosConfig:
    """Knobs of the chaos harness (all defaults deterministic)."""

    seed: int = 1
    heartbeat_period: float = 2.0
    heartbeat_misses: int = 3
    heartbeat_recoveries: int = 2
    #: Cadence of the periodic (non-reconfiguration) invariant sweep.
    invariant_interval: float = 10.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    @property
    def detection_latency_bound(self) -> float:
        """Worst-case crash → declaration latency of the detector."""
        return self.heartbeat_period * (self.heartbeat_misses + 1)


@dataclass
class FailureRecord:
    """Timeline of one server crash (or partition suspicion)."""

    server_id: object
    kind: str  # "crash" or "suspect"
    t_fault: float
    #: Detector declaration instant (None if healed unnoticed).
    t_detect: Optional[float] = None
    #: Instant the underlying fault was lifted (network/link restored).
    t_heal: Optional[float] = None
    #: Instant the server was re-admitted to the layout (or directly
    #: recovered, for undetected blips).
    t_readmit: Optional[float] = None

    def detection_latency(self) -> Optional[float]:
        """Crash → declaration delay (None if never detected)."""
        if self.t_detect is None:
            return None
        return self.t_detect - self.t_fault

    def unavailable_until(self, horizon: float) -> float:
        """End of this record's unavailability window, capped at horizon."""
        return min(horizon, self.t_readmit if self.t_readmit is not None else horizon)


@dataclass
class ChaosResult:
    """Everything a chaos run measured, robustness metrics included."""

    base: ClusterResult
    seed: int
    schedule: "FaultSchedule"
    detection_latency_bound: float
    #: Faults applied / skipped by the injector.
    faults_injected: int
    faults_skipped: int
    applied: List[tuple]
    failures: List[FailureRecord]
    #: Client-side hardening ledger.
    requests_injected: int
    requests_completed: int
    requests_failed: int
    requests_in_flight: int
    retries: int
    redirects: int
    timeouts: int
    #: Detector activity.
    failure_declarations: int
    recovery_declarations: int
    #: Invariant sweeps performed / violations caught.
    invariant_checks: int
    invariant_violations: int
    #: Classification of the in-flight remainder at the horizon — a
    #: run *ends* with work in progress; none of it may be lost. Each
    #: in-flight request is exactly one of: queued on a live server
    #: (``queued``), between attempts awaiting backoff/re-location
    #: (``backoff``), or accepted but not yet driven (``dispatch``,
    #: scalar dispatch latch only).
    requests_in_flight_queued: int = 0
    requests_in_flight_backoff: int = 0
    requests_in_flight_dispatch: int = 0

    # ------------------------------------------------------------------ #
    @property
    def requests_lost(self) -> int:
        """In-flight requests the classification cannot account for.

        Zero by the conservation invariant; anything else is a harness
        bug the chaos tests fail on.
        """
        return self.requests_in_flight - (
            self.requests_in_flight_queued
            + self.requests_in_flight_backoff
            + self.requests_in_flight_dispatch
        )

    @property
    def detection_latencies(self) -> List[float]:
        """Observed crash → declaration delays."""
        return [
            lat
            for rec in self.failures
            if (lat := rec.detection_latency()) is not None
        ]

    @property
    def retries_per_request(self) -> float:
        """Mean retries per injected logical request."""
        return self.retries / self.requests_injected if self.requests_injected else 0.0

    @property
    def failed_request_share(self) -> float:
        """Fraction of logical requests abandoned after all retries."""
        return self.requests_failed / self.requests_injected if self.requests_injected else 0.0

    @property
    def server_downtime(self) -> float:
        """Total server-seconds of unavailability (fault → readmission)."""
        horizon = self.base.duration
        return sum(
            max(0.0, rec.unavailable_until(horizon) - rec.t_fault)
            for rec in self.failures
        )

    @property
    def unavailability(self) -> float:
        """Downtime share of total server-time (server-seconds basis)."""
        horizon = self.base.duration
        n = len(self.base.server_tally)
        return self.server_downtime / (horizon * n) if horizon and n else 0.0


# ---------------------------------------------------------------------- #
# the engine-side record
# ---------------------------------------------------------------------- #
@dataclass
class RunRecord:
    """What one engine run accumulated on the probe bus.

    The single source the result views are built from: the movement
    log feeds :class:`ClusterResult`, the delegate history feeds the
    distributed compat surface, the counters feed :class:`ChaosResult`.
    """

    #: One record per reconfiguration, in application order.
    movement: List[MovementRecord] = field(default_factory=list)
    #: Every delegate that held office, in order (first = initial).
    delegate_history: List[object] = field(default_factory=list)
    #: Basic-path requests dropped (no live owner at arrival).
    requests_dropped: int = 0
    #: Hardened-path requests abandoned after every retry.
    requests_failed: int = 0
    #: Faults applied, as ``(time, kind, target)``.
    faults: List[Tuple[float, str, object]] = field(default_factory=list)
    #: Detector declarations.
    failure_declarations: int = 0
    recovery_declarations: int = 0
    #: Invariant sweeps observed on the bus.
    invariant_audits: int = 0
    #: Lifecycle markers (None until published).
    started: Optional[RunStarted] = None
    finished: Optional[RunCompleted] = None


class RunRecorder(Observer):
    """The bus subscriber that fills a :class:`RunRecord`.

    Attached first by the engine, so its view is complete before any
    user observer sees an event.
    """

    subscriptions = {
        RunStarted: "on_started",
        RunCompleted: "on_finished",
        MovesApplied: "on_moves",
        DelegateElected: "on_delegate",
        RequestDropped: "on_dropped",
        RequestFailed: "on_request_failed",
        FaultInjected: "on_fault",
        FailureDeclared: "on_failure_declared",
        RecoveryDeclared: "on_recovery_declared",
        InvariantAudit: "on_audit",
        ServerFailed: "on_server_failed",
        ServerRecovered: "on_server_recovered",
    }

    def __init__(self, record: Optional[RunRecord] = None) -> None:
        self.record = record if record is not None else RunRecord()
        #: Live membership changes seen on the bus (diagnostic).
        self.server_events: List[Tuple[float, str, object]] = []

    # ------------------------------------------------------------------ #
    def on_started(self, event: RunStarted) -> None:
        self.record.started = event

    def on_finished(self, event: RunCompleted) -> None:
        self.record.finished = event

    def on_moves(self, event: MovesApplied) -> None:
        self.record.movement.append(
            MovementRecord(
                round_index=event.round_index,
                time=event.time,
                kind=event.kind,
                moves=event.moves,
                moved_work_share=event.moved_work_share,
            )
        )

    def on_delegate(self, event: DelegateElected) -> None:
        self.record.delegate_history.append(event.delegate_id)

    def on_dropped(self, event: RequestDropped) -> None:
        self.record.requests_dropped += 1

    def on_request_failed(self, event: RequestFailed) -> None:
        self.record.requests_failed += 1

    def on_fault(self, event: FaultInjected) -> None:
        self.record.faults.append((event.time, event.kind, event.target))

    def on_failure_declared(self, event: FailureDeclared) -> None:
        self.record.failure_declarations += 1

    def on_recovery_declared(self, event: RecoveryDeclared) -> None:
        self.record.recovery_declarations += 1

    def on_audit(self, event: InvariantAudit) -> None:
        self.record.invariant_audits += 1

    def on_server_failed(self, event: ServerFailed) -> None:
        self.server_events.append((event.time, "fail", event.server_id))

    def on_server_recovered(self, event: ServerRecovered) -> None:
        self.server_events.append((event.time, "recover", event.server_id))
