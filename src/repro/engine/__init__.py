"""repro.engine — the composable experiment engine.

One :class:`ClusterEngine` assembled from four pluggable layers
(control plane, client path, fault layer, instrumentation) replaces
the legacy ``ClusterSimulation`` inheritance tower. See DESIGN.md §8
for the architecture and the probe catalog.

Import order below is deliberate: the legacy shim modules in
``repro.cluster``/``repro.faults`` import these submodules while their
own packages are still initialising, so each engine module may only
depend on the ones listed before it (and must never import the shim
modules, or ``repro.experiments``, at top level).
"""

from .probes import (  # noqa: F401  (isort: keep assembly order)
    DelegateElected,
    FaultInjected,
    FailureDeclared,
    InvariantAudit,
    MovesApplied,
    Observer,
    ProbeBus,
    ProbeEvent,
    RecoveryDeclared,
    RelocationApplied,
    RequestCompleted,
    RequestDropped,
    RequestFailed,
    RoundTraceProbe,
    RunCompleted,
    RunStarted,
    SLAProbe,
    ServerFailed,
    ServerRecovered,
)
from .client_path import (  # noqa: F401
    BasicClientPath,
    ClientPath,
    HardenedClient,
    HardenedClientPath,
    RequestDriver,
    RetryPolicy,
    drive_attempts,
)
from .record import (  # noqa: F401
    ChaosConfig,
    ChaosResult,
    ClusterConfig,
    ClusterResult,
    FailureRecord,
    MovementRecord,
    RunRecord,
    RunRecorder,
    derive_seed,
)
from .control import (  # noqa: F401
    ControlPlane,
    DirectControlPlane,
    DistributedControlPlane,
)
from .fault_layer import (  # noqa: F401
    MONITOR_ID,
    ChaosFaultLayer,
    FaultLayer,
    NullFaultLayer,
)
from .vector_faults import VectorChaosFaultLayer  # noqa: F401
from .engine import ClusterEngine  # noqa: F401
from .vector_driver import (  # noqa: F401
    VectorizedClientPath,
    VectorizedRequestDriver,
)
from .builder import ExperimentSpec, SimulationBuilder  # noqa: F401

__all__ = [
    # probes
    "ProbeEvent",
    "ProbeBus",
    "Observer",
    "SLAProbe",
    "RoundTraceProbe",
    "RunStarted",
    "RunCompleted",
    "RequestCompleted",
    "RequestDropped",
    "RequestFailed",
    "MovesApplied",
    "RelocationApplied",
    "DelegateElected",
    "ServerFailed",
    "ServerRecovered",
    "FaultInjected",
    "FailureDeclared",
    "RecoveryDeclared",
    "InvariantAudit",
    # client path
    "ClientPath",
    "BasicClientPath",
    "HardenedClientPath",
    "RequestDriver",
    "VectorizedClientPath",
    "VectorizedRequestDriver",
    "HardenedClient",
    "RetryPolicy",
    "drive_attempts",
    # records / results
    "ClusterConfig",
    "ClusterResult",
    "MovementRecord",
    "ChaosConfig",
    "ChaosResult",
    "FailureRecord",
    "RunRecord",
    "RunRecorder",
    "derive_seed",
    # control plane
    "ControlPlane",
    "DirectControlPlane",
    "DistributedControlPlane",
    # fault layer
    "FaultLayer",
    "NullFaultLayer",
    "ChaosFaultLayer",
    "VectorChaosFaultLayer",
    "MONITOR_ID",
    # engine + assembly
    "ClusterEngine",
    "ExperimentSpec",
    "SimulationBuilder",
]
