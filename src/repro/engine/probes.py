"""The instrumentation bus: typed probes the engine layers publish to.

Every layer of a :class:`~repro.engine.engine.ClusterEngine` — the
kernel-facing drivers, the servers, the control plane, and the fault
layer — reports what happened by publishing a small frozen dataclass
(a *probe event*) onto one :class:`ProbeBus`. Results are no longer
collected ad hoc inside each driver: the canonical
:class:`~repro.engine.record.RunRecord` is itself just a subscriber
(:class:`~repro.engine.record.RunRecorder`), and new observers —
per-round traces, SLA counters, movement logs — attach without
touching the engine.

Probe catalog
-------------
Lifecycle
    :class:`RunStarted`, :class:`RunCompleted`
Client path
    :class:`RequestCompleted` (opt-in, hot), :class:`RequestDropped`,
    :class:`RequestFailed`
Control plane
    :class:`MovesApplied`, :class:`RelocationApplied`,
    :class:`DelegateElected`
Membership & faults
    :class:`ServerFailed`, :class:`ServerRecovered`,
    :class:`FaultInjected`, :class:`FailureDeclared`,
    :class:`RecoveryDeclared`, :class:`InvariantAudit`

Performance contract: publishing an event with no subscriber costs one
dict lookup. The only per-request event, :class:`RequestCompleted`, is
not even *constructed* unless someone subscribed before the engine was
built (or :meth:`ClusterEngine.enable_completion_probe` was called) —
the figure runs therefore pay nothing for the bus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Type

__all__ = [
    "ProbeEvent",
    "RunStarted",
    "RunCompleted",
    "RequestCompleted",
    "RequestDropped",
    "RequestFailed",
    "MovesApplied",
    "RelocationApplied",
    "DelegateElected",
    "ServerFailed",
    "ServerRecovered",
    "FaultInjected",
    "FailureDeclared",
    "RecoveryDeclared",
    "InvariantAudit",
    "ProbeBus",
    "Observer",
    "SLAProbe",
    "RoundTraceProbe",
]


# ---------------------------------------------------------------------- #
# events
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ProbeEvent:
    """Base of every probe event; ``time`` is simulated seconds."""

    time: float


@dataclass(frozen=True)
class RunStarted(ProbeEvent):
    """The engine finished assembly and the calendar is about to run."""

    policy_name: str
    n_servers: int


@dataclass(frozen=True)
class RunCompleted(ProbeEvent):
    """The run reached its horizon."""

    events_processed: int


@dataclass(frozen=True)
class RequestCompleted(ProbeEvent):
    """One metadata request finished service (hot: opt-in only)."""

    server_id: object
    fileset: str
    latency: float


@dataclass(frozen=True)
class RequestDropped(ProbeEvent):
    """The basic client path had no live owner and dropped a request."""

    fileset: str


@dataclass(frozen=True)
class RequestFailed(ProbeEvent):
    """The hardened client path exhausted every retry for a request."""

    fileset: str


@dataclass(frozen=True)
class MovesApplied(ProbeEvent):
    """One reconfiguration (tuning round, failure, or recovery)."""

    round_index: int
    kind: str
    moves: int
    moved_work_share: float


@dataclass(frozen=True)
class RelocationApplied(ProbeEvent):
    """One reconfiguration's resolution work (epoch-delta accounting).

    Complements :class:`MovesApplied`: ``moves`` there counts the
    names that changed owner, ``relocated`` here counts the names the
    policy actually *re-resolved* to find out — the quantity the
    incremental relocation path shrinks. ``mode`` is the policy's
    relocation strategy (``incremental``/``full``/``native``) and
    ``seconds`` the wall-clock the reshuffle cost.
    """

    kind: str
    relocated: int
    catalog_size: int
    seconds: float
    mode: str


@dataclass(frozen=True)
class DelegateElected(ProbeEvent):
    """A delegate took office (``failover`` marks forced re-elections)."""

    delegate_id: object
    failover: bool


@dataclass(frozen=True)
class ServerFailed(ProbeEvent):
    """A server left the data plane (scheduled churn or injected fault)."""

    server_id: object


@dataclass(frozen=True)
class ServerRecovered(ProbeEvent):
    """A server rejoined the data plane."""

    server_id: object


@dataclass(frozen=True)
class FaultInjected(ProbeEvent):
    """The fault layer applied one scheduled fault."""

    kind: str
    target: object


@dataclass(frozen=True)
class FailureDeclared(ProbeEvent):
    """The failure detector declared a peer failed."""

    server_id: object


@dataclass(frozen=True)
class RecoveryDeclared(ProbeEvent):
    """The failure detector un-declared a previously failed peer."""

    server_id: object


@dataclass(frozen=True)
class InvariantAudit(ProbeEvent):
    """One invariant sweep ran (``trigger`` names what caused it)."""

    trigger: str
    violations: int


# ---------------------------------------------------------------------- #
# the bus
# ---------------------------------------------------------------------- #
class ProbeBus:
    """Synchronous typed pub/sub with exact-type dispatch.

    Subscribers are plain callables ``fn(event)``; dispatch is by the
    event's exact class (no subclass fan-out — the catalog is flat by
    design). Subscribing to :class:`ProbeEvent` itself receives *every*
    event, after the exact-type subscribers.
    """

    def __init__(self) -> None:
        self._subs: Dict[Type[ProbeEvent], List[Callable[[ProbeEvent], None]]] = {}
        #: Events published so far, by type name (cheap diagnostics).
        self.published: Dict[str, int] = {}

    def subscribe(
        self, event_type: Type[ProbeEvent], fn: Callable[[ProbeEvent], None]
    ) -> Callable[[ProbeEvent], None]:
        """Register ``fn`` for ``event_type``; returns ``fn`` (for unsubscribe)."""
        if not (isinstance(event_type, type) and issubclass(event_type, ProbeEvent)):
            raise TypeError(f"not a probe event type: {event_type!r}")
        self._subs.setdefault(event_type, []).append(fn)
        return fn

    def unsubscribe(
        self, event_type: Type[ProbeEvent], fn: Callable[[ProbeEvent], None]
    ) -> None:
        """Remove one registration (no-op if absent)."""
        subs = self._subs.get(event_type)
        if subs and fn in subs:
            subs.remove(fn)

    def wants(self, event_type: Type[ProbeEvent]) -> bool:
        """``True`` if anyone subscribed to ``event_type`` (or to all)."""
        return bool(self._subs.get(event_type)) or bool(self._subs.get(ProbeEvent))

    def publish(self, event: ProbeEvent) -> None:
        """Deliver ``event`` to its exact-type and wildcard subscribers."""
        cls = type(event)
        self.published[cls.__name__] = self.published.get(cls.__name__, 0) + 1
        subs = self._subs.get(cls)
        if subs:
            for fn in subs:
                fn(event)
        wildcard = self._subs.get(ProbeEvent)
        if wildcard:
            for fn in wildcard:
                fn(event)


class Observer:
    """Base class for bundled subscribers.

    Subclasses declare :attr:`subscriptions` — a mapping of event type
    to bound-method *name* — and :meth:`attach` wires them onto a bus.
    """

    #: event type -> handler method name
    subscriptions: Dict[Type[ProbeEvent], str] = {}

    def attach(self, bus: ProbeBus) -> "Observer":
        """Subscribe every declared handler; returns ``self``."""
        for event_type, method_name in self.subscriptions.items():
            bus.subscribe(event_type, getattr(self, method_name))
        return self


# ---------------------------------------------------------------------- #
# bundled observers
# ---------------------------------------------------------------------- #
@dataclass
class SLAProbe(Observer):
    """Counts SLA attainment online from :class:`RequestCompleted`.

    The per-server view restates the paper's consistency argument
    operationally: a cluster is consistent when every busy server
    attains the SLA, not just the average (§5.2.2). Requires the
    completion probe (attach via the builder, or call
    ``engine.enable_completion_probe()``).
    """

    latency_target: float = 5.0
    total: int = 0
    within: int = 0
    per_server: Dict[object, Tuple[int, int]] = field(default_factory=dict)

    subscriptions = {}  # set below (forward reference to the dataclass)

    def on_completed(self, event: RequestCompleted) -> None:
        ok = event.latency <= self.latency_target
        self.total += 1
        self.within += ok
        within, total = self.per_server.get(event.server_id, (0, 0))
        self.per_server[event.server_id] = (within + ok, total + 1)

    @property
    def attainment(self) -> float:
        """Fraction of completed requests at or under the target."""
        return self.within / self.total if self.total else float("nan")

    def server_attainment(self, server_id: object) -> float:
        """Attainment over requests served by one server."""
        within, total = self.per_server.get(server_id, (0, 0))
        return within / total if total else float("nan")


SLAProbe.subscriptions = {RequestCompleted: "on_completed"}


@dataclass
class RoundTraceProbe(Observer):
    """Per-reconfiguration trace rows (time, kind, moves, share).

    A movement log that attaches without touching the engine — the
    Figure 7 data as a live subscriber instead of a post-hoc scan.
    """

    rows: List[Tuple[float, int, str, int, float]] = field(default_factory=list)

    subscriptions = {}

    def on_moves(self, event: MovesApplied) -> None:
        self.rows.append(
            (event.time, event.round_index, event.kind, event.moves, event.moved_work_share)
        )

    def total_moves(self, kind: Optional[str] = None) -> int:
        """Moves across recorded reconfigurations (optionally one kind)."""
        return sum(r[3] for r in self.rows if kind is None or r[2] == kind)


RoundTraceProbe.subscriptions = {MovesApplied: "on_moves"}
