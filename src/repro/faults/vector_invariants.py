"""Array-native invariant sweeps for the vectorized chaos path.

The scalar :class:`~repro.faults.invariants.InvariantChecker` audits a
live :class:`~repro.core.anu.ANUManager` and a hardened client's
ledger. The vectorized path has neither — its state *is* the arrays:
an assignment vector, an alive/admitted mask pair, pending completion
chunks, and an orphan pool. :class:`VectorInvariantChecker` asserts
the same guarantees over that representation:

``request-conservation``
    Every routed request is exactly one of: flushed (completed),
    pending (queued, completion computed), orphaned (awaiting
    re-location after a crash), or — at the horizon only — discarded
    (still queued at the deadline). Nothing is lost or duplicated.
``no-lost-moments``
    The per-server streaming moment accumulators saw exactly the
    flushed requests: ``Σ completed_requests == flushed count``.
``assignment-respects-masks``
    No file set is assigned to a slot the layout evicted
    (``admitted`` false) — the vector analogue of the scalar
    ``orphaned-fileset`` invariant.
``layout-covers-alive-set`` (ANU only)
    The interval layout's membership equals the admitted-slot set, and
    the mapped measure still sums to exactly one half — the paper's
    half-occupancy guarantee survives churn.

Violations raise :class:`~repro.faults.invariants.ChaosInvariantError`
carrying the same replayable ``(seed, schedule)``
:class:`~repro.faults.invariants.ReplayArtifact` the scalar harness
ships, so a failing planet-scale run replays from one integer.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from ..core.interval import HALF
from .invariants import ChaosInvariantError, ReplayArtifact
from .schedule import FaultSchedule

__all__ = ["VectorInvariantChecker"]

#: Tolerance on the half-occupancy sum (matches the scalar checker).
_HALF_TOL = 1e-6


class VectorInvariantChecker:
    """Continuously audits the vectorized driver's array state.

    Parameters
    ----------
    driver:
        The :class:`~repro.engine.vector_driver.VectorizedRequestDriver`
        being audited (its chaos-mode counters and buffers).
    policy:
        The placement policy; ANU-specific layout checks run only when
        it exposes a ``layout``.
    admitted:
        ``() -> np.ndarray`` boolean mask of layout-member slots.
    server_ids:
        Driver slot order (slot index → server id).
    seed / schedule:
        Replay context embedded into every violation artifact.
    now:
        ``() -> float`` simulated clock for artifact timestamps.
    """

    def __init__(
        self,
        driver,
        policy,
        admitted: Callable[[], np.ndarray],
        server_ids,
        seed: Optional[int] = None,
        schedule: Optional[FaultSchedule] = None,
        now: Optional[Callable[[], float]] = None,
    ) -> None:
        self.driver = driver
        self.policy = policy
        self.admitted = admitted
        self.server_ids = list(server_ids)
        self.seed = seed
        self.schedule = schedule
        self.now = now or (lambda: 0.0)
        self.checks = 0
        self.violations: List[ReplayArtifact] = []

    # ------------------------------------------------------------------ #
    def check(self, trigger: str = "periodic", final: bool = False) -> None:
        """Run one full sweep; raises on the first violation."""
        self.checks += 1
        self._check_conservation(trigger, final)
        self._check_moments(trigger)
        self._check_assignment(trigger)
        self._check_layout(trigger)

    # ------------------------------------------------------------------ #
    def _fail(self, invariant: str, detail: str) -> None:
        artifact = ReplayArtifact(
            seed=self.seed,
            schedule=self.schedule,
            time=float(self.now()),
            invariant=invariant,
            detail=detail,
        )
        self.violations.append(artifact)
        raise ChaosInvariantError(
            f"invariant {invariant!r} violated at t={artifact.time:.3f}: {detail} "
            f"(replay with seed={self.seed})",
            artifact,
        )

    def _check_conservation(self, trigger: str, final: bool) -> None:
        d = self.driver
        flushed = sum(chunk.size for chunk in d._flushed)
        pending = sum(chunk[0].size for chunk in d._pending)
        orphaned = d.orphan_count()
        discarded = d._discarded
        balance = flushed + pending + orphaned + discarded
        if d._submitted != balance:
            self._fail(
                "request-conservation",
                f"[{trigger}] submitted={d._submitted} != flushed={flushed}"
                f" + pending={pending} + orphaned={orphaned}"
                f" + discarded={discarded}",
            )
        if final and pending:
            self._fail(
                "request-conservation",
                f"[{trigger}] {pending} pending completions survive the "
                "final flush",
            )

    def _check_moments(self, trigger: str) -> None:
        d = self.driver
        flushed = sum(chunk.size for chunk in d._flushed)
        landed = sum(s.completed_requests for s in d._servers)
        if flushed != landed:
            self._fail(
                "no-lost-moments",
                f"[{trigger}] flushed={flushed} != per-server "
                f"completed_requests sum={landed}",
            )

    def _check_assignment(self, trigger: str) -> None:
        admitted = self.admitted()
        if admitted.all():
            return
        assign = np.asarray(self.driver._assignment())
        bad = np.flatnonzero(~admitted[assign])
        if bad.size:
            slot = int(assign[bad[0]])
            self._fail(
                "assignment-respects-masks",
                f"[{trigger}] {bad.size} file sets assigned to evicted "
                f"slot {slot} ({self.server_ids[slot]!r})",
            )

    def _check_layout(self, trigger: str) -> None:
        layout = getattr(self.policy, "layout", None)
        if layout is None:
            return  # non-interval policies have no layout to audit
        admitted = self.admitted()
        member_slots = {
            i for i, sid in enumerate(self.server_ids)
            if sid in set(layout.server_ids)
        }
        admitted_slots = set(np.flatnonzero(admitted).tolist())
        if member_slots != admitted_slots:
            self._fail(
                "layout-covers-alive-set",
                f"[{trigger}] layout members {sorted(member_slots)} != "
                f"admitted slots {sorted(admitted_slots)}",
            )
        total = layout.total_mapped
        if abs(total - HALF) > _HALF_TOL:
            self._fail(
                "half-occupancy",
                f"[{trigger}] mapped measure {total:.9f} != {HALF}",
            )
