"""The chaos harness entry point (and the legacy shim).

The harness itself is now a layer composition:
:class:`~repro.engine.control.DistributedControlPlane` (seeded
network) + :class:`~repro.engine.client_path.HardenedClientPath`
(seeded jitter) + :class:`~repro.engine.fault_layer.ChaosFaultLayer`
(heartbeat detection, fault injection, continuous invariant auditing),
assembled by ``SimulationBuilder(...).chaos(schedule, chaos)``. The
result/record types live in :mod:`repro.engine.record` and are
re-exported here.

This module keeps :class:`ChaosClusterSimulation` as a thin deprecated
subclass wiring those layers exactly as before — everything stochastic
still derives from ``ChaosConfig.seed``, so a run remains a pure
function of ``(workload, config, schedule, chaos)`` and replays
bit-identically. :func:`chaos_fingerprint` is the equality the
determinism and golden-equivalence tests assert.

Migration::

    # before
    result = ChaosClusterSimulation(wl, policy, cfg, schedule, chaos).run_chaos()
    # after
    result = SimulationBuilder(wl, policy, cfg).chaos(schedule, chaos).run()
"""

from __future__ import annotations

import hashlib
import random
import warnings
from typing import Optional, TYPE_CHECKING

from ..cluster.distributed_cluster import DistributedClusterSimulation
from ..engine.client_path import HardenedClientPath
from ..engine.control import DistributedControlPlane
from ..engine.engine import ClusterEngine
from ..engine.fault_layer import MONITOR_ID, ChaosFaultLayer
from ..engine.record import (
    ChaosConfig,
    ChaosResult,
    ClusterConfig,
    FailureRecord,
    derive_seed as _derive_seed,
)
from ..policies.anu import ANURandomization
from .schedule import FaultSchedule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..workloads.synthetic import Workload

__all__ = [
    "ChaosConfig",
    "FailureRecord",
    "ChaosResult",
    "ChaosClusterSimulation",
    "chaos_fingerprint",
    "MONITOR_ID",
]


class ChaosClusterSimulation(DistributedClusterSimulation):
    """Deprecated: use ``SimulationBuilder(...).chaos(schedule, chaos)``.

    Parameters
    ----------
    workload, policy, config:
        As for the engine (``policy`` must be :class:`ANURandomization`).
    schedule:
        The fault script to execute.
    chaos:
        Harness configuration; its ``seed`` drives every random draw
        (link faults, backoff jitter).
    """

    def __init__(
        self,
        workload: "Workload",
        policy: ANURandomization,
        config: ClusterConfig,
        schedule: Optional[FaultSchedule] = None,
        chaos: Optional[ChaosConfig] = None,
    ) -> None:
        if type(self) is ChaosClusterSimulation:
            warnings.warn(
                "ChaosClusterSimulation is deprecated; use "
                "repro.engine.SimulationBuilder(...).chaos(schedule, chaos)",
                DeprecationWarning,
                stacklevel=2,
            )
        if not isinstance(policy, ANURandomization):
            raise TypeError(
                "the distributed control plane drives ANU; got "
                f"{type(policy).__name__}"
            )
        chaos = chaos or ChaosConfig()
        ClusterEngine.__init__(
            self,
            workload,
            policy,
            config,
            control=DistributedControlPlane(
                network_rng=random.Random(_derive_seed(chaos.seed, "network"))
            ),
            client_path=HardenedClientPath(
                retry=chaos.retry,
                rng=random.Random(_derive_seed(chaos.seed, "client")),
            ),
            faults=ChaosFaultLayer(
                schedule=schedule or FaultSchedule(), chaos=chaos
            ),
        )


def chaos_fingerprint(result: ChaosResult) -> str:
    """Canonical digest of a chaos run (bit-reproducibility equality).

    Covers the base cluster result (per-request latencies, series,
    movement log) plus every robustness observable: the applied fault
    log, failure timelines, client ledger, and detector activity.
    """
    from ..experiments.cache import result_fingerprint  # late: avoid cycle

    h = hashlib.sha256()

    def put(*parts: object) -> None:
        for part in parts:
            h.update(repr(part).encode("utf-8"))
            h.update(b"\x00")

    put("chaos", result.seed, result.schedule.to_json())
    put(result_fingerprint(result.base))
    put(
        result.faults_injected,
        result.faults_skipped,
        result.applied,
        result.requests_injected,
        result.requests_completed,
        result.requests_failed,
        result.requests_in_flight,
        result.retries,
        result.redirects,
        result.timeouts,
        result.failure_declarations,
        result.recovery_declarations,
        result.invariant_checks,
        result.invariant_violations,
    )
    for rec in result.failures:
        put("failure", rec.server_id, rec.kind, rec.t_fault, rec.t_detect, rec.t_heal, rec.t_readmit)
    return h.hexdigest()
