"""The chaos harness: a fault-injected, continuously-audited cluster run.

:class:`ChaosClusterSimulation` composes every robustness layer into
one experiment:

* the message-level control plane of
  :class:`~repro.cluster.distributed_cluster.DistributedClusterSimulation`
  (elected delegate, mapping broadcasts, fail-over);
* a seeded, fault-capable :class:`~repro.distributed.network.Network`
  (partitions, drop/delay/duplication);
* a :class:`~repro.distributed.heartbeat.HeartbeatMonitor` with
  recovery hysteresis — failures are *detected*, not announced: a
  crashed server leaves the layout only after the detector declares it,
  which is what makes detection latency a measurable quantity;
* the :class:`~repro.cluster.client.HardenedClient` request path
  (timeout, capped backoff with seeded jitter, re-locate-and-redirect);
* a :class:`~repro.faults.injector.FaultInjector` executing the
  ``(seed, schedule)`` fault script; and
* an :class:`~repro.faults.invariants.InvariantChecker` hooked into
  every reconfiguration plus a periodic sweep.

Everything stochastic derives from ``ChaosConfig.seed``, so a run is a
pure function of ``(workload, config, schedule, chaos)`` and replays
bit-identically — :func:`chaos_fingerprint` is the equality the
determinism tests assert.
"""

from __future__ import annotations

import hashlib
import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from ..cluster.client import HardenedClient, HardenedRequestDriver, RetryPolicy
from ..cluster.cluster import ClusterConfig, ClusterResult
from ..cluster.distributed_cluster import DistributedClusterSimulation
from ..distributed.heartbeat import HeartbeatMonitor
from ..distributed.network import Network
from ..policies.anu import ANURandomization
from ..policies.base import Move
from .injector import FaultInjector
from .invariants import InvariantChecker
from .schedule import FaultSchedule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..workloads.synthetic import Workload

__all__ = [
    "ChaosConfig",
    "FailureRecord",
    "ChaosResult",
    "ChaosClusterSimulation",
    "chaos_fingerprint",
]

#: Observer node id used by the chaos heartbeat monitor.
MONITOR_ID = "chaos-monitor"


def _derive_seed(seed: int, name: str) -> int:
    """Stable integer sub-seed (independent of PYTHONHASHSEED)."""
    return (int(seed) * 2654435761 + zlib.crc32(name.encode("utf-8"))) % (2**63)


@dataclass(frozen=True)
class ChaosConfig:
    """Knobs of the chaos harness (all defaults deterministic)."""

    seed: int = 1
    heartbeat_period: float = 2.0
    heartbeat_misses: int = 3
    heartbeat_recoveries: int = 2
    #: Cadence of the periodic (non-reconfiguration) invariant sweep.
    invariant_interval: float = 10.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    @property
    def detection_latency_bound(self) -> float:
        """Worst-case crash → declaration latency of the detector."""
        return self.heartbeat_period * (self.heartbeat_misses + 1)


@dataclass
class FailureRecord:
    """Timeline of one server crash (or partition suspicion)."""

    server_id: object
    kind: str  # "crash" or "suspect"
    t_fault: float
    #: Detector declaration instant (None if healed unnoticed).
    t_detect: Optional[float] = None
    #: Instant the underlying fault was lifted (network/link restored).
    t_heal: Optional[float] = None
    #: Instant the server was re-admitted to the layout (or directly
    #: recovered, for undetected blips).
    t_readmit: Optional[float] = None

    def detection_latency(self) -> Optional[float]:
        """Crash → declaration delay (None if never detected)."""
        if self.t_detect is None:
            return None
        return self.t_detect - self.t_fault

    def unavailable_until(self, horizon: float) -> float:
        """End of this record's unavailability window, capped at horizon."""
        return min(horizon, self.t_readmit if self.t_readmit is not None else horizon)


@dataclass
class ChaosResult:
    """Everything a chaos run measured, robustness metrics included."""

    base: ClusterResult
    seed: int
    schedule: FaultSchedule
    detection_latency_bound: float
    #: Faults applied / skipped by the injector.
    faults_injected: int
    faults_skipped: int
    applied: List[tuple]
    failures: List[FailureRecord]
    #: Client-side hardening ledger.
    requests_injected: int
    requests_completed: int
    requests_failed: int
    requests_in_flight: int
    retries: int
    redirects: int
    timeouts: int
    #: Detector activity.
    failure_declarations: int
    recovery_declarations: int
    #: Invariant sweeps performed / violations caught.
    invariant_checks: int
    invariant_violations: int

    # ------------------------------------------------------------------ #
    @property
    def detection_latencies(self) -> List[float]:
        """Observed crash → declaration delays."""
        return [
            lat
            for rec in self.failures
            if (lat := rec.detection_latency()) is not None
        ]

    @property
    def retries_per_request(self) -> float:
        """Mean retries per injected logical request."""
        return self.retries / self.requests_injected if self.requests_injected else 0.0

    @property
    def failed_request_share(self) -> float:
        """Fraction of logical requests abandoned after all retries."""
        return self.requests_failed / self.requests_injected if self.requests_injected else 0.0

    @property
    def server_downtime(self) -> float:
        """Total server-seconds of unavailability (fault → readmission)."""
        horizon = self.base.duration
        return sum(
            max(0.0, rec.unavailable_until(horizon) - rec.t_fault)
            for rec in self.failures
        )

    @property
    def unavailability(self) -> float:
        """Downtime share of total server-time (server-seconds basis)."""
        horizon = self.base.duration
        n = len(self.base.server_tally)
        return self.server_downtime / (horizon * n) if horizon and n else 0.0


class ChaosClusterSimulation(DistributedClusterSimulation):
    """ANU cluster run under a deterministic fault schedule.

    Parameters
    ----------
    workload, policy, config:
        As for :class:`DistributedClusterSimulation` (``policy`` must
        be :class:`ANURandomization`).
    schedule:
        The fault script to execute.
    chaos:
        Harness configuration; its ``seed`` drives every random draw
        (link faults, backoff jitter).
    """

    def __init__(
        self,
        workload: "Workload",
        policy: ANURandomization,
        config: ClusterConfig,
        schedule: Optional[FaultSchedule] = None,
        chaos: Optional[ChaosConfig] = None,
    ) -> None:
        self.chaos = chaos or ChaosConfig()
        self.schedule = schedule or FaultSchedule()
        self._network_rng = random.Random(_derive_seed(self.chaos.seed, "network"))
        self._client_rng = random.Random(_derive_seed(self.chaos.seed, "client"))
        self.monitor: Optional[HeartbeatMonitor] = None
        self.client: Optional[HardenedClient] = None
        #: Crash/suspect timelines, in fault order.
        self.failures: List[FailureRecord] = []
        self._open_records: Dict[object, FailureRecord] = {}
        super().__init__(workload, policy, config, delegate_crashes=None)
        self.network.register(MONITOR_ID)
        self.monitor = HeartbeatMonitor(
            self.env,
            self.network,
            MONITOR_ID,
            peers=list(self.servers),
            period=self.chaos.heartbeat_period,
            misses=self.chaos.heartbeat_misses,
            recoveries=self.chaos.heartbeat_recoveries,
            on_failure=self._on_peer_failure,
            on_recovery=self._on_peer_recovery,
        )
        self.checker = InvariantChecker(
            policy.manager,
            client=self.client,
            delegates=lambda: [self.service.delegate_id],
            seed=self.chaos.seed,
            schedule=self.schedule,
            now=lambda: self.env.now,
        )
        self.injector = FaultInjector(self.env, self, self.schedule)
        self._auditor = self.env.process(self._invariant_loop())

    # ------------------------------------------------------------------ #
    # construction hooks
    # ------------------------------------------------------------------ #
    def _make_network(self) -> Network:
        return Network(self.env, rng=self._network_rng)

    def _make_driver(self):
        self.client = HardenedClient(
            self.env,
            self._route,
            policy=self.chaos.retry,
            rng=self._client_rng,
            suspected=lambda: self.monitor.suspected if self.monitor is not None else set(),
        )
        return HardenedRequestDriver(self.env, self.workload.requests, self.client)

    # ------------------------------------------------------------------ #
    # injection surface (used by FaultInjector)
    # ------------------------------------------------------------------ #
    def current_delegate(self) -> object:
        """Whoever holds the delegate office right now."""
        return self.service.delegate_id

    def crash_server(self, server_id: object) -> bool:
        """Crash a server (data + control plane); ``False`` if skipped."""
        server = self.servers.get(server_id)
        if server is None or server.failed:
            return False
        live = sum(1 for s in self.servers.values() if not s.failed)
        if live <= 2:
            # Never crash the cluster below two live servers: elections
            # and the half-occupancy story need a survivor pair.
            return False
        server.fail()  # orphaned queue entries are re-driven by the client
        self.network.set_down(server_id, True)
        record = FailureRecord(server_id, "crash", t_fault=self.env.now)
        self.failures.append(record)
        self._open_records[server_id] = record
        return True

    def heal_server(self, server_id: object) -> None:
        """Lift the crash: restore the link; recovery is then *detected*."""
        self.network.set_down(server_id, False)
        record = self._open_records.get(server_id)
        if record is not None:
            record.t_heal = self.env.now
        server = self.servers.get(server_id)
        if (
            server is not None
            and server.failed
            and self.monitor is not None
            and server_id not in self.monitor.suspected
        ):
            # The blip healed before the detector declared it: the layout
            # never changed, so the server simply reboots in place.
            server.recover()
            if record is not None:
                record.t_readmit = self.env.now
                self._open_records.pop(server_id, None)

    def apply_partition(self, nodes) -> None:
        """Isolate ``nodes`` from the rest of the control plane."""
        self.network.set_partition(list(nodes))
        for sid in nodes:
            if sid in self.servers and sid not in self._open_records:
                record = FailureRecord(sid, "suspect", t_fault=self.env.now)
                self.failures.append(record)
                self._open_records[sid] = record

    def heal_partition(self) -> None:
        """Reconnect all partition groups."""
        self.network.heal_partition()
        suspected = self.monitor.suspected if self.monitor is not None else set()
        for sid, record in list(self._open_records.items()):
            if record.kind != "suspect":
                continue
            if record.t_heal is None:
                record.t_heal = self.env.now
            if record.t_detect is None and sid not in suspected:
                # The partition healed before the detector declared it:
                # the layout never changed, nothing to re-admit.
                record.t_readmit = self.env.now
                self._open_records.pop(sid, None)

    def apply_straggle(self, server_id: object, factor: float) -> bool:
        """Degrade a server's power; ``False`` if it is down/degraded."""
        server = self.servers.get(server_id)
        if server is None or server.failed or server.degraded:
            return False
        server.set_power_factor(factor)
        return True

    def heal_straggle(self, server_id: object) -> None:
        """Restore a straggler to nominal power."""
        server = self.servers.get(server_id)
        if server is not None:
            server.set_power_factor(1.0)

    def apply_link_faults(self, drop: float, dup: float, extra_delay: float) -> None:
        """Turn on probabilistic message faults."""
        self.network.set_link_faults(drop, dup, extra_delay)

    def heal_link_faults(self) -> None:
        """Turn off probabilistic message faults."""
        self.network.clear_link_faults()

    # ------------------------------------------------------------------ #
    # detector callbacks
    # ------------------------------------------------------------------ #
    def _on_peer_failure(self, server_id: object) -> None:
        now = self.env.now
        record = self._open_records.get(server_id)
        if record is not None and record.t_detect is None:
            record.t_detect = now
        manager = self.policy.manager
        if server_id in manager.layout.server_ids and manager.layout.n_servers > 1:
            moves = self.policy.server_failed(server_id)
            self._apply_moves(moves, kind="fail")

    def _on_peer_recovery(self, server_id: object) -> None:
        now = self.env.now
        server = self.servers.get(server_id)
        if server is not None and server.failed:
            server.recover()
        manager = self.policy.manager
        if server_id not in manager.layout.server_ids:
            moves = self.policy.server_added(
                server_id, power_hint=server.base_power if server else None
            )
            self._apply_moves(moves, kind="recover")
        record = self._open_records.pop(server_id, None)
        if record is not None:
            record.t_readmit = now

    # ------------------------------------------------------------------ #
    def _invariant_loop(self):
        while True:
            yield self.env.timeout(self.chaos.invariant_interval)
            self.checker.check("periodic")

    # ------------------------------------------------------------------ #
    def run_chaos(self, until: Optional[float] = None) -> ChaosResult:
        """Execute the run and collect the robustness result."""
        base = self.run(until)
        # A final full sweep at the horizon (fail-fast if the end state
        # is inconsistent).
        self.checker.check("final")
        client = self.client
        return ChaosResult(
            base=base,
            seed=self.chaos.seed,
            schedule=self.schedule,
            detection_latency_bound=self.chaos.detection_latency_bound,
            faults_injected=self.injector.injected,
            faults_skipped=self.injector.skipped,
            applied=list(self.injector.applied),
            failures=list(self.failures),
            requests_injected=client.injected,
            requests_completed=client.completed,
            requests_failed=client.failed,
            requests_in_flight=client.in_flight,
            retries=client.retries,
            redirects=client.redirects,
            timeouts=client.timeouts,
            failure_declarations=self.monitor.failure_declarations,
            recovery_declarations=self.monitor.recovery_declarations,
            invariant_checks=self.checker.checks,
            invariant_violations=len(self.checker.violations),
        )


def chaos_fingerprint(result: ChaosResult) -> str:
    """Canonical digest of a chaos run (bit-reproducibility equality).

    Covers the base cluster result (per-request latencies, series,
    movement log) plus every robustness observable: the applied fault
    log, failure timelines, client ledger, and detector activity.
    """
    from ..experiments.cache import result_fingerprint  # late: avoid cycle

    h = hashlib.sha256()

    def put(*parts: object) -> None:
        for part in parts:
            h.update(repr(part).encode("utf-8"))
            h.update(b"\x00")

    put("chaos", result.seed, result.schedule.to_json())
    put(result_fingerprint(result.base))
    put(
        result.faults_injected,
        result.faults_skipped,
        result.applied,
        result.requests_injected,
        result.requests_completed,
        result.requests_failed,
        result.requests_in_flight,
        result.retries,
        result.redirects,
        result.timeouts,
        result.failure_declarations,
        result.recovery_declarations,
        result.invariant_checks,
        result.invariant_violations,
    )
    for rec in result.failures:
        put("failure", rec.server_id, rec.kind, rec.t_fault, rec.t_detect, rec.t_heal, rec.t_readmit)
    return h.hexdigest()
