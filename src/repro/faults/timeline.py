"""Compiling a fault schedule into a deterministic event timeline.

The scalar chaos harness executes a :class:`~repro.faults.schedule.FaultSchedule`
*reactively*: the injector fires faults into a live simulator, the
heartbeat monitor detects them some messages later, and the detection
instant emerges from the message interleaving. The vectorized path has
no message network — so :func:`compile_timeline` computes the entire
cause-and-effect chain up front, as a pure function of
``(schedule, chaos, server_ids, duration)``:

* **Guards replay exactly.** The scalar injector's skip rules (never
  crash a crashed server, never go below two live servers, never
  straggle a degraded server) depend only on prior faults, so they are
  evaluated during compilation with a replayed membership state.
* **Detection is analytic.** The heartbeat monitor declares a failure
  after ``misses`` consecutive silent periods on its fixed grid:
  a crash at ``t`` is declared at ``(floor(t/period) + misses) ×
  period`` — strictly inside the scalar monitor's analytic bound
  ``period × (misses + 1)``. Recovery re-admission follows the same
  grid with ``recoveries`` confirmations. A fault healed at or before
  its declaration instant is an *undetected blip*: the layout never
  changes and the server reboots in place, exactly the scalar
  semantics.
* **Delegate kills resolve at compile time** to the lowest-indexed
  live, unsuspected server — the deterministic stand-in for the
  election order the vector path does not simulate.
* **Link faults are out of scope** (there are no messages to drop);
  they compile to skips and are counted so the ledger still reconciles
  against the schedule.

The output :class:`ChaosTimeline` carries the ordered
:class:`TimelineEvent` list the vectorized driver replays between
cohort drains, plus fully-resolved :class:`FailureRecord` timelines —
detection latency, heal and re-admission instants are all known before
the run starts, which is what makes the vector chaos fingerprint a
pure function of the seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..engine.record import ChaosConfig, FailureRecord
from .schedule import FaultKind, FaultSchedule

__all__ = ["TimelineEvent", "ChaosTimeline", "compile_timeline"]

#: Actions a compiled timeline event can carry, in the order the driver
#: applies them when several land on the same instant (compile order
#: breaks ties, which follows the schedule's canonical sort).
ACTIONS = (
    "crash",        # server leaves the data plane; queue orphaned
    "detect",       # detector declares the crash; layout evicts
    "readmit",      # detector confirms recovery; layout re-admits
    "reboot",       # undetected blip heals in place; no layout change
    "part-detect",  # partition suspicion declared; layout evicts
    "part-readmit", # partition healed + confirmed; layout re-admits
    "straggle-on",  # service-rate multiplier applied
    "straggle-off", # service-rate restored
)


@dataclass(frozen=True)
class TimelineEvent:
    """One state transition the vectorized driver applies mid-run."""

    time: float
    action: str
    slot: int
    server_id: object
    #: Straggle events carry the power multiplier; 1.0 otherwise.
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(f"unknown timeline action {self.action!r}")


@dataclass
class ChaosTimeline:
    """A fault schedule, fully resolved against a fixed server order."""

    events: List[TimelineEvent] = field(default_factory=list)
    #: ``(time, kind, victim)`` per applied fault — the scalar
    #: injector's ``applied`` log, reproduced.
    applied: List[Tuple[float, str, object]] = field(default_factory=list)
    #: Faults whose guard failed at (compile-replayed) fire time.
    skipped: int = 0
    #: Link-fault windows skipped because the path has no messages
    #: (included in ``skipped``; kept separately for the docs/tests).
    link_faults_skipped: int = 0
    #: Crash/suspect timelines with every instant resolved.
    failures: List[FailureRecord] = field(default_factory=list)

    @property
    def injected(self) -> int:
        """Faults applied (mirror of the scalar injector counter)."""
        return len(self.applied)


def _grid_declare(t: float, period: float, count: int) -> float:
    """Instant the detector's fixed heartbeat grid declares an event.

    The first heartbeat at or before ``t`` still succeeded; declaration
    lands ``count`` grid periods later.
    """
    return (math.floor(t / period) + count) * period


def compile_timeline(
    schedule: FaultSchedule,
    chaos: ChaosConfig,
    server_ids: Sequence[object],
    duration: float,
) -> ChaosTimeline:
    """Resolve ``schedule`` into an ordered, guard-checked event list.

    Pure in its arguments: the same ``(schedule, chaos, server order,
    duration)`` always compiles to the identical timeline, which the
    determinism tests assert via the chaos fingerprint.
    """
    period = chaos.heartbeat_period
    misses = chaos.heartbeat_misses
    recoveries = chaos.heartbeat_recoveries
    slot_of: Dict[object, int] = {sid: i for i, sid in enumerate(server_ids)}
    n = len(server_ids)
    # Replayed membership state, advanced lazily to each fault's time.
    failed = [False] * n
    suspected = [False] * n
    degraded = [False] * n
    #: Pending state-clear instants: (time, field-list, slot).
    clears: List[Tuple[float, List[bool], int]] = []
    timeline = ChaosTimeline()

    def settle(upto: float) -> None:
        nonlocal clears
        due = [c for c in clears if c[0] <= upto]
        if due:
            clears = [c for c in clears if c[0] > upto]
            for _, flags, s in due:
                flags[s] = False

    def emit(time: float, action: str, s: int, factor: float = 1.0) -> None:
        timeline.events.append(
            TimelineEvent(
                time=time, action=action, slot=s,
                server_id=server_ids[s], factor=factor,
            )
        )

    def compile_outage(
        t: float, t_heal: float, s: int, kind: str,
        on_crash: Optional[str], on_detect: str, on_readmit: str,
    ) -> None:
        """Shared crash/partition resolution: detect → evict → readmit."""
        record = FailureRecord(server_ids[s], kind, t_fault=t)
        timeline.failures.append(record)
        if on_crash is not None:
            emit(t, on_crash, s)
        t_detect = _grid_declare(t, period, misses)
        flags = failed if kind == "crash" else suspected
        flags[s] = True
        if t_heal <= t_detect or t_detect > duration:
            # Undetected blip: healed before (or declared after) the
            # horizon of anyone noticing — the layout never changes.
            if t_heal <= duration:
                record.t_heal = t_heal
                record.t_readmit = t_heal
                if on_crash is not None:
                    emit(t_heal, "reboot", s)
                clears.append((t_heal, flags, s))
            return
        record.t_detect = t_detect
        emit(t_detect, on_detect, s)
        if t_heal > duration:
            return  # down for the rest of the run
        record.t_heal = t_heal
        t_readmit = _grid_declare(t_heal, period, recoveries)
        if t_readmit > duration:
            return  # healed but never confirmed before the horizon
        record.t_readmit = t_readmit
        emit(t_readmit, on_readmit, s)
        clears.append((t_readmit, flags, s))

    for event in schedule:
        t = event.time
        if t >= duration:
            timeline.skipped += 1
            continue
        settle(t)
        kind = event.kind
        if kind in (FaultKind.CRASH, FaultKind.DELEGATE_CRASH):
            if kind == FaultKind.DELEGATE_CRASH:
                # The office falls to the lowest live, unsuspected slot
                # (deterministic stand-in for the election order).
                candidates = [
                    s for s in range(n) if not failed[s] and not suspected[s]
                ] or [s for s in range(n) if not failed[s]]
                if not candidates:
                    timeline.skipped += 1
                    continue
                s = candidates[0]
            else:
                s = slot_of.get(event.target)
            live = n - sum(failed)
            if s is None or failed[s] or live <= 2:
                # Same guard as the scalar injector: never crash a dead
                # server, never drop below a live survivor pair.
                timeline.skipped += 1
                continue
            timeline.applied.append((t, kind, server_ids[s]))
            compile_outage(
                t, t + event.duration, s, "crash",
                on_crash="crash", on_detect="detect", on_readmit="readmit",
            )
        elif kind == FaultKind.PARTITION:
            nodes = tuple(event.target or ())
            known = [slot_of[sid] for sid in nodes if sid in slot_of]
            if not known:
                timeline.skipped += 1
                continue
            timeline.applied.append((t, kind, nodes))
            for s in known:
                if failed[s] or suspected[s]:
                    # Scalar parity: no new suspect record while the
                    # server already has an open failure record.
                    continue
                # A partition isolates the control plane only — the
                # server keeps draining its queue; the detector evicts
                # it from the layout until the partition heals.
                compile_outage(
                    t, t + event.duration, s, "suspect",
                    on_crash=None,
                    on_detect="part-detect", on_readmit="part-readmit",
                )
        elif kind == FaultKind.STRAGGLE:
            s = slot_of.get(event.target)
            if s is None or failed[s] or degraded[s]:
                timeline.skipped += 1
                continue
            factor = event.params[0] if event.params else 0.25
            timeline.applied.append((t, kind, server_ids[s]))
            degraded[s] = True
            emit(t, "straggle-on", s, factor=factor)
            t_off = t + event.duration
            clears.append((t_off, degraded, s))
            if t_off <= duration:
                emit(t_off, "straggle-off", s)
        elif kind == FaultKind.LINK_FAULTS:
            # No message network on the vectorized path: nothing to
            # drop, duplicate, or delay. Counted, never silently lost.
            timeline.skipped += 1
            timeline.link_faults_skipped += 1
        else:  # pragma: no cover - schedule validation forbids this
            raise ValueError(f"unknown fault kind {kind!r}")

    timeline.events.sort(key=lambda e: e.time)
    return timeline
