"""Fault schedules: scripted or seeded-random, always replayable.

A :class:`FaultSchedule` is a time-ordered list of :class:`FaultEvent`
records — the *entire* description of what the chaos harness will do
to a run. Schedules are plain data: JSON-serializable, hashable by
content, and comparable, so a failing run can ship its ``(seed,
schedule)`` pair as a replay artifact and any later session can
re-execute the identical run.

:func:`random_schedule` draws a schedule from a seeded stream (via
:class:`repro.sim.StreamRegistry`), so ``(seed, fault_rate)`` →
schedule is a pure function: the randomized sweeps are exactly as
replayable as the scripted ones.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..sim import StreamRegistry

__all__ = ["FaultKind", "FaultEvent", "FaultSchedule", "random_schedule"]


class FaultKind:
    """The closed vocabulary of injectable faults."""

    #: Crash a server (data plane + control plane); heals after ``duration``.
    CRASH = "crash"
    #: Crash whichever node is the elected delegate at injection time.
    DELEGATE_CRASH = "delegate-crash"
    #: Partition the named nodes away from the rest; heals after ``duration``.
    PARTITION = "partition"
    #: Degrade a server's processing power by ``params[0]``; restores after
    #: ``duration``.
    STRAGGLE = "straggle"
    #: Per-message link faults ``params = (drop, dup, extra_delay)`` for
    #: ``duration`` seconds.
    LINK_FAULTS = "link-faults"

    ALL = (CRASH, DELEGATE_CRASH, PARTITION, STRAGGLE, LINK_FAULTS)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Attributes
    ----------
    time:
        Simulated injection instant (seconds).
    kind:
        One of :class:`FaultKind`.
    target:
        The victim: a server id for crash/straggle, a tuple of node ids
        for partition, ``None`` for delegate-crash and link-faults
        (resolved at injection time / global).
    duration:
        Seconds until the matching heal/restore action.
    params:
        Kind-specific numbers (straggle factor; drop/dup/delay rates).
    """

    time: float
    kind: str
    target: Optional[object] = None
    duration: float = 0.0
    params: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in FaultKind.ALL:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.time < 0:
            raise ValueError(f"fault time must be >= 0, got {self.time}")
        if self.duration < 0:
            raise ValueError(f"fault duration must be >= 0, got {self.duration}")

    def to_dict(self) -> Dict:
        """Plain-JSON representation."""
        return {
            "time": self.time,
            "kind": self.kind,
            "target": list(self.target)
            if isinstance(self.target, (list, tuple))
            else self.target,
            "duration": self.duration,
            "params": list(self.params),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultEvent":
        """Inverse of :meth:`to_dict`."""
        target = data.get("target")
        if isinstance(target, list):
            target = tuple(target)
        return cls(
            time=float(data["time"]),
            kind=str(data["kind"]),
            target=target,
            duration=float(data.get("duration", 0.0)),
            params=tuple(data.get("params", ())),
        )


@dataclass(frozen=True)
class FaultSchedule:
    """A time-ordered, content-comparable fault script."""

    events: Tuple[FaultEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events, key=lambda e: (e.time, e.kind, repr(e.target))))
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def horizon(self) -> float:
        """Last instant any scheduled fault (or its heal) is active."""
        return max((e.time + e.duration for e in self.events), default=0.0)

    def to_json(self) -> str:
        """Canonical JSON encoding (stable across runs)."""
        return json.dumps([e.to_dict() for e in self.events], sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        """Inverse of :meth:`to_json`."""
        return cls(events=tuple(FaultEvent.from_dict(d) for d in json.loads(text)))


def random_schedule(
    seed: int,
    duration: float,
    server_ids: Sequence[object],
    fault_rate: float,
    min_outage: float = 30.0,
    max_outage: float = 90.0,
    kinds: Sequence[str] = FaultKind.ALL,
    straggle_factor: float = 0.25,
    link_profile: Tuple[float, float, float] = (0.05, 0.02, 0.002),
) -> FaultSchedule:
    """Draw a deterministic random schedule.

    Parameters
    ----------
    seed:
        Root seed; the schedule is a pure function of the full argument
        tuple.
    duration:
        Run horizon in simulated seconds. Faults are injected in the
        first 70% so their heals and after-effects stay observable.
    server_ids:
        Crash/straggle victims are drawn from these.
    fault_rate:
        Expected faults per simulated second (``rate × 0.7 × duration``
        events in expectation, Poisson-drawn).
    min_outage / max_outage:
        Uniform bounds on each fault's active window. ``min_outage``
        must exceed the failure detector's declaration bound, otherwise
        a crash can heal before anyone notices it.
    kinds:
        Subset of :data:`FaultKind.ALL` to draw from.
    straggle_factor:
        Power multiplier applied by straggler faults.
    link_profile:
        ``(drop, dup, extra_delay)`` used by link-fault windows.
    """
    if fault_rate < 0:
        raise ValueError(f"fault_rate must be >= 0, got {fault_rate}")
    if not 0 < min_outage <= max_outage:
        raise ValueError(
            f"need 0 < min_outage <= max_outage, got {min_outage}/{max_outage}"
        )
    for kind in kinds:
        if kind not in FaultKind.ALL:
            raise ValueError(f"unknown fault kind {kind!r}")
    rng = StreamRegistry(seed).stream("fault-schedule")
    window = 0.7 * duration
    n_faults = int(rng.poisson(fault_rate * window)) if fault_rate > 0 else 0
    servers = list(server_ids)
    events: List[FaultEvent] = []
    for _ in range(n_faults):
        t = float(rng.uniform(0.05 * duration, window))
        kind = kinds[int(rng.integers(0, len(kinds)))]
        outage = float(rng.uniform(min_outage, max_outage))
        if kind == FaultKind.CRASH:
            victim = servers[int(rng.integers(0, len(servers)))]
            events.append(FaultEvent(t, kind, target=victim, duration=outage))
        elif kind == FaultKind.DELEGATE_CRASH:
            events.append(FaultEvent(t, kind, duration=outage))
        elif kind == FaultKind.PARTITION:
            victim = servers[int(rng.integers(0, len(servers)))]
            events.append(FaultEvent(t, kind, target=(victim,), duration=outage))
        elif kind == FaultKind.STRAGGLE:
            victim = servers[int(rng.integers(0, len(servers)))]
            events.append(
                FaultEvent(t, kind, target=victim, duration=outage, params=(straggle_factor,))
            )
        else:  # LINK_FAULTS
            events.append(FaultEvent(t, kind, duration=outage, params=link_profile))
    return FaultSchedule(events=tuple(events))
