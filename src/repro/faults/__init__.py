"""Deterministic chaos harness: fault injection + continuous auditing.

The subsystem splits into four pieces, composable on their own:

* :mod:`repro.faults.schedule` — replayable fault scripts
  (:class:`FaultSchedule`) and the seeded generator
  (:func:`random_schedule`);
* :mod:`repro.faults.injector` — :class:`FaultInjector`, the sim
  process that executes a schedule against a target cluster;
* :mod:`repro.faults.invariants` — :class:`InvariantChecker`, hooked
  into every reconfiguration, raising :class:`ChaosInvariantError`
  with a replayable :class:`ReplayArtifact`;
* :mod:`repro.faults.chaos` — :class:`ChaosClusterSimulation`, the
  full harness (hardened client + heartbeat detection + injector +
  auditor) and its :class:`ChaosResult` / :func:`chaos_fingerprint`.
"""

from .chaos import (
    ChaosClusterSimulation,
    ChaosConfig,
    ChaosResult,
    FailureRecord,
    chaos_fingerprint,
)
from .injector import FaultInjector
from .invariants import ChaosInvariantError, InvariantChecker, ReplayArtifact
from .schedule import FaultEvent, FaultKind, FaultSchedule, random_schedule

__all__ = [
    "ChaosClusterSimulation",
    "ChaosConfig",
    "ChaosResult",
    "FailureRecord",
    "chaos_fingerprint",
    "FaultInjector",
    "ChaosInvariantError",
    "InvariantChecker",
    "ReplayArtifact",
    "FaultEvent",
    "FaultKind",
    "FaultSchedule",
    "random_schedule",
]
