"""The fault injector: a sim process that executes a fault schedule.

:class:`FaultInjector` walks a :class:`~repro.faults.schedule.FaultSchedule`
and applies each event against a *target adapter* — any object exposing
the small injection surface below (implemented by
:class:`~repro.faults.chaos.ChaosClusterSimulation`):

``crash_server(sid) -> bool`` / ``heal_server(sid)``
    Take a server down (data + control plane) and bring its link back.
``current_delegate() -> sid``
    Resolve the delegate at injection time (for delegate kills).
``apply_partition(nodes)`` / ``heal_partition()``
``apply_straggle(sid, factor) -> bool`` / ``heal_straggle(sid)``
``apply_link_faults(drop, dup, extra_delay)`` / ``heal_link_faults()``

Injection is *guarded*: a fault whose precondition no longer holds at
fire time (victim already down, or downing it would leave fewer than
two live servers) is skipped and counted, never blindly applied — the
guard decisions depend only on deterministic simulation state, so a
schedule replays identically.
"""

from __future__ import annotations

from typing import List, Tuple

from ..sim import Simulator
from .schedule import FaultEvent, FaultKind, FaultSchedule

__all__ = ["FaultInjector"]


class FaultInjector:
    """Drives a fault schedule against a chaos-capable cluster."""

    def __init__(self, env: Simulator, target, schedule: FaultSchedule) -> None:
        self.env = env
        self.target = target
        self.schedule = schedule
        #: ``(time, kind, victim)`` for every fault actually applied.
        self.applied: List[Tuple[float, str, object]] = []
        #: Faults whose precondition failed at fire time.
        self.skipped = 0
        for event in schedule:
            self.env.schedule_at(event.time, self._armed(event))

    def _armed(self, event: FaultEvent):
        return lambda: self._fire(event)

    # ------------------------------------------------------------------ #
    def _fire(self, event: FaultEvent) -> None:
        kind = event.kind
        now = self.env.now
        if kind == FaultKind.CRASH or kind == FaultKind.DELEGATE_CRASH:
            victim = (
                self.target.current_delegate()
                if kind == FaultKind.DELEGATE_CRASH
                else event.target
            )
            if not self.target.crash_server(victim):
                self.skipped += 1
                return
            self.applied.append((now, kind, victim))
            self.env.schedule_at(
                now + event.duration, lambda: self.target.heal_server(victim)
            )
        elif kind == FaultKind.PARTITION:
            nodes = tuple(event.target or ())
            if not nodes:
                self.skipped += 1
                return
            self.target.apply_partition(nodes)
            self.applied.append((now, kind, nodes))
            self.env.schedule_at(
                now + event.duration, lambda: self.target.heal_partition()
            )
        elif kind == FaultKind.STRAGGLE:
            factor = event.params[0] if event.params else 0.25
            victim = event.target
            if not self.target.apply_straggle(victim, factor):
                self.skipped += 1
                return
            self.applied.append((now, kind, victim))
            self.env.schedule_at(
                now + event.duration, lambda: self.target.heal_straggle(victim)
            )
        elif kind == FaultKind.LINK_FAULTS:
            drop, dup, extra = (tuple(event.params) + (0.0, 0.0, 0.0))[:3]
            self.target.apply_link_faults(drop, dup, extra)
            self.applied.append((now, kind, None))
            self.env.schedule_at(
                now + event.duration, lambda: self.target.heal_link_faults()
            )
        else:  # pragma: no cover - schedule validation forbids this
            raise ValueError(f"unknown fault kind {kind!r}")

    # ------------------------------------------------------------------ #
    @property
    def injected(self) -> int:
        """Faults actually applied so far."""
        return len(self.applied)
