"""Continuous invariant checking under churn.

The paper's §3–§4 guarantees are stated as invariants over the layout
and the request flow; :class:`InvariantChecker` asserts them *during*
a run — hooked into every :class:`~repro.core.anu.Reconfiguration` and
optionally polled on a fixed cadence — rather than once at the end, so
a violation is caught at the reconfiguration that introduced it.

Checked invariants
------------------
``half-occupancy``
    Mapped-region lengths sum to exactly one half of the unit interval
    (the guarantee that a free partition exists for any recovered or
    added server).
``containment``
    Structural region/partition containment: every partition owned by
    at most one server, owner index consistent, partial fills in
    ``(0, 1)``, at least one completely free partition. (Delegated to
    :meth:`IntervalLayout.check_invariants`.)
``orphaned-fileset``
    Every registered file set is assigned to a server present in the
    current layout — no request can route into a void.
``election-safety``
    At most one delegate is in office.
``request-conservation``
    ``injected = completed + failed + in-flight`` on the hardened
    client's ledger — retries and redirects never lose or duplicate a
    logical request.

On violation the checker raises :class:`ChaosInvariantError` carrying a
:class:`ReplayArtifact` — the ``(seed, schedule)`` pair plus the
violation context — so the exact failing run can be re-executed
bit-for-bit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional

from ..core.anu import ANUManager, Reconfiguration
from ..core.errors import InvariantViolation
from ..core.interval import HALF
from .schedule import FaultSchedule

__all__ = ["ReplayArtifact", "ChaosInvariantError", "InvariantChecker"]

#: Tolerance on the half-occupancy sum (matches the layout audit).
_HALF_TOL = 1e-6


@dataclass(frozen=True)
class ReplayArtifact:
    """Everything needed to replay a failing chaos run."""

    seed: Optional[int]
    schedule: Optional[FaultSchedule]
    time: float
    invariant: str
    detail: str

    def to_json(self) -> str:
        """Canonical JSON encoding of the artifact."""
        return json.dumps(
            {
                "seed": self.seed,
                "schedule": json.loads(self.schedule.to_json())
                if self.schedule is not None
                else None,
                "time": self.time,
                "invariant": self.invariant,
                "detail": self.detail,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "ReplayArtifact":
        """Inverse of :meth:`to_json`."""
        data = json.loads(text)
        schedule = data.get("schedule")
        return cls(
            seed=data.get("seed"),
            schedule=FaultSchedule.from_json(json.dumps(schedule))
            if schedule is not None
            else None,
            time=float(data.get("time", 0.0)),
            invariant=str(data.get("invariant", "")),
            detail=str(data.get("detail", "")),
        )


class ChaosInvariantError(AssertionError):
    """An invariant failed under churn; carries the replay artifact."""

    def __init__(self, message: str, artifact: ReplayArtifact) -> None:
        super().__init__(message)
        self.artifact = artifact


class InvariantChecker:
    """Continuously audits a live cluster's safety invariants.

    Parameters
    ----------
    manager:
        The authoritative :class:`ANUManager`; the checker hooks itself
        into every reconfiguration it performs.
    client:
        Optional hardened client whose conservation ledger is audited.
    delegates:
        Optional ``() -> iterable`` of delegates currently in office
        (election safety: the set must never exceed one).
    seed / schedule:
        Replay context embedded into every violation artifact.
    now:
        ``() -> float`` giving the current simulated time (for artifact
        timestamps); defaults to ``0.0``.
    """

    def __init__(
        self,
        manager: ANUManager,
        client: Optional[object] = None,
        delegates: Optional[Callable[[], Iterable[object]]] = None,
        seed: Optional[int] = None,
        schedule: Optional[FaultSchedule] = None,
        now: Optional[Callable[[], float]] = None,
    ) -> None:
        self.manager = manager
        self.client = client
        self.delegates = delegates
        self.seed = seed
        self.schedule = schedule
        self.now = now or (lambda: 0.0)
        #: Total invariant sweeps performed.
        self.checks = 0
        #: Artifacts of violations seen (the raise is fail-fast, so at
        #: most one per run unless the caller swallows the error).
        self.violations: List[ReplayArtifact] = []
        manager.add_reconfiguration_hook(self._on_reconfiguration)

    # ------------------------------------------------------------------ #
    def _on_reconfiguration(self, rec: Reconfiguration) -> None:
        self.check(trigger=f"reconfiguration:{rec.kind}#{rec.round_index}")

    def check(self, trigger: str = "periodic") -> None:
        """Run one full invariant sweep; raises on the first violation."""
        self.checks += 1
        self._check_layout(trigger)
        self._check_half_occupancy(trigger)
        self._check_orphans(trigger)
        self._check_election(trigger)
        self._check_conservation(trigger)

    # ------------------------------------------------------------------ #
    def _fail(self, invariant: str, detail: str) -> None:
        artifact = ReplayArtifact(
            seed=self.seed,
            schedule=self.schedule,
            time=float(self.now()),
            invariant=invariant,
            detail=detail,
        )
        self.violations.append(artifact)
        raise ChaosInvariantError(
            f"invariant {invariant!r} violated at t={artifact.time:.3f}: {detail} "
            f"(replay with seed={self.seed})",
            artifact,
        )

    def _check_layout(self, trigger: str) -> None:
        try:
            self.manager.layout.check_invariants(complete=True)
        except InvariantViolation as exc:
            self._fail("containment", f"[{trigger}] {exc}")

    def _check_half_occupancy(self, trigger: str) -> None:
        total = self.manager.layout.total_mapped
        if abs(total - HALF) > _HALF_TOL:
            self._fail(
                "half-occupancy",
                f"[{trigger}] mapped measure {total:.9f} != {HALF}",
            )

    def _check_orphans(self, trigger: str) -> None:
        live = set(self.manager.layout.server_ids)
        for name, sid in self.manager.assignments.items():
            if sid not in live:
                self._fail(
                    "orphaned-fileset",
                    f"[{trigger}] {name!r} assigned to departed server {sid!r}",
                )

    def _check_election(self, trigger: str) -> None:
        if self.delegates is None:
            return
        office = {d for d in self.delegates() if d is not None}
        if len(office) > 1:
            self._fail(
                "election-safety",
                f"[{trigger}] {len(office)} delegates in office: {sorted(map(repr, office))}",
            )

    def _check_conservation(self, trigger: str) -> None:
        client = self.client
        if client is None:
            return
        balance = client.completed + client.failed + client.in_flight
        if client.injected != balance:
            self._fail(
                "request-conservation",
                f"[{trigger}] injected={client.injected} != completed={client.completed}"
                f" + failed={client.failed} + in_flight={client.in_flight}",
            )
        if getattr(client, "classified", True) is False:
            # Every in-flight request must sit in exactly one bucket —
            # dispatch latch, submitted attempt, or backoff sleep — so
            # the horizon remainder is classified, never merely lost.
            self._fail(
                "request-conservation",
                f"[{trigger}] in_flight={client.in_flight} != "
                f"dispatching={client.dispatching}"
                f" + awaiting_service={client.awaiting_service}"
                f" + backing_off={client.backing_off}",
            )
