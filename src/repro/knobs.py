"""Strict ``REPRO_*`` environment-knob parsing — one validator, one registry.

Every tunable the repo reads from the environment goes through this
module. The contract is uniform and deliberately unforgiving:

* unset or blank means *default* — whitespace never changes behaviour;
* anything else must parse **exactly**, or a :class:`ValueError` naming
  the variable and the offending value is raised. A typo in
  ``REPRO_CACHE=offf`` or ``REPRO_PARALLEL_WORKERS=many`` must never
  silently enable a cache or serialize a sweep.

Historically the cache (``REPRO_CACHE``), the fan-out
(``REPRO_PARALLEL_WORKERS``) and the vectorized relocation path
(``REPRO_VECTOR_RELOCATE``) each carried a private copy of this logic;
they now share these parsers, and the service layer registers its
``REPRO_SERVICE_*`` knobs (port, epoch seconds, client count) through
the same registry. :func:`describe_knobs` renders the registry for
``--help`` output and docs, so the set of recognized variables is
discoverable in one place.

This module imports nothing from ``repro`` — it sits below every layer.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

__all__ = [
    "Knob",
    "KNOBS",
    "register_knob",
    "env_flag",
    "env_int",
    "env_float",
    "env_choice",
    "describe_knobs",
]

#: Spellings accepted for boolean knobs (after strip + lower).
FLAG_TRUTHY: Tuple[str, ...] = ("on", "1", "true", "yes")
FLAG_FALSY: Tuple[str, ...] = ("off", "0", "false", "no")


@dataclass(frozen=True)
class Knob:
    """One registered environment variable.

    ``kind`` is the parser family (``flag`` / ``int`` / ``float`` /
    ``choice``); ``default`` is what unset/blank resolves to (``None``
    when the consumer supplies a computed default, e.g. the CPU count).
    """

    name: str
    kind: str
    default: object
    help: str
    choices: Tuple[str, ...] = field(default=())


#: The registry: variable name -> :class:`Knob`. Consumers register at
#: import time; parse calls work for unregistered names too (tests).
KNOBS: Dict[str, Knob] = {}


def register_knob(
    name: str,
    kind: str,
    default: object,
    help: str,  # noqa: A002 - mirrors the dataclass field
    choices: Sequence[str] = (),
) -> Knob:
    """Record a knob in the registry (idempotent; last writer wins)."""
    knob = Knob(
        name=name, kind=kind, default=default, help=help, choices=tuple(choices)
    )
    KNOBS[name] = knob
    return knob


def describe_knobs() -> str:
    """Human-readable registry dump (one line per knob)."""
    lines = []
    for name in sorted(KNOBS):
        knob = KNOBS[name]
        extra = f" choices={'/'.join(knob.choices)}" if knob.choices else ""
        lines.append(f"{name} ({knob.kind}, default {knob.default!r}{extra}): {knob.help}")
    return "\n".join(lines)


# ---------------------------------------------------------------------- #
# parsers
# ---------------------------------------------------------------------- #
def _raw(name: str) -> Optional[str]:
    """The variable's value, or ``None`` when unset or blank."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return None
    return raw


def env_flag(name: str, default: bool = True, blank: Optional[bool] = None) -> bool:
    """Strict boolean knob: ``on/1/true/yes`` vs ``off/0/false/no``.

    Unset resolves to ``default``; a *set-but-blank* variable resolves
    to ``blank`` when given (``REPRO_CACHE=`` historically means
    "enabled") and to ``default`` otherwise. Any other value raises.
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    value = raw.strip().lower()
    if not value:
        return default if blank is None else blank
    if value in FLAG_TRUTHY:
        return True
    if value in FLAG_FALSY:
        return False
    raise ValueError(
        f"{name} must be one of "
        f"{'/'.join(FLAG_TRUTHY + FLAG_FALSY)} (got {raw!r})"
    )


def env_int(
    name: str,
    default: Optional[int] = None,
    minimum: Optional[int] = None,
    maximum: Optional[int] = None,
) -> Optional[int]:
    """Strict integer knob; unset/blank resolves to ``default``.

    ``minimum``/``maximum`` are inclusive bounds; violating either
    raises with the bound spelled out (``must be >= 1``), matching the
    long-standing ``REPRO_PARALLEL_WORKERS`` error text.
    """
    raw = _raw(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        kind = "a positive integer" if minimum is not None and minimum >= 1 else "an integer"
        raise ValueError(f"{name} must be {kind}, got {raw!r}") from None
    if minimum is not None and value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    if maximum is not None and value > maximum:
        raise ValueError(f"{name} must be <= {maximum}, got {value}")
    return value


def env_float(
    name: str,
    default: Optional[float] = None,
    minimum: Optional[float] = None,
    exclusive_minimum: Optional[float] = None,
) -> Optional[float]:
    """Strict float knob; unset/blank resolves to ``default``."""
    raw = _raw(name)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"{name} must be a number, got {raw!r}") from None
    if value != value:  # NaN never compares; reject explicitly
        raise ValueError(f"{name} must be a number, got {raw!r}")
    if exclusive_minimum is not None and value <= exclusive_minimum:
        raise ValueError(f"{name} must be > {exclusive_minimum}, got {value}")
    if minimum is not None and value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def env_choice(
    name: str,
    choices: Sequence[str],
    default: Optional[str] = None,
) -> Optional[str]:
    """Strict enumerated knob; the value is stripped and lower-cased.

    Unset/blank resolves to ``default``; anything outside ``choices``
    raises naming the variable, the options, and the offending value.
    """
    raw = _raw(name)
    if raw is None:
        return default
    value = raw.strip().lower()
    if value not in choices:
        raise ValueError(
            f"{name} must be one of {tuple(choices)}, got {raw!r}"
        )
    return value
