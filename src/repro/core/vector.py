"""Array-backed kernels for the vectorized simulation path.

The scalar path resolves one name and drains one request at a time;
these kernels do the same work on whole batches so the engine's
vectorized client path (:mod:`repro.engine.vector_driver`) can advance
request cohorts per tuning interval instead of per event.

Three kernels, each a direct vectorization of an existing scalar
routine (and tested for agreement with it):

* :class:`SegmentTable` — an :class:`~repro.core.interval.IntervalLayout`
  flattened to sorted segment arrays; ``locate`` is
  :meth:`IntervalLayout.owner_at` over an offset batch via one
  ``searchsorted``.
* :class:`ProbeMatrix` — the memoized probe sequences of
  :class:`~repro.core.hashing.HashFamily`, held column-major per round
  and grown lazily; columns are pure in ``(seed, name, round)`` so they
  are computed once and reused across every reconfiguration epoch.
* :func:`batched_locate` — the ANU re-hash loop ("re-hash until the
  offset lands in a mapped region") run round-by-round over the
  unresolved remainder of the batch.
* :func:`fifo_drain` — the FIFO service recurrence of every
  :class:`~repro.cluster.server.FileServer` queue, evaluated per server
  segment with a prefix-sum + running-max identity.
"""

from __future__ import annotations

from typing import Dict, Mapping, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from .errors import ConfigurationError, LookupExhaustedError
from .hashing import HashFamily
from .interval import IntervalLayout

__all__ = [
    "SegmentTable",
    "ProbeMatrix",
    "DrainedCohort",
    "batched_locate",
    "fifo_drain",
    "segment_delta",
]


class SegmentTable:
    """A frozen array view of one layout epoch for batched ownership tests.

    The layout's mapped regions are flattened to disjoint, sorted
    ``[start, end)`` segments with an owner *slot* (an integer index
    into a fixed server order) per segment. Ownership of a batch of
    offsets is a grid lookup plus a short downward walk — O(1) per
    offset instead of the O(log k) binary search, which matters when a
    reconfiguration re-resolves a million names against the table.
    """

    __slots__ = ("starts", "ends", "owners", "n_servers", "_grid_shift", "_grid_hi")

    def __init__(
        self, starts: np.ndarray, ends: np.ndarray, owners: np.ndarray, n_servers: int
    ) -> None:
        self.starts = starts
        self.ends = ends
        self.owners = owners
        self.n_servers = int(n_servers)
        # Grid accelerator: 2^g cells over [0, 1), ~4 cells per segment.
        # Powers of two make the cell computation exact (offset * 2^g is
        # a pure exponent shift, so floor() never misclassifies a cell),
        # which keeps locate() bit-identical to the searchsorted form.
        g = max(8, int(max(1, starts.size * 4) - 1).bit_length())
        self._grid_shift = min(g, 16)
        cells = 1 << self._grid_shift
        if starts.size:
            edges = np.arange(1, cells + 1, dtype=np.float64) / cells
            # _grid_hi[c]: largest segment index whose start is < the
            # cell's right edge — an upper bound for every offset that
            # floors into cell c.
            self._grid_hi = np.searchsorted(starts, edges, side="left") - 1
        else:
            self._grid_hi = np.full(cells, -1, dtype=np.int64)

    @classmethod
    def from_layout(
        cls, layout: IntervalLayout, server_slots: Mapping[object, int]
    ) -> "SegmentTable":
        """Flatten ``layout`` using ``server_slots`` (server id -> slot)."""
        segs = []
        for sid, spans in layout.segments().items():
            slot = server_slots[sid]
            for start, end in spans:
                segs.append((start, end, slot))
        if not segs:
            empty = np.empty(0, dtype=np.float64)
            return cls(empty, empty, np.empty(0, dtype=np.int64), len(server_slots))
        segs.sort()
        arr = np.asarray(segs, dtype=np.float64)
        return cls(
            np.ascontiguousarray(arr[:, 0]),
            np.ascontiguousarray(arr[:, 1]),
            arr[:, 2].astype(np.int64),
            len(server_slots),
        )

    @classmethod
    def patched(
        cls,
        base: "SegmentTable",
        changed: Mapping[int, Sequence[Tuple[float, float]]],
    ) -> "SegmentTable":
        """A new table with the given slots' spans replaced — the
        incremental constructor for epoch-delta relocation.

        ``changed`` maps owner *slot* → its new ``[start, end)`` spans
        (an empty sequence evicts the slot from the table). Segments of
        untouched slots are carried over by a vectorized mask + merge
        insert into the sorted arrays, so building the new epoch's table
        costs O(changed segments + log) instead of re-flattening every
        server's region through the :meth:`from_layout` Python loop.

        The result is bit-identical to a :meth:`from_layout` rebuild of
        the same layout: spans are disjoint with nonzero length, so
        sorting by ``start`` alone reproduces the tuple-sort order
        (pinned by a hypothesis test).
        """
        if not changed:
            return base
        changed_slots = np.fromiter(changed, dtype=np.int64, count=len(changed))
        keep = ~np.isin(base.owners, changed_slots)
        kept_starts = base.starts[keep]
        kept_ends = base.ends[keep]
        kept_owners = base.owners[keep]
        add = sorted(
            (start, end, slot)
            for slot, spans in changed.items()
            for start, end in spans
        )
        if not add:
            return cls(kept_starts, kept_ends, kept_owners, base.n_servers)
        arr = np.asarray(add, dtype=np.float64)
        add_starts = np.ascontiguousarray(arr[:, 0])
        pos = np.searchsorted(kept_starts, add_starts, side="left")
        return cls(
            np.insert(kept_starts, pos, add_starts),
            np.insert(kept_ends, pos, np.ascontiguousarray(arr[:, 1])),
            np.insert(kept_owners, pos, arr[:, 2].astype(np.int64)),
            base.n_servers,
        )

    def locate(self, offsets: np.ndarray) -> np.ndarray:
        """Owner slot per offset; ``-1`` where the offset is unmapped.

        Matches :meth:`IntervalLayout.owner_at` exactly: an offset is
        owned when it falls in ``[start, end)`` of some segment. The
        grid gives ``idx <= _grid_hi[cell]`` and the walk lowers ``idx``
        until ``starts[idx] <= offset`` — the same index
        ``searchsorted(starts, offsets, 'right') - 1`` computes, found
        in O(cell occupancy) instead of O(log k).
        """
        if self.starts.size == 0:
            return np.full(offsets.shape, -1, dtype=np.int64)
        cells = (offsets * (1 << self._grid_shift)).astype(np.int64)
        idx = self._grid_hi[cells]
        # Walk down on the (quickly shrinking) subset whose candidate
        # segment starts past the offset. ~4 cells per segment means
        # almost everything settles in zero or one step.
        over = np.flatnonzero((idx >= 0) & (self.starts[np.maximum(idx, 0)] > offsets))
        while over.size:
            idx[over] -= 1
            sub = idx[over]
            over = over[(sub >= 0) & (self.starts[np.maximum(sub, 0)] > offsets[over])]
        clipped = np.maximum(idx, 0)
        hit = (idx >= 0) & (offsets < self.ends[clipped])
        return np.where(hit, self.owners[clipped], -1)


class ProbeMatrix:
    """Probe-offset columns for a fixed name list, grown lazily by round.

    Column ``r`` is ``h_r(name)`` for every name — bit-identical to
    :meth:`HashFamily.offset` — computed once via
    :meth:`HashFamily.batch_offsets` and reused for every epoch. Memory
    is ``8 * len(names)`` bytes per materialized round; with half
    occupancy the expected number of materialized rounds is ~2 plus the
    tail of the worst name.
    """

    __slots__ = ("names", "family", "_columns", "_sorted")

    def __init__(self, names: Sequence[str], family: HashFamily) -> None:
        self.names = list(names)
        self.family = family
        self._columns: Dict[int, np.ndarray] = {}
        self._sorted: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}

    def __len__(self) -> int:
        return len(self.names)

    @property
    def rounds_materialized(self) -> int:
        return len(self._columns)

    def column(self, round_: int) -> np.ndarray:
        """Offsets of every name for probe ``round_`` (cached)."""
        col = self._columns.get(round_)
        if col is None:
            col = self._columns[round_] = self.family.batch_offsets(
                self.names, round_
            )
        return col

    def sorted_column(self, round_: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(sorted offsets, sorting permutation)`` for one round.

        Columns are pure in ``(seed, name, round)``, so the sort is
        computed once and stays valid for every epoch. Incremental
        relocation uses it to find the names whose round-``r`` probe
        falls inside a changed interval with two ``searchsorted`` calls
        per delta interval — work proportional to the moved mass, not
        the catalog.
        """
        entry = self._sorted.get(round_)
        if entry is None:
            col = self.column(round_)
            order = np.argsort(col, kind="stable")
            entry = self._sorted[round_] = (col[order], order)
        return entry


def batched_locate(
    probes: ProbeMatrix,
    table: SegmentTable,
    blocked: Optional[np.ndarray] = None,
    subset: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Resolve every name in ``probes`` against ``table``.

    Runs the ANU probe loop breadth-first: round ``r`` re-hashes only
    the names still unresolved after rounds ``< r``. Returns
    ``(owner_slot, probes_used)`` arrays (``probes_used`` counts hash
    evaluations, 1-based, matching ``ANUManager.lookup``'s accounting).

    ``blocked`` is an optional boolean mask over server slots: a probe
    landing in a blocked slot's region is treated as unmapped and the
    name continues to the next round — the alive-mask guarantee of the
    chaos path ("never route to a dead server"), enforced in the
    kernel regardless of whether the layout was already updated.

    ``subset`` restricts resolution to the given name indices (the
    epoch-delta relocation path re-resolves only invalidated names);
    the returned arrays then align with ``subset`` — ``owner[j]`` is
    the resolution of name ``subset[j]``. Resolution of a name depends
    only on its own probe sequence, so a subset resolution is
    bit-identical to the corresponding entries of a full one.

    Raises :class:`LookupExhaustedError` if any name exhausts the
    family's probe budget — same failure mode as the scalar lookup.
    """
    if subset is None:
        n = len(probes)
        idx = None
    else:
        idx = np.asarray(subset, dtype=np.int64)
        n = idx.size
    owner = np.full(n, -1, dtype=np.int64)
    used = np.zeros(n, dtype=np.int64)
    if n == 0:
        return owner, used
    if blocked is not None and not blocked.any():
        blocked = None
    unresolved = np.arange(n)
    for round_ in range(probes.family.max_probes):
        col = probes.column(round_)
        gather = unresolved if idx is None else idx[unresolved]
        slots = table.locate(col[gather])
        hit = slots >= 0
        if blocked is not None:
            hit &= ~blocked[np.maximum(slots, 0)]
        hit_idx = unresolved[hit]
        owner[hit_idx] = slots[hit]
        used[hit_idx] = round_ + 1
        unresolved = unresolved[~hit]
        if unresolved.size == 0:
            return owner, used
    raise LookupExhaustedError(
        f"{unresolved.size} of {n} names found no mapped region in "
        f"{probes.family.max_probes} probes"
    )


class DrainedCohort(NamedTuple):
    """One cohort's drain result, grouped by server slot.

    All five arrays are in the grouped order: requests of slot
    ``server[bounds[i]]`` occupy positions ``bounds[i]:bounds[i+1]``,
    FIFO (arrival) order within each group. ``order`` maps grouped
    position → input index, so input order is recovered with
    ``out[order] = grouped``.
    """

    order: np.ndarray
    bounds: np.ndarray
    server: np.ndarray
    arrival: np.ndarray
    service: np.ndarray
    completion: np.ndarray

    def completion_in_input_order(self) -> np.ndarray:
        out = np.empty(self.completion.shape[0], dtype=np.float64)
        out[self.order] = self.completion
        return out


def fifo_drain(
    arrival: np.ndarray,
    service: np.ndarray,
    server_idx: np.ndarray,
    free_at: np.ndarray,
    *,
    power: Optional[np.ndarray] = None,
) -> DrainedCohort:
    """Completion times for a cohort of requests across FIFO servers.

    Vectorizes the per-server recurrence
    ``completion_i = max(arrival_i, completion_{i-1}) + service_i``
    using the identity ``c_i = P_i + max_{j<=i}(a_j - P_{j-1})`` over
    each server's segment, where ``P`` is the prefix sum of service
    times within the segment.

    Parameters
    ----------
    arrival:
        Request arrival times, nondecreasing (the cohort is drained in
        schedule order, like the scalar driver submits it).
    service:
        Per-request service time (work / server power) — or raw work
        when ``power`` is given.
    server_idx:
        Assigned server slot per request.
    free_at:
        Per-slot time the server's queue drains empty. **Mutated in
        place** so consecutive cohorts chain their backlogs.
    power:
        Optional per-slot processing power. When given, ``service`` is
        raw work and each request's service time is
        ``work / power[slot]``, divided in place *after* the grouping
        gather — the division is per segment (power is constant within
        a segment), so no full-size temporaries are materialized. The
        quotients are bit-identical to dividing up front.

    Returns
    -------
    A :class:`DrainedCohort` — results stay grouped by server so the
    caller can flush per-server batches without re-sorting.
    """
    n = arrival.shape[0]
    if n == 0:
        empty = np.empty(0, dtype=np.float64)
        idx = np.empty(0, dtype=np.int64)
        return DrainedCohort(idx, np.zeros(1, dtype=np.int64), idx, empty, empty, empty)
    if n != service.shape[0] or n != server_idx.shape[0]:
        raise ConfigurationError(
            f"cohort arrays disagree: {n}, {service.shape[0]}, {server_idx.shape[0]}"
        )
    # Stable sort groups each server's requests while preserving the
    # FIFO (arrival) order within the group — exactly the order the
    # scalar driver fills each server's queue. Narrowing the key dtype
    # matters: NumPy's stable integer sort is a radix sort, and int16
    # keys take a quarter of the passes of int64 (7x on 2M elements).
    key = server_idx
    if free_at.shape[0] <= np.iinfo(np.int16).max and key.dtype != np.int16:
        key = key.astype(np.int16)
    order = np.argsort(key, kind="stable")
    srv = key[order]
    arr = arrival[order]
    svc = service[order]
    seg_start = np.flatnonzero(np.r_[True, srv[1:] != srv[:-1]])
    bounds = np.r_[seg_start, n]
    heads = srv[seg_start]
    # The whole recurrence runs segment-fused: every pass (division,
    # prefix sum, slack, running max, final add) operates on one
    # server's slice while it is still cache-hot, instead of streaming
    # multi-megabyte cohort arrays through each pass in turn. Segment
    # count is bounded by the server count, so the Python loop is O(k);
    # the two full-size buffers are the only allocations.
    cum = np.empty(n, dtype=np.float64)
    completion = np.empty(n, dtype=np.float64)
    for i in range(seg_start.size):
        lo, hi = bounds[i], bounds[i + 1]
        head = heads[i]
        s = svc[lo:hi]
        if power is not None:
            np.divide(s, power[head], out=s)
        p = cum[lo:hi]
        np.cumsum(s, out=p)  # P_i within the segment
        b = completion[lo:hi]
        np.subtract(p, s, out=b)  # P_{i-1}
        np.subtract(arr[lo:hi], b, out=b)  # slack a_i - P_{i-1}
        if b[0] < free_at[head]:
            b[0] = free_at[head]
        np.maximum.accumulate(b, out=b)
        np.add(p, b, out=b)  # completion P_i + max slack
        free_at[head] = b[-1]
    return DrainedCohort(order, bounds, srv, arr, svc, completion)


def segment_delta(
    old: SegmentTable,
    new: SegmentTable,
    old_blocked: Optional[np.ndarray] = None,
    new_blocked: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Intervals of [0, 1) whose *effective* owner differs between epochs.

    The effective owner of an offset is its segment's owner slot with
    the epoch's blocked mask applied (a blocked owner counts as
    unmapped, ``-1``) — exactly what :func:`batched_locate` sees. The
    returned ``(starts, ends)`` arrays are the merged, sorted, disjoint
    intervals where old and new disagree; a name resolution can only be
    invalidated by the epoch change if one of its probe offsets at
    rounds ``<= used`` lands inside one of them:

    * at the resolving round, a delta hit means the owner changed or
      the region shrank/was blocked from under the name;
    * at any earlier round the old effective owner was ``-1`` (that is
      why probing continued), so a delta hit there means the offset is
      newly mapped — a *grown* region — and the name may now resolve
      earlier.

    Computed exactly by sweeping the union of both tables' segment
    endpoints: within each elementary interval both tables are
    constant, so locating the left endpoints (vectorized) classifies
    the whole interval. O(total segments) per reconfiguration — the
    tables are O(servers), not O(names).
    """
    pts = np.unique(
        np.concatenate(
            (old.starts, old.ends, new.starts, new.ends, np.array([0.0]))
        )
    )
    lefts = pts[pts < 1.0]
    rights = np.append(lefts[1:], 1.0)
    old_eff = old.locate(lefts)
    new_eff = new.locate(lefts)
    if old_blocked is not None and old_blocked.any():
        old_eff = np.where(old_blocked[np.maximum(old_eff, 0)] & (old_eff >= 0), -1, old_eff)
    if new_blocked is not None and new_blocked.any():
        new_eff = np.where(new_blocked[np.maximum(new_eff, 0)] & (new_eff >= 0), -1, new_eff)
    diff = old_eff != new_eff
    if not diff.any():
        empty = np.empty(0, dtype=np.float64)
        return empty, empty.copy()
    run_start = diff & np.r_[True, ~diff[:-1]]
    run_end = diff & np.r_[~diff[1:], True]
    return lefts[run_start], rights[run_end]
