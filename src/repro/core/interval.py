"""Unit-interval geometry: partitions, mapped regions, half occupancy.

This module implements the data structure at the heart of ANU
randomization (§4 of the paper):

* The unit interval is divided into ``P = 2^(ceil(lg k) + 1)`` equal
  *partitions* for ``k`` servers.
* Each server owns a *mapped region*: a set of partitions it fully
  occupies, plus at most one partition of which it occupies a prefix
  (its *partial* partition). This is the paper's "a server completely
  occupies all but one assigned sub-region, which may be partially
  occupied".
* **Half-occupancy invariant**: mapped-region lengths sum to exactly
  one half of the unit interval, guaranteeing a completely free
  partition always exists for a recovered or added server.

Occupying a *prefix* of the partial partition is the detail that makes
scaling cheap: growing or shrinking a server by ``δ`` moves exactly the
marginal slice of measure ``δ`` at the tip of its region, leaving the
rest of its key space — and hence its cached file sets — in place.

The structure supports O(1) ownership lookup (``owner_at``), O(δ·P)
grow/shrink, lossless re-partitioning (doubling ``P`` moves no load),
and full invariant auditing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from .errors import InvariantViolation, UnknownServerError

__all__ = ["required_partitions", "ServerRegion", "IntervalLayout", "EPS"]

#: Absolute tolerance for fill-fraction arithmetic. Fills within EPS of
#: 0 or 1 are snapped so float drift cannot accumulate into phantom
#: slivers of mapped region.
EPS = 1e-9

#: Measure that must be mapped in a complete layout (the half-occupancy
#: invariant).
HALF = 0.5


def required_partitions(n_servers: int) -> int:
    """Partition count mandated by the paper for ``n_servers``.

    ``2^(ceil(lg k) + 1)``; e.g. 4 servers → 8 partitions, 5 servers →
    16 partitions (the Figure 3 example). For ``k = 1`` this is 2.
    """
    if n_servers < 1:
        raise ValueError(f"need at least one server, got {n_servers}")
    return 2 ** (math.ceil(math.log2(n_servers)) + 1)


@dataclass
class ServerRegion:
    """The mapped region of one server.

    Attributes
    ----------
    server_id:
        Opaque identifier (hashable) of the owning server.
    full:
        Partition indices fully occupied, in acquisition order. The
        *last* acquired partition is the first demoted when shrinking
        (LIFO), which maximizes overlap with older configurations.
    partial:
        ``(partition_index, fill)`` with ``0 < fill < 1``, or ``None``.
        The server occupies the prefix ``[p/P, (p + fill)/P)``.
    """

    server_id: object
    full: List[int] = field(default_factory=list)
    partial: Optional[Tuple[int, float]] = None

    def length(self, n_partitions: int) -> float:
        """Total measure of this region as a fraction of the unit interval."""
        fill = self.partial[1] if self.partial else 0.0
        return (len(self.full) + fill) / n_partitions

    def partitions(self) -> Iterator[int]:
        """All partition indices this region touches (full then partial)."""
        yield from self.full
        if self.partial:
            yield self.partial[0]

    def segments(self, n_partitions: int) -> List[Tuple[float, float]]:
        """Real sub-intervals ``[start, end)`` occupied, sorted by start."""
        width = 1.0 / n_partitions
        segs = [(p * width, (p + 1) * width) for p in self.full]
        if self.partial:
            p, fill = self.partial
            segs.append((p * width, (p + fill) * width))
        segs.sort()
        return segs


class IntervalLayout:
    """Assignment of servers to regions of the unit interval.

    Construct complete layouts with :meth:`initial`; thereafter mutate
    through :meth:`grow`, :meth:`shrink`, :meth:`add_server`,
    :meth:`remove_server` and :meth:`repartition`. The higher-level
    :class:`~repro.core.layout.LayoutEngine` sequences those primitives
    so the half-occupancy invariant holds between tuning rounds.
    """

    def __init__(self, n_partitions: int) -> None:
        if n_partitions < 2 or n_partitions & (n_partitions - 1):
            raise InvariantViolation(
                f"partition count must be a power of two >= 2, got {n_partitions}"
            )
        self.n_partitions = n_partitions
        self._regions: Dict[object, ServerRegion] = {}
        # _owner[p] is the server id whose region touches partition p
        # (fully or partially), or None when p is completely free.
        self._owner: List[Optional[object]] = [None] * n_partitions

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def initial(cls, server_ids: List[object], n_partitions: Optional[int] = None) -> "IntervalLayout":
        """Equal-share layout: every server gets length ``1/(2k)``.

        This is ANU's cold start — "ANU randomization initially assigns
        servers mapped regions of equal length, because it has no
        knowledge of server capabilities" (§4).
        """
        if not server_ids:
            raise InvariantViolation("cannot build a layout with zero servers")
        if len(set(server_ids)) != len(server_ids):
            raise InvariantViolation("duplicate server ids")
        k = len(server_ids)
        n_parts = n_partitions if n_partitions is not None else required_partitions(k)
        if n_parts < required_partitions(k):
            raise InvariantViolation(
                f"{n_parts} partitions < required {required_partitions(k)} for k={k}"
            )
        layout = cls(n_parts)
        share = HALF / k
        for sid in server_ids:
            layout._regions[sid] = ServerRegion(sid)
            layout.grow(sid, share)
        layout.check_invariants()
        return layout

    def copy(self) -> "IntervalLayout":
        """Deep copy (used to diff configurations for shed computation)."""
        dup = IntervalLayout(self.n_partitions)
        for sid, region in self._regions.items():
            dup._regions[sid] = ServerRegion(
                sid, list(region.full), tuple(region.partial) if region.partial else None
            )
        dup._owner = list(self._owner)
        return dup

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    @property
    def server_ids(self) -> List[object]:
        """Ids of all servers in the layout (insertion order)."""
        return list(self._regions)

    @property
    def n_servers(self) -> int:
        """Number of servers in the layout."""
        return len(self._regions)

    def region(self, server_id: object) -> ServerRegion:
        """The :class:`ServerRegion` of ``server_id``."""
        try:
            return self._regions[server_id]
        except KeyError:
            raise UnknownServerError(f"no region for server {server_id!r}") from None

    def length(self, server_id: object) -> float:
        """Mapped-region length of one server."""
        return self.region(server_id).length(self.n_partitions)

    def lengths(self) -> Dict[object, float]:
        """Mapped-region length of every server."""
        return {sid: r.length(self.n_partitions) for sid, r in self._regions.items()}

    @property
    def total_mapped(self) -> float:
        """Sum of all mapped-region lengths (0.5 in a complete layout)."""
        return sum(self.lengths().values())

    def free_partitions(self) -> List[int]:
        """Indices of completely free partitions, ascending."""
        return [p for p, owner in enumerate(self._owner) if owner is None]

    def owner_at(self, x: float) -> Optional[object]:
        """Server owning offset ``x`` in [0, 1), or ``None`` if unmapped.

        O(1): index the partition array, then a prefix test if the
        partition is the owner's partial one.
        """
        if not 0.0 <= x < 1.0:
            raise ValueError(f"offset {x!r} outside [0, 1)")
        p = min(int(x * self.n_partitions), self.n_partitions - 1)
        sid = self._owner[p]
        if sid is None:
            return None
        region = self._regions[sid]
        if region.partial is not None and region.partial[0] == p:
            # Prefix occupancy test within the partial partition. Uses
            # the same ``(p + fill) * width`` arithmetic as
            # :meth:`ServerRegion.segments`: the sum rounds before the
            # (exact, power-of-two) scaling, so testing the fraction
            # directly against ``fill`` can disagree with the published
            # segment endpoint at boundary offsets.
            end = (p + region.partial[1]) / self.n_partitions
            return sid if x < end else None
        return sid

    def segments(self) -> Dict[object, List[Tuple[float, float]]]:
        """Occupied real sub-intervals per server (the replicated state)."""
        return {sid: r.segments(self.n_partitions) for sid, r in self._regions.items()}

    def shared_state_entries(self) -> int:
        """Number of (server, segment) entries a node must replicate.

        This is the paper's shared-state metric for ANU: O(k) region
        descriptors, versus O(#VP) virtual-processor addresses or O(m)
        lookup-table rows.
        """
        return sum(len(segs) for segs in self.segments().values())

    # ------------------------------------------------------------------ #
    # growth / shrinkage primitives
    # ------------------------------------------------------------------ #
    def grow(self, server_id: object, delta: float) -> float:
        """Grow ``server_id``'s region by measure ``delta``.

        Fills the partial partition first; on reaching a full partition,
        claims the lowest-indexed free partition as the new partial.
        Returns the measure actually added (== ``delta`` unless the
        interval ran out of free partitions, which violates invariants
        upstream and raises).
        """
        region = self.region(server_id)
        if delta <= 0:
            return 0.0
        remaining = delta * self.n_partitions  # work in partition units
        while remaining > EPS:
            if region.partial is None:
                free = self._lowest_free_partition()
                if free is None:
                    raise InvariantViolation(
                        f"no free partition while growing {server_id!r}; "
                        "half-occupancy bookkeeping is broken"
                    )
                self._owner[free] = server_id
                region.partial = (free, 0.0)
            p, fill = region.partial
            take = min(remaining, 1.0 - fill)
            fill += take
            remaining -= take
            if fill >= 1.0 - EPS:
                region.full.append(p)
                region.partial = None
            else:
                region.partial = (p, fill)
        return delta

    def shrink(self, server_id: object, delta: float) -> float:
        """Shrink ``server_id``'s region by measure ``delta``.

        Trims the partial prefix first; when it empties, the partition is
        released to the free pool and the most recently acquired full
        partition is demoted to partial (LIFO — keeps the oldest, most
        cache-warm key space in place). Returns the measure actually
        removed (capped at the current region length).
        """
        region = self.region(server_id)
        if delta <= 0:
            return 0.0
        remaining = min(delta, region.length(self.n_partitions)) * self.n_partitions
        removed = remaining
        while remaining > EPS:
            if region.partial is None:
                if not region.full:
                    break
                p = region.full.pop()
                region.partial = (p, 1.0)
            p, fill = region.partial
            give = min(remaining, fill)
            fill -= give
            remaining -= give
            if fill <= EPS:
                region.partial = None
                self._owner[p] = None
            else:
                region.partial = (p, fill)
        return removed / self.n_partitions

    def _lowest_free_partition(self) -> Optional[int]:
        for p, owner in enumerate(self._owner):
            if owner is None:
                return p
        return None

    # ------------------------------------------------------------------ #
    # membership changes
    # ------------------------------------------------------------------ #
    def add_server(self, server_id: object) -> None:
        """Register a new server with an empty region.

        Re-partitions first if the new server count would exceed what
        the current partition count supports (Figure 3 of the paper).
        The caller then uses :meth:`shrink`/:meth:`grow` (normally via
        the layout engine) to give it measure.
        """
        if server_id in self._regions:
            raise InvariantViolation(f"server {server_id!r} already present")
        while self.n_partitions < required_partitions(len(self._regions) + 1):
            self.repartition()
        self._regions[server_id] = ServerRegion(server_id)

    def remove_server(self, server_id: object) -> float:
        """Remove a server, freeing its partitions.

        Returns the measure released. Used for both failure and
        decommissioning — "the framework treats commissioning or
        decommissioning servers the same as a recovery or failure" (§4).
        """
        region = self.region(server_id)
        released = region.length(self.n_partitions)
        for p in region.partitions():
            self._owner[p] = None
        del self._regions[server_id]
        return released

    def repartition(self) -> None:
        """Double the partition count without moving any load.

        Every full partition ``p`` becomes full partitions ``2p`` and
        ``2p + 1``. A partial ``(p, f)`` becomes ``full 2p`` plus
        ``partial (2p+1, 2f-1)`` when ``f >= 1/2``, else
        ``partial (2p, 2f)``. The occupied point set of every server is
        unchanged, so no file set moves and no cache is disturbed — this
        is what distinguishes ANU's re-partitioning from linear hashing.
        """
        new_p = self.n_partitions * 2
        new_owner: List[Optional[object]] = [None] * new_p
        for sid, region in self._regions.items():
            new_full = []
            for p in region.full:
                new_full.extend((2 * p, 2 * p + 1))
            new_partial: Optional[Tuple[int, float]] = None
            if region.partial is not None:
                p, fill = region.partial
                if fill >= 0.5:
                    new_full.append(2 * p)
                    rest = 2.0 * fill - 1.0
                    if rest > EPS:
                        new_partial = (2 * p + 1, rest)
                else:
                    new_partial = (2 * p, 2.0 * fill)
            region.full = new_full
            region.partial = new_partial
            for p in region.partitions():
                new_owner[p] = sid
        self.n_partitions = new_p
        self._owner = new_owner

    # ------------------------------------------------------------------ #
    # auditing
    # ------------------------------------------------------------------ #
    def check_invariants(self, complete: bool = True) -> None:
        """Audit structural invariants; raise :class:`InvariantViolation`.

        Parameters
        ----------
        complete:
            When ``True`` (a layout between tuning rounds) additionally
            require total mapped measure == 1/2 and at least one
            completely free partition.
        """
        seen: Dict[int, object] = {}
        for sid, region in self._regions.items():
            for p in region.partitions():
                if not 0 <= p < self.n_partitions:
                    raise InvariantViolation(f"partition {p} out of range for {sid!r}")
                if p in seen:
                    raise InvariantViolation(
                        f"partition {p} owned by both {seen[p]!r} and {sid!r}"
                    )
                seen[p] = sid
                if self._owner[p] != sid:
                    raise InvariantViolation(
                        f"owner index stale at partition {p}: "
                        f"{self._owner[p]!r} != {sid!r}"
                    )
            if region.partial is not None:
                fill = region.partial[1]
                if not (EPS < fill < 1.0 - EPS):
                    raise InvariantViolation(
                        f"partial fill {fill} of {sid!r} outside (0, 1)"
                    )
        for p, owner in enumerate(self._owner):
            if owner is not None and p not in seen:
                raise InvariantViolation(f"owner index claims {owner!r} at free partition {p}")
        if self._regions and self.n_partitions < required_partitions(len(self._regions)):
            raise InvariantViolation(
                f"{self.n_partitions} partitions insufficient for {len(self._regions)} servers"
            )
        if complete and self._regions:
            total = self.total_mapped
            if abs(total - HALF) > 1e-6:
                raise InvariantViolation(
                    f"half-occupancy violated: total mapped measure {total:.9f}"
                )
            if not self.free_partitions():
                raise InvariantViolation("no completely free partition available")

    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return (
            f"<IntervalLayout P={self.n_partitions} servers={self.n_servers} "
            f"mapped={self.total_mapped:.4f}>"
        )


def region_difference(a: IntervalLayout, b: IntervalLayout) -> float:
    """Measure of the set of offsets whose owner differs between layouts.

    Computed exactly by sweeping the union of both layouts' breakpoints.
    Used by tests and the movement metrics to verify that region scaling
    moves only the marginal slices.
    """
    breakpoints = {0.0, 1.0}
    for layout in (a, b):
        for segs in layout.segments().values():
            for start, end in segs:
                breakpoints.add(start)
                breakpoints.add(end)
    pts = sorted(breakpoints)
    moved = 0.0
    for lo, hi in zip(pts, pts[1:]):
        if hi - lo <= EPS:
            continue
        mid = (lo + hi) / 2.0
        if a.owner_at(mid) != b.owner_at(mid):
            moved += hi - lo
    return moved


__all__.append("region_difference")
