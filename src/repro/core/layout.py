"""Layout engine: turning target region lengths into concrete layouts.

The tuning controller (:mod:`repro.core.tuning`) decides *how long* each
server's mapped region should be; this module decides *where* the
regions sit, mutating an :class:`~repro.core.interval.IntervalLayout`
with the minimum possible disturbance:

* shrinks are applied before grows, so grown measure always lands in
  partitions the shrinkers just released (or were already free);
* each server shrinks from the tip of its region (LIFO partial-first
  order, implemented by the interval primitives), so the retained key
  space — and the caches behind it — is the oldest;
* membership changes (admit/evict, which the paper equates with
  recovery/addition and failure/removal) re-scale the survivors
  proportionally, which is exactly the paper's "all other servers are
  scaled back to preserve the half-occupancy invariant".

All operations leave the layout satisfying ``check_invariants()``.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from .errors import ConfigurationError, UnknownServerError
from .interval import EPS, HALF, IntervalLayout

__all__ = ["LayoutEngine"]


class LayoutEngine:
    """Applies target lengths and membership changes to a layout.

    Parameters
    ----------
    floor_length:
        Target lengths below this are snapped to zero. This lets the
        controller park "incompetent" servers (paper §5.2.2: extremely
        weak servers are allowed to sit idle) instead of leaving them
        slivers that would keep attracting the odd file set.
    """

    def __init__(self, floor_length: float = 1e-6) -> None:
        if floor_length < 0:
            raise ConfigurationError(f"floor_length must be >= 0, got {floor_length}")
        self.floor_length = float(floor_length)

    # ------------------------------------------------------------------ #
    @staticmethod
    def normalize(targets: Mapping[object, float]) -> Dict[object, float]:
        """Scale nonnegative ``targets`` so they sum to exactly 1/2.

        A degenerate all-zero target map (every server parked) is
        rejected — the system must keep at least some capacity mapped.
        """
        cleaned = {sid: max(0.0, float(v)) for sid, v in targets.items()}
        total = sum(cleaned.values())
        if total <= 0:
            raise ConfigurationError("all target lengths are zero; nothing to map")
        scale = HALF / total
        return {sid: v * scale for sid, v in cleaned.items()}

    def floor_and_normalize(self, targets: Mapping[object, float]) -> Dict[object, float]:
        """Snap sub-floor targets to zero, then normalize to 1/2.

        If flooring would zero *every* server (all targets tiny but not
        all zero), the floor is waived and the raw proportions are used
        — the cluster must always keep some capacity mapped.
        """
        floored = {
            sid: (0.0 if v < self.floor_length else max(0.0, float(v)))
            for sid, v in targets.items()
        }
        total = sum(floored.values())
        if total <= 0:
            floored = {sid: max(0.0, float(v)) for sid, v in targets.items()}
            total = sum(floored.values())
        if total < 1e-12:
            # Degenerate input (all zero or subnormal): dividing by the
            # total would overflow. Keep everyone at an equal share.
            floored = {sid: 1.0 for sid in targets}
        return self.normalize(floored)

    def apply_targets(self, layout: IntervalLayout, targets: Mapping[object, float]) -> None:
        """Mutate ``layout`` so each server's length matches ``targets``.

        ``targets`` must cover exactly the servers in the layout; values
        are normalized to sum to 1/2 after flooring tiny values to zero.
        """
        if set(targets) != set(layout.server_ids):
            missing = set(layout.server_ids) - set(targets)
            extra = set(targets) - set(layout.server_ids)
            raise UnknownServerError(
                f"target map mismatch: missing={sorted(map(repr, missing))} "
                f"extra={sorted(map(repr, extra))}"
            )
        goal = self.floor_and_normalize(targets)
        current = layout.lengths()
        # Shrink first (largest shrink first for determinism), then grow.
        deltas = {sid: goal[sid] - current[sid] for sid in goal}
        shrinkers = sorted(
            (sid for sid, d in deltas.items() if d < -EPS),
            key=lambda sid: (deltas[sid], repr(sid)),
        )
        growers = sorted(
            (sid for sid, d in deltas.items() if d > EPS),
            key=lambda sid: (-deltas[sid], repr(sid)),
        )
        for sid in shrinkers:
            layout.shrink(sid, -deltas[sid])
        for sid in growers:
            layout.grow(sid, deltas[sid])
        layout.check_invariants()

    # ------------------------------------------------------------------ #
    def admit(
        self,
        layout: IntervalLayout,
        server_id: object,
        initial_length: Optional[float] = None,
    ) -> None:
        """Add (or recover) a server, re-scaling incumbents to make room.

        The newcomer receives ``initial_length`` (default: an equal share
        ``1/(2 * k_new)``); incumbents are scaled by a common factor so
        the half-occupancy invariant is restored. Re-partitioning, if the
        new server count requires it, happens inside
        :meth:`IntervalLayout.add_server` and moves no load.
        """
        layout.add_server(server_id)
        k_new = layout.n_servers
        length = HALF / k_new if initial_length is None else float(initial_length)
        if not 0.0 <= length <= HALF:
            raise ConfigurationError(f"initial_length {length} outside [0, 1/2]")
        targets = {sid: v for sid, v in layout.lengths().items() if sid != server_id}
        incumbent_total = sum(targets.values())
        if incumbent_total > 0:
            scale = (HALF - length) / incumbent_total
            targets = {sid: v * scale for sid, v in targets.items()}
        targets[server_id] = length
        self.apply_targets(layout, targets)

    def evict(self, layout: IntervalLayout, server_id: object) -> None:
        """Remove (or fail) a server, re-scaling survivors to fill in.

        Survivors grow proportionally to their current lengths so that
        the half-occupancy invariant is restored; only the departed
        server's file sets re-hash (paper §4: "Only the file set(s) that
        were served previously by the failed server are re-hashed").
        """
        layout.remove_server(server_id)
        if layout.n_servers == 0:
            return
        survivors = layout.lengths()
        total = sum(survivors.values())
        if total <= 0:
            # All survivors were parked at zero; give them equal shares.
            survivors = {sid: 1.0 for sid in survivors}
        self.apply_targets(layout, survivors)
