"""The ANU randomization manager — the paper's primary contribution.

:class:`ANUManager` ties the pieces together:

* the :class:`~repro.core.hashing.HashFamily` that maps file-set names
  to unit-interval offsets (with re-hashing on unmapped misses),
* the :class:`~repro.core.interval.IntervalLayout` holding each
  server's mapped region under the half-occupancy invariant,
* the :class:`~repro.core.layout.LayoutEngine` that re-shapes regions
  with minimal movement, and
* the pluggable tuning rule — any :class:`repro.control.Controller`;
  the paper's multiplicative :class:`~repro.core.tuning.TuningPolicy`
  by default.

It maintains the authoritative file-set → server assignment, and every
reconfiguration (tuning round, failure, recovery, commissioning,
decommissioning) returns the exact set of *shed* file sets — "file sets
that it served in the previous configuration that are served by another
server in the current configuration" (§4) — so the cluster model can
charge cache-flush and cold-cache costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .errors import LookupExhaustedError, UnknownServerError
from .hashing import HashFamily
from .interval import IntervalLayout
from .layout import LayoutEngine
from .tuning import IncompetenceDetector, LatencyReport, TuningPolicy

__all__ = ["Shed", "Reconfiguration", "ANUManager"]


@dataclass(frozen=True)
class Shed:
    """One file set moving between servers.

    ``source`` is ``None`` for a file set assigned for the first time
    (registration) or whose previous server failed.
    """

    fileset: str
    source: Optional[object]
    target: object


@dataclass
class Reconfiguration:
    """Result of one layout change (tuning round or membership event).

    Attributes
    ----------
    kind:
        ``"tune"``, ``"add"``, ``"remove"``, ``"fail"`` or ``"recover"``.
    round_index:
        Monotone counter of reconfigurations.
    average_latency:
        The delegate's system average (``nan`` for membership events).
    lengths_before / lengths_after:
        Mapped-region lengths around the change.
    sheds:
        File sets that changed servers, with old and new owner.
    newly_incompetent:
        Servers first flagged by the incompetence detector this round.
    """

    kind: str
    round_index: int
    average_latency: float
    lengths_before: Dict[object, float]
    lengths_after: Dict[object, float]
    sheds: List[Shed] = field(default_factory=list)
    newly_incompetent: List[object] = field(default_factory=list)

    @property
    def moved(self) -> int:
        """Number of file sets that changed servers."""
        return len(self.sheds)


class ANUManager:
    """Adaptive, non-uniform randomized placement of file sets.

    Parameters
    ----------
    server_ids:
        Initial cluster membership. Regions start equal-length (the
        system has no a-priori knowledge of capability).
    hash_family:
        Shared addressing family; defaults to ``HashFamily(seed=0)``.
        All nodes must use the same family — it *is* the addressing
        scheme.
    policy:
        Tuning-rule configuration: a :class:`TuningPolicy` (historical
        spelling) or any :class:`repro.control.Controller`.
    n_partitions:
        Override the initial partition count (testing only); defaults to
        the paper's ``2^(ceil(lg k) + 1)``.
    controller:
        Explicit :class:`repro.control.Controller`; takes precedence
        over ``policy``. Defaults to
        :func:`repro.control.default_controller`.

    Example
    -------
    >>> mgr = ANUManager(server_ids=[0, 1, 2])
    >>> mgr.register_filesets(["/home", "/var", "/srv"])
    >>> server, probes = mgr.lookup("/home")
    >>> server in (0, 1, 2) and probes >= 1
    True
    """

    def __init__(
        self,
        server_ids: Sequence[object],
        hash_family: Optional[HashFamily] = None,
        policy: Optional[object] = None,
        n_partitions: Optional[int] = None,
        detector: Optional[IncompetenceDetector] = None,
        controller: Optional[object] = None,
    ) -> None:
        # Lazy import: repro.core and repro.control sit side by side,
        # and a module-level import here would cycle their package
        # initialization (importing repro.control first triggers
        # repro.core.__init__, which imports this module).
        from ..control import as_controller

        self.hash_family = hash_family or HashFamily()
        self.controller = as_controller(
            controller if controller is not None else policy
        )
        #: Back-compat view: the wrapped TuningPolicy when the rule is
        #: the multiplicative one, else ``None``.
        self.policy: Optional[TuningPolicy] = getattr(
            self.controller, "policy", None
        )
        self.engine = LayoutEngine(floor_length=self.controller.floor_length)
        self.layout = IntervalLayout.initial(list(server_ids), n_partitions)
        self.detector = detector or IncompetenceDetector()
        self._assignments: Dict[str, object] = {}
        self._round = 0
        #: Layout-configuration epoch. Bumped on every reconfiguration;
        #: the lookup memo below is only valid within one epoch.
        self._epoch = 0
        # name -> (server, probes) memo for the *current* layout epoch.
        # Cleared (and the epoch bumped) before any reassignment runs,
        # so a stale entry can never survive a layout change.
        self._lookup_memo: Dict[str, Tuple[object, int]] = {}
        #: Cumulative count of shed file sets across all reconfigurations.
        self.total_sheds = 0
        # Observers invoked with every finished Reconfiguration (the
        # chaos harness hangs its invariant checker here). Hooks run
        # synchronously inside the reconfiguration, so a hook that
        # raises fails the membership/tuning call itself — fail-fast.
        self._reconfig_hooks: List[Callable[[Reconfiguration], None]] = []
        #: Lookup-cost counters (for the expected-two-probes property).
        self.total_lookups = 0
        self.total_probes = 0

    # ------------------------------------------------------------------ #
    # addressing
    # ------------------------------------------------------------------ #
    def lookup(self, name: str) -> Tuple[object, int]:
        """Locate the server for ``name`` by (re-)hashing.

        Returns ``(server_id, probes_used)``. Raises
        :class:`LookupExhaustedError` if every probe in the family's
        budget lands in unmapped space (probability ``2^-max_probes``
        on an intact layout).
        """
        memo = self._lookup_memo
        hit = memo.get(name)
        if hit is not None:
            # Memo entries are valid for the current epoch only; the
            # dict is cleared on every reconfiguration. Probe counters
            # still advance so mean_probes matches the uncached cost.
            self.total_lookups += 1
            self.total_probes += hit[1]
            return hit
        for r, offset in enumerate(self.hash_family.probe_sequence(name)):
            owner = self.layout.owner_at(offset)
            if owner is not None:
                self.total_lookups += 1
                self.total_probes += r + 1
                memo[name] = result = (owner, r + 1)
                return result
        raise LookupExhaustedError(
            f"no mapped region hit for {name!r} in "
            f"{self.hash_family.max_probes} probes"
        )

    @property
    def mean_probes(self) -> float:
        """Observed mean probes per lookup (≈ 2 under half occupancy)."""
        return self.total_probes / self.total_lookups if self.total_lookups else float("nan")

    @property
    def cache_epoch(self) -> int:
        """Current layout epoch (bumped on every reconfiguration)."""
        return self._epoch

    # ------------------------------------------------------------------ #
    # file-set registry
    # ------------------------------------------------------------------ #
    def register_fileset(self, name: str) -> object:
        """Add ``name`` to the managed set; returns its server."""
        if name in self._assignments:
            return self._assignments[name]
        server, _ = self.lookup(name)
        self._assignments[name] = server
        return server

    def register_filesets(self, names: Iterable[str]) -> Dict[str, object]:
        """Register many file sets; returns the name → server map."""
        return {name: self.register_fileset(name) for name in names}

    def unregister_fileset(self, name: str) -> None:
        """Remove ``name`` from the managed set."""
        self._assignments.pop(name, None)

    def assignment_of(self, name: str) -> object:
        """Current server of a registered file set."""
        try:
            return self._assignments[name]
        except KeyError:
            raise KeyError(f"file set {name!r} is not registered") from None

    @property
    def assignments(self) -> Dict[str, object]:
        """Copy of the full file-set → server map."""
        return dict(self._assignments)

    def filesets_on(self, server_id: object) -> List[str]:
        """Names of file sets currently assigned to ``server_id``."""
        return [n for n, sid in self._assignments.items() if sid == server_id]

    def load_counts(self) -> Dict[object, int]:
        """Number of file sets per server (all servers, zeros included)."""
        counts = {sid: 0 for sid in self.layout.server_ids}
        for sid in self._assignments.values():
            counts[sid] += 1
        return counts

    # ------------------------------------------------------------------ #
    # reconfiguration
    # ------------------------------------------------------------------ #
    def use_controller(self, controller: object) -> None:
        """Swap the tuning rule in before the control loop starts.

        Used by :class:`~repro.engine.builder.ExperimentSpec` to inject
        the experiment's controller; swapping mid-run would discard a
        stateful controller's replicated state, so do this at assembly
        time only.
        """
        from ..control import as_controller

        self.controller = as_controller(controller)
        self.policy = getattr(self.controller, "policy", None)
        self.engine = LayoutEngine(floor_length=self.controller.floor_length)

    def tune(self, reports: Sequence[LatencyReport]) -> Reconfiguration:
        """Run one delegate tuning round.

        Scales regions around the system-average latency, reassigns the
        file sets whose lookups changed, and returns the full record.
        """
        before = self.layout.lengths()
        targets = self.controller.observe(before, reports)
        self.engine.apply_targets(self.layout, targets)
        return self._finish(
            kind="tune",
            average=self.controller.system_average(reports),
            before=before,
        )

    def add_server(self, server_id: object, initial_length: Optional[float] = None) -> Reconfiguration:
        """Commission (or recover) a server.

        A free partition is guaranteed by the half-occupancy invariant;
        incumbents scale back proportionally.
        """
        before = self.layout.lengths()
        self.engine.admit(self.layout, server_id, initial_length)
        return self._finish(kind="add", average=float("nan"), before=before)

    def recover_server(self, server_id: object, initial_length: Optional[float] = None) -> Reconfiguration:
        """Alias of :meth:`add_server` (the paper treats them identically)."""
        rec = self.add_server(server_id, initial_length)
        rec.kind = "recover"
        return rec

    def remove_server(self, server_id: object) -> Reconfiguration:
        """Decommission a server; its file sets re-hash to survivors."""
        if server_id not in self.layout.server_ids:
            raise UnknownServerError(f"server {server_id!r} not in layout")
        before = self.layout.lengths()
        self.engine.evict(self.layout, server_id)
        return self._finish(kind="remove", average=float("nan"), before=before)

    def fail_server(self, server_id: object) -> Reconfiguration:
        """Alias of :meth:`remove_server` (failure == decommission)."""
        rec = self.remove_server(server_id)
        rec.kind = "fail"
        return rec

    # ------------------------------------------------------------------ #
    def _finish(self, kind: str, average: float, before: Dict[object, float]) -> Reconfiguration:
        # The layout just changed: invalidate the lookup memo *before*
        # reassignment so every lookup below sees the new regions (and
        # re-warms the memo for the new epoch).
        self._epoch += 1
        self._lookup_memo.clear()
        sheds = self._reassign()
        self._round += 1
        self.total_sheds += len(sheds)
        after = self.layout.lengths()
        newly = self.detector.observe(after) if kind == "tune" else []
        rec = Reconfiguration(
            kind=kind,
            round_index=self._round,
            average_latency=average,
            lengths_before=before,
            lengths_after=after,
            sheds=sheds,
            newly_incompetent=newly,
        )
        for hook in self._reconfig_hooks:
            hook(rec)
        return rec

    def add_reconfiguration_hook(self, hook: Callable[[Reconfiguration], None]) -> None:
        """Invoke ``hook(rec)`` after every reconfiguration (fail-fast)."""
        self._reconfig_hooks.append(hook)

    def _reassign(self) -> List[Shed]:
        """Recompute every registered file set's server; collect sheds."""
        sheds: List[Shed] = []
        live = set(self.layout.server_ids)
        for name, old in self._assignments.items():
            new, _ = self.lookup(name)
            if new != old:
                sheds.append(Shed(name, old if old in live else None, new))
                self._assignments[name] = new
        return sheds

    # ------------------------------------------------------------------ #
    @property
    def round_index(self) -> int:
        """Number of reconfigurations performed so far."""
        return self._round

    def lengths(self) -> Dict[object, float]:
        """Current mapped-region length per server."""
        return self.layout.lengths()

    def shared_state_entries(self) -> int:
        """Replicated-state size: (server, segment) descriptor count."""
        return self.layout.shared_state_entries()

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return (
            f"<ANUManager servers={self.layout.n_servers} "
            f"filesets={len(self._assignments)} round={self._round}>"
        )
