"""Hash family and unit-interval addressing.

ANU randomization hashes the *unique name* of each file set to an offset
in the unit interval (its "hashed offset", §4 of the paper). Offsets
falling into unmapped regions are re-hashed "using the next hash function
among an agreed upon family of hash functions" until they land in a
mapped region.

:class:`HashFamily` provides that agreed-upon family: ``h_r(name)`` is a
salted BLAKE2b digest interpreted as a 64-bit fraction. The family is

* deterministic — every node computes the same offsets with no shared
  state beyond the family seed (this is the paper's "efficient
  addressing" property);
* uniform — digest bits are uniform on [0, 1) for any name distribution;
* independent across rounds — each round uses a distinct salt.

Vectorized batch helpers are provided because experiments hash tens of
thousands of names; hashing is never the bottleneck but the batch API
keeps the analysis code idiomatic NumPy.

Probe offsets are memoized per name: ``h_r(name)`` is a pure function
of ``(seed, name, r)``, so once computed it is valid forever. Lookups
re-probe the same bounded catalog of file-set names on every
reconfiguration, which without the memo re-runs BLAKE2b for every
(name, round) pair each time. The memo is derived state and is
excluded from pickles (workers rebuild it on demand).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Sequence

import numpy as np

from .errors import ConfigurationError

__all__ = ["HashFamily", "DEFAULT_MAX_PROBES"]

#: Probe budget for re-hashing. Each probe misses a half-occupied
#: interval with probability 1/2, so 64 probes fail with p = 2^-64.
DEFAULT_MAX_PROBES = 64

_TWO64 = float(2**64)


class HashFamily:
    """A family of independent hash functions onto the unit interval.

    Parameters
    ----------
    seed:
        Family seed. Two families with the same seed are identical —
        this is what makes addressing shared-state-free: every cluster
        node derives the same family from a single agreed integer.
    max_probes:
        Number of rounds available for re-hashing.
    """

    def __init__(self, seed: int = 0, max_probes: int = DEFAULT_MAX_PROBES) -> None:
        if max_probes < 1:
            raise ConfigurationError(f"max_probes must be >= 1, got {max_probes}")
        self.seed = int(seed)
        self.max_probes = int(max_probes)
        # Pre-compute per-round salts once; hashing is on the hot path of
        # every placement lookup.
        self._salts: List[bytes] = [
            self.seed.to_bytes(8, "little", signed=False) + r.to_bytes(4, "little")
            for r in range(self.max_probes)
        ]
        # name -> probe offsets computed so far (grown lazily, in round
        # order). Offsets are pure in (seed, name, round), so entries
        # never need invalidation.
        self._probe_cache: Dict[str, List[float]] = {}

    # ------------------------------------------------------------------ #
    def _grow_probes(self, name: str, upto: int) -> List[float]:
        """Return ``name``'s cached offsets, extended to ``upto`` rounds."""
        offs = self._probe_cache.get(name)
        if offs is None:
            offs = self._probe_cache[name] = []
        if len(offs) < upto:
            encoded = name.encode("utf-8")
            blake2b = hashlib.blake2b
            salts = self._salts
            for r in range(len(offs), upto):
                digest = blake2b(encoded, digest_size=8, salt=salts[r]).digest()
                offs.append(int.from_bytes(digest, "little") / _TWO64)
        return offs

    def offset(self, name: str, round_: int = 0) -> float:
        """Hashed offset of ``name`` in [0, 1) for probe ``round_``."""
        if not 0 <= round_ < self.max_probes:
            raise ConfigurationError(
                f"round {round_} outside probe budget [0, {self.max_probes})"
            )
        offs = self._probe_cache.get(name)
        if offs is None or round_ >= len(offs):
            offs = self._grow_probes(name, round_ + 1)
        return offs[round_]

    def probe_sequence(self, name: str) -> Iterable[float]:
        """Lazily yield the offsets of ``name`` for rounds 0, 1, 2, ...

        Consumers stop at the first offset that lands in a mapped
        region; on average two values are consumed (half occupancy).
        Consumed rounds are memoized, so repeated sequences over the
        same catalog stop costing BLAKE2b digests.
        """
        offs = self._probe_cache.get(name)
        if offs is None:
            offs = self._probe_cache[name] = []
        for r in range(self.max_probes):
            if r >= len(offs):
                self._grow_probes(name, r + 1)
            yield offs[r]

    # ------------------------------------------------------------------ #
    def offsets(self, names: Sequence[str], round_: int = 0) -> np.ndarray:
        """Vectorized :meth:`offset` over many names (one round)."""
        return np.fromiter(
            (self.offset(n, round_) for n in names),
            dtype=np.float64,
            count=len(names),
        )

    def batch_offsets(self, names: Sequence[str], round_: int = 0) -> np.ndarray:
        """One probe round over many names, bypassing the per-name memo.

        :meth:`offsets` memoizes per name — right for the scalar lookup
        path, wrong for million-name batches, where a dict-of-lists
        costs more memory and time than the digests themselves. This
        digests straight into a float array; values are bit-identical
        to :meth:`offset` for every ``(name, round_)``.
        """
        if not 0 <= round_ < self.max_probes:
            raise ConfigurationError(
                f"round {round_} outside probe budget [0, {self.max_probes})"
            )
        salt = self._salts[round_]
        blake2b = hashlib.blake2b
        from_bytes = int.from_bytes
        out = np.empty(len(names), dtype=np.float64)
        for i, name in enumerate(names):
            digest = blake2b(name.encode("utf-8"), digest_size=8, salt=salt).digest()
            out[i] = from_bytes(digest, "little") / _TWO64
        return out

    def offset_matrix(self, names: Sequence[str], rounds: int) -> np.ndarray:
        """``(len(names), rounds)`` matrix of offsets.

        Used by analysis code (e.g. expected-probe-count studies) that
        wants the full probe sequence of a name set at once.
        """
        if rounds > self.max_probes:
            raise ConfigurationError(
                f"requested {rounds} rounds > probe budget {self.max_probes}"
            )
        out = np.empty((len(names), rounds), dtype=np.float64)
        for r in range(rounds):
            out[:, r] = self.offsets(names, r)
        return out

    def uniform_server_choice(self, name: str, n_servers: int) -> int:
        """Static uniform server assignment (the *simple randomization*
        baseline): ``floor(h_0(name) * n)``.

        Kept here so the baseline and ANU share one hashing substrate —
        differences in results are then attributable to the placement
        policy, not the hash.
        """
        if n_servers < 1:
            raise ConfigurationError(f"n_servers must be >= 1, got {n_servers}")
        return min(int(self.offset(name, 0) * n_servers), n_servers - 1)

    # -- pickling (the memo is derived state; ship only the identity) --- #
    def __getstate__(self) -> dict:
        return {"seed": self.seed, "max_probes": self.max_probes}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["seed"], state["max_probes"])  # type: ignore[misc]

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, HashFamily)
            and other.seed == self.seed
            and other.max_probes == self.max_probes
        )

    def __hash__(self) -> int:  # pragma: no cover - trivial
        return hash((self.seed, self.max_probes))

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return f"HashFamily(seed={self.seed}, max_probes={self.max_probes})"
