"""The adaptive tuning controller: latencies in, target lengths out.

Each tuning interval (two minutes in the paper), every server reports
the latency it delivered over the interval. The delegate "examines all
latencies and comes up with an 'average' value for the whole system
[and] scales down the mapped regions for servers above the average and
scales up the mapped regions for servers below the average" (§4).

The paper leaves the averaging rule and the scaling magnitudes to its
companion report [40]. We implement the stated contract exactly —
monotone scaling around a system average — and expose the unspecified
knobs:

* ``averaging``: arithmetic mean, request-weighted mean, or trimmed
  mean over the reporting servers;
* ``gain``: exponent of the multiplicative update
  ``factor_i = (avg / latency_i) ** gain``;
* ``max_step``: per-round clamp on the factor, which damps oscillation
  (the paper's "relatively conservative in moving load in response to
  short-term bursts");
* ``idle_policy``: what to do with servers that served nothing —
  ``"hold"`` keeps their region (the paper lets extremely weak servers
  sit idle), ``"grow"`` probes them back in with a small seed.

The averaging-rule ablation bench (A1 in DESIGN.md) shows the headline
results are insensitive to these choices.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set

from .errors import ConfigurationError
from .interval import HALF

#: Below this measure, a shed/grow mismatch is treated as closed.
EPS_DELTA = 1e-12

__all__ = [
    "LatencyReport",
    "arithmetic_mean",
    "weighted_mean",
    "trimmed_mean",
    "AVERAGING_RULES",
    "TuningPolicy",
    "IncompetenceDetector",
]


@dataclass(frozen=True)
class LatencyReport:
    """One server's performance report for a tuning interval.

    Attributes
    ----------
    server_id:
        Reporting server.
    mean_latency:
        Mean request latency (seconds) over the interval; ``nan`` when
        no requests completed.
    request_count:
        Number of requests completed in the interval.
    window:
        ``(start, end)`` of the interval in simulated time; purely
        diagnostic.
    """

    server_id: object
    mean_latency: float
    request_count: int = 0
    window: tuple = (0.0, 0.0)
    #: Consecutive idle intervals *including this one* (0 when active).
    #: Tracked by the reporting server, so the delegate can apply idle
    #: backoff while remaining stateless itself.
    idle_rounds: int = 0
    #: Mean latency of the server's *previous* interval (``nan`` when
    #: unknown). Lets the delegate require persistence before shrinking
    #: a server — a single bursty window must not trigger shedding —
    #: while itself remaining stateless.
    prev_mean_latency: float = float("nan")

    @property
    def is_idle(self) -> bool:
        """``True`` when the server completed no requests."""
        return self.request_count == 0 or math.isnan(self.mean_latency)


# --------------------------------------------------------------------- #
# averaging rules
# --------------------------------------------------------------------- #
def arithmetic_mean(reports: Sequence[LatencyReport]) -> float:
    """Plain mean of reported latencies (every server counts equally)."""
    vals = [r.mean_latency for r in reports]
    return sum(vals) / len(vals)


def weighted_mean(reports: Sequence[LatencyReport]) -> float:
    """Request-weighted mean — the latency an average *request* saw.

    This is the default: it matches the paper's application-facing
    framing (consistent performance for the *workload*) and makes a
    nearly idle server unable to drag the system average around.
    """
    total_req = sum(r.request_count for r in reports)
    if total_req == 0:
        return arithmetic_mean(reports)
    return sum(r.mean_latency * r.request_count for r in reports) / total_req


def trimmed_mean(reports: Sequence[LatencyReport], trim: float = 0.25) -> float:
    """Mean after dropping the ``trim`` fraction at each extreme.

    Robust to a single pathological server; degenerates to the plain
    mean when fewer than ``1 / trim`` servers report.
    """
    vals = sorted(r.mean_latency for r in reports)
    k = int(len(vals) * trim)
    core = vals[k : len(vals) - k] or vals
    return sum(core) / len(core)


#: Registry used by configuration files and the ablation bench.
AVERAGING_RULES: Dict[str, Callable[[Sequence[LatencyReport]], float]] = {
    "arithmetic": arithmetic_mean,
    "weighted": weighted_mean,
    "trimmed": trimmed_mean,
}


# --------------------------------------------------------------------- #
# the controller
# --------------------------------------------------------------------- #
@dataclass
class TuningPolicy:
    """Configuration of the region-scaling feedback controller.

    See the module docstring for the meaning of each knob. The defaults
    reproduce the paper's qualitative behaviour: convergence within a
    few rounds, conservative movement afterwards.
    """

    averaging: str = "weighted"
    gain: float = 0.3
    max_step: float = 1.5
    grow_step: float = 1.2
    deadband: float = 0.4
    idle_policy: str = "grow"
    idle_seed: float = 0.03
    idle_backoff: int = 5
    floor_length: float = 1e-4

    def __post_init__(self) -> None:
        if self.averaging not in AVERAGING_RULES:
            raise ConfigurationError(
                f"unknown averaging rule {self.averaging!r}; "
                f"options: {sorted(AVERAGING_RULES)}"
            )
        if self.gain <= 0:
            raise ConfigurationError(f"gain must be > 0, got {self.gain}")
        if self.max_step <= 1.0:
            raise ConfigurationError(f"max_step must be > 1, got {self.max_step}")
        if not 1.0 < self.grow_step <= self.max_step:
            raise ConfigurationError(
                f"grow_step must be in (1, max_step], got {self.grow_step}"
            )
        if self.idle_policy not in ("hold", "grow"):
            raise ConfigurationError(
                f"idle_policy must be 'hold' or 'grow', got {self.idle_policy!r}"
            )
        if not 0.0 <= self.idle_seed <= HALF:
            raise ConfigurationError(f"idle_seed {self.idle_seed} outside [0, 1/2]")
        if self.idle_backoff < 1:
            raise ConfigurationError(
                f"idle_backoff must be >= 1, got {self.idle_backoff}"
            )
        if self.deadband < 0:
            raise ConfigurationError(f"deadband must be >= 0, got {self.deadband}")

    # ------------------------------------------------------------------ #
    def system_average(self, reports: Sequence[LatencyReport]) -> float:
        """The delegate's "average" latency over the *active* reporters."""
        active = [r for r in reports if not r.is_idle]
        if not active:
            return math.nan
        return AVERAGING_RULES[self.averaging](active)

    def compute_targets(
        self,
        current_lengths: Mapping[object, float],
        reports: Sequence[LatencyReport],
    ) -> Dict[object, float]:
        """New target lengths from current lengths and interval reports.

        The result is *not yet normalized*; the layout engine normalizes
        to the half-occupancy sum when applying. Servers above the
        average get factors < 1, below-average servers factors > 1, each
        clamped to ``[1/max_step, max_step]``.
        """
        by_id = {r.server_id: r for r in reports}
        unknown = set(by_id) - set(current_lengths)
        if unknown:
            raise ConfigurationError(
                f"reports from servers not in the layout: {sorted(map(repr, unknown))}"
            )
        avg = self.system_average(reports)
        # Pass 1: per-server desired deltas. Servers inside the deadband
        # get delta 0 — this is the "relatively conservative in moving
        # load in response to short-term bursts" stance of §5.3: noise
        # around the average must not cause movement.
        deltas: Dict[object, float] = {}
        ratios: Dict[object, float] = {}  # latency / avg for active servers
        blocked: set = set()  # above band but not persistently: do not touch
        for sid, length in current_lengths.items():
            report = by_id.get(sid)
            if report is None or report.is_idle or math.isnan(avg) or avg <= 0:
                idle_rounds = report.idle_rounds if report is not None else 1
                deltas[sid] = self._idle_target(length, idle_rounds) - length
                continue
            latency = max(report.mean_latency, 1e-12)
            ratio = latency / avg
            ratios[sid] = ratio
            if abs(ratio - 1.0) <= self.deadband:
                deltas[sid] = 0.0
                continue
            if ratio > 1.0 and not self._persistently_slow(report, avg):
                # One bursty window is not a reason to shed: a heavy-
                # tailed arrival process produces isolated latency
                # spikes that resolve by themselves; shedding on them
                # turns the hot file set into a hot potato that
                # destabilizes server after server.
                deltas[sid] = 0.0
                blocked.add(sid)
                continue
            factor = (avg / latency) ** self.gain
            # Asymmetric clamp: shed up to max_step fast (an overloaded
            # server must get relief), but grow by at most grow_step —
            # growth overshoot drives the fastest server toward
            # saturation, where the next burst creates a storm.
            factor = min(max(factor, 1.0 / self.max_step), self.grow_step)
            deltas[sid] = length * (factor - 1.0)
        # Pass 2: make the update zero-sum. Shed measure must equal grown
        # measure so that servers inside the deadband keep *bit-identical*
        # regions — a global renormalization would ripple every boundary
        # every round and move file sets between perfectly healthy
        # servers (each arriving cache-cold), which destabilizes the
        # cluster under bursty arrivals.
        self._match_deltas(deltas, ratios, current_lengths, blocked)
        return {sid: current_lengths[sid] + deltas[sid] for sid in current_lengths}

    def _persistently_slow(self, report: LatencyReport, avg: float) -> bool:
        """Above-band latency in this *and* the previous window?

        A server with no previous-window information (first round, or
        just recovered) is treated as persistent — early convergence
        must not be delayed by the burst filter.
        """
        prev = report.prev_mean_latency
        if math.isnan(prev):
            return True
        return prev / avg > 1.0 + self.deadband

    def _match_deltas(
        self,
        deltas: Dict[object, float],
        ratios: Dict[object, float],
        lengths: Mapping[object, float],
        blocked: Optional[set] = None,
    ) -> None:
        """Balance shed against growth in place (zero-sum update).

        When shed exceeds growth demand, in-band servers *below* the
        average are drafted as recipients (weighted by how far below
        they sit); symmetrically, in-band servers above the average
        donate when growth exceeds shed. If drafting cannot close the
        gap, the larger side is scaled down — moving less is always
        safe, and an unmatched shrink would strand capacity.
        """
        blocked = blocked or set()
        shed = -sum(d for d in deltas.values() if d < 0)
        grow = sum(d for d in deltas.values() if d > 0)
        gap = shed - grow
        if abs(gap) > EPS_DELTA:
            if gap > 0:
                # Draft in-band, below-average servers to absorb measure.
                weights = {
                    sid: lengths[sid] * (1.0 - r)
                    for sid, r in ratios.items()
                    if deltas.get(sid, 0.0) == 0.0 and r < 1.0 and lengths[sid] > 0
                }
                absorbed = self._distribute(deltas, weights, gap, cap_sign=+1, lengths=lengths)
                remaining = gap - absorbed
                if remaining > EPS_DELTA and shed > 0:
                    scale = (shed - remaining) / shed
                    for sid, d in deltas.items():
                        if d < 0:
                            deltas[sid] = d * scale
            else:
                # Draft in-band, above-average servers to donate measure
                # (burst-blocked servers are exempt: donation is the
                # shedding the filter just vetoed).
                weights = {
                    sid: lengths[sid] * (r - 1.0)
                    for sid, r in ratios.items()
                    if deltas.get(sid, 0.0) == 0.0
                    and r > 1.0
                    and lengths[sid] > 0
                    and sid not in blocked
                }
                if not weights:
                    # Nobody is above average (a calm cluster): fund the
                    # growth — typically an idle-server probe — with a
                    # small proportional haircut across all active
                    # in-band servers. Without this fallback a parked
                    # server could never be probed back in.
                    weights = {
                        sid: lengths[sid]
                        for sid, r in ratios.items()
                        if deltas.get(sid, 0.0) == 0.0
                        and lengths[sid] > 0
                        and sid not in blocked
                    }
                donated = self._distribute(deltas, weights, -gap, cap_sign=-1, lengths=lengths)
                remaining = -gap - donated
                if remaining > EPS_DELTA and grow > 0:
                    scale = (grow - remaining) / grow
                    for sid, d in deltas.items():
                        if d > 0:
                            deltas[sid] = d * scale

    def _distribute(
        self,
        deltas: Dict[object, float],
        weights: Dict[object, float],
        amount: float,
        cap_sign: int,
        lengths: Mapping[object, float],
    ) -> float:
        """Spread ``amount`` across ``weights`` keys, capped per server.

        ``cap_sign=+1`` grows recipients (cap: ``max_step`` expansion);
        ``cap_sign=-1`` shrinks donors (cap: ``1/max_step`` reduction).
        Returns the measure actually placed.
        """
        total_w = sum(weights.values())
        placed = 0.0
        if total_w <= 0 or amount <= 0:
            return 0.0
        for sid, w in weights.items():
            share = amount * w / total_w
            if cap_sign > 0:
                cap = lengths[sid] * (self.grow_step - 1.0)
            else:
                cap = lengths[sid] * (1.0 - 1.0 / self.max_step)
            take = min(share, cap)
            deltas[sid] = deltas.get(sid, 0.0) + cap_sign * take
            placed += take
        return placed

    def _idle_target(self, length: float, idle_rounds: int = 1) -> float:
        if self.idle_policy == "hold":
            return length
        # "grow": probe the idle server back in with a seed-sized region,
        # but only every ``idle_backoff`` rounds so that a genuinely weak
        # server "mostly sits idle" (§5.2.2) instead of churning file
        # sets every interval.
        if idle_rounds % self.idle_backoff == 0:
            return max(length, self.idle_seed)
        return length


class IncompetenceDetector:
    """Flags servers the controller has effectively parked.

    The paper: "ANU randomization identifies such incompetent components
    and notifies administrators" (§5.2.2). A server is flagged after its
    mapped region stays below ``threshold`` for ``patience`` consecutive
    tuning rounds.
    """

    def __init__(self, threshold: float = 1e-3, patience: int = 5) -> None:
        if patience < 1:
            raise ConfigurationError(f"patience must be >= 1, got {patience}")
        self.threshold = float(threshold)
        self.patience = int(patience)
        self._streak: Dict[object, int] = {}
        self._flagged: Set[object] = set()

    def observe(self, lengths: Mapping[object, float]) -> List[object]:
        """Feed one round of post-tuning lengths; returns *newly* flagged ids."""
        newly = []
        for sid, length in lengths.items():
            if length < self.threshold:
                self._streak[sid] = self._streak.get(sid, 0) + 1
                if self._streak[sid] >= self.patience and sid not in self._flagged:
                    self._flagged.add(sid)
                    newly.append(sid)
            else:
                self._streak[sid] = 0
                self._flagged.discard(sid)
        # Forget servers that left the layout.
        for sid in list(self._streak):
            if sid not in lengths:
                del self._streak[sid]
                self._flagged.discard(sid)
        return newly

    @property
    def flagged(self) -> Set[object]:
        """Servers currently flagged as incompetent."""
        return set(self._flagged)
