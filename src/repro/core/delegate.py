"""The stateless delegate decision procedure.

"At the end of each interval, each server computes its latency in the
past interval and reports it to an elected delegate server. ... The
delegate is designed to be stateless and determines the new load
configuration based solely on reported latencies. If the delegate
fails, the next elected delegate runs the same protocol with the same
information." (§4)

:class:`Delegate` is that pure decision procedure: given the replicated
layout (lengths) and the round's reports, produce the new target
lengths. Statelessness is load-bearing for fault tolerance — the test
suite asserts that two delegate instances given identical inputs emit
identical decisions, which is what makes delegate fail-over free.

The decision *rule* is pluggable: any :class:`repro.control.Controller`
(the paper's multiplicative rule by default). A controller with
internal state (PI integrator, EWMA filter) treats that state as
replicated alongside the layout — a newly elected delegate receives it
via ``Controller.fork()`` and reaches the identical decision, so the
fail-over guarantee survives the generalization.

The message-passing and election machinery that *hosts* a delegate
lives in :mod:`repro.distributed`; this module is deliberately free of
any simulator dependency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

from .layout import LayoutEngine
from .tuning import LatencyReport, TuningPolicy

__all__ = ["Decision", "Delegate"]


@dataclass(frozen=True)
class Decision:
    """The delegate's output for one tuning round.

    ``targets`` are *normalized* lengths (summing to 1/2) — exactly the
    new mapping of servers to the unit interval that the delegate
    distributes to all servers, "the only replicated state needed by
    our algorithm" (§4).
    """

    average_latency: float
    targets: Dict[object, float]


class Delegate:
    """Stateless tuning decision procedure.

    Any server can instantiate one with the (agreed, replicated)
    controller and produce the round's decision from the reports alone.
    ``policy`` accepts the historical :class:`TuningPolicy` spelling; a
    :class:`repro.control.Controller` may be passed positionally there
    or via ``controller=``. The default is
    :func:`repro.control.default_controller`.
    """

    def __init__(
        self,
        policy: Optional[object] = None,
        controller: Optional[object] = None,
    ) -> None:
        # Lazy import: repro.core and repro.control sit side by side,
        # and a module-level import here would cycle their package
        # initialization (importing repro.control first triggers
        # repro.core.__init__, which imports this module).
        from ..control import as_controller

        self.controller = as_controller(
            controller if controller is not None else policy
        )
        #: Back-compat view: the wrapped TuningPolicy when the rule is
        #: the multiplicative one, else ``None``.
        self.policy: Optional[TuningPolicy] = getattr(
            self.controller, "policy", None
        )
        self._engine = LayoutEngine(floor_length=self.controller.floor_length)

    def decide(
        self,
        current_lengths: Mapping[object, float],
        reports: Sequence[LatencyReport],
    ) -> Decision:
        """Compute the new normalized target lengths for this round.

        Deterministic in its inputs and the controller's replicated
        state, so a freshly elected delegate (holding a
        ``Controller.fork()`` of that state) reaches the identical
        decision from the same reports.
        """
        raw = self.controller.observe(current_lengths, reports)
        targets = self._engine.floor_and_normalize(raw)
        return Decision(
            average_latency=self.controller.system_average(reports),
            targets=targets,
        )
