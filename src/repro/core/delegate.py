"""The stateless delegate decision procedure.

"At the end of each interval, each server computes its latency in the
past interval and reports it to an elected delegate server. ... The
delegate is designed to be stateless and determines the new load
configuration based solely on reported latencies. If the delegate
fails, the next elected delegate runs the same protocol with the same
information." (§4)

:class:`Delegate` is that pure decision procedure: given the replicated
layout (lengths) and the round's reports, produce the new target
lengths. Statelessness is load-bearing for fault tolerance — the test
suite asserts that two delegate instances given identical inputs emit
identical decisions, which is what makes delegate fail-over free.

The message-passing and election machinery that *hosts* a delegate
lives in :mod:`repro.distributed`; this module is deliberately free of
any simulator dependency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

from .layout import LayoutEngine
from .tuning import LatencyReport, TuningPolicy

__all__ = ["Decision", "Delegate"]


@dataclass(frozen=True)
class Decision:
    """The delegate's output for one tuning round.

    ``targets`` are *normalized* lengths (summing to 1/2) — exactly the
    new mapping of servers to the unit interval that the delegate
    distributes to all servers, "the only replicated state needed by
    our algorithm" (§4).
    """

    average_latency: float
    targets: Dict[object, float]


class Delegate:
    """Stateless tuning decision procedure.

    Any server can instantiate one with the (agreed, replicated) policy
    and produce the round's decision from the reports alone.
    """

    def __init__(self, policy: Optional[TuningPolicy] = None) -> None:
        self.policy = policy or TuningPolicy()
        self._engine = LayoutEngine(floor_length=self.policy.floor_length)

    def decide(
        self,
        current_lengths: Mapping[object, float],
        reports: Sequence[LatencyReport],
    ) -> Decision:
        """Compute the new normalized target lengths for this round.

        Deterministic in its inputs: no internal state is read or
        written, so a freshly elected delegate reaches the identical
        decision from the same reports.
        """
        raw = self.policy.compute_targets(current_lengths, reports)
        targets = self._engine.floor_and_normalize(raw)
        return Decision(
            average_latency=self.policy.system_average(reports),
            targets=targets,
        )
