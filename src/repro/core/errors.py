"""Exception types for the ANU randomization core."""

from __future__ import annotations

__all__ = [
    "ANUError",
    "InvariantViolation",
    "UnknownServerError",
    "LookupExhaustedError",
    "ConfigurationError",
]


class ANUError(Exception):
    """Base class for ANU core errors."""


class InvariantViolation(ANUError):
    """A structural invariant was broken.

    The interval layer checks the half-occupancy invariant, the
    one-partial-partition-per-server invariant, and region disjointness
    after every mutation; any breach raises this. These checks are cheap
    (O(k)) and are kept on in production because a silently broken
    invariant corrupts placement for every subsequent lookup.
    """


class UnknownServerError(ANUError):
    """An operation referenced a server id not present in the layout."""


class LookupExhaustedError(ANUError):
    """All hash probes fell into unmapped regions.

    With half occupancy each probe misses with probability 1/2, so with
    the default 64-round probe budget this happens with probability
    2^-64 — reaching this exception in practice indicates a corrupted
    layout (e.g. total mapped measure far below 1/2).
    """


class ConfigurationError(ANUError):
    """Invalid parameter passed to a core component."""
