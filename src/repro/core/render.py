"""ASCII rendering of interval layouts.

A debugging and teaching aid: draws the unit interval as one character
cell per fraction of a partition, labeling each server's region — the
textual analogue of the paper's Figure 2/3 diagrams.

>>> from repro.core import IntervalLayout
>>> from repro.core.render import render_layout
>>> print(render_layout(IntervalLayout.initial([0, 1])))  # doctest: +SKIP
|000.|1100|....|....|   P=4, mapped=0.500
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .interval import IntervalLayout

__all__ = ["render_layout", "render_lengths_bar"]

#: Glyphs assigned to servers in id order; '.' is unmapped space.
_FREE = "."


def _glyph_map(layout: IntervalLayout) -> Dict[object, str]:
    glyphs = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
    out: Dict[object, str] = {}
    for i, sid in enumerate(sorted(layout.server_ids, key=repr)):
        out[sid] = glyphs[i % len(glyphs)]
    return out


def render_layout(layout: IntervalLayout, cells_per_partition: int = 4) -> str:
    """Render the layout: one line, ``cells_per_partition`` chars per
    partition, partitions separated by ``|``.

    Each cell shows the server occupying that slice of the partition
    (partial partitions show the prefix occupancy), or ``.`` if free.
    """
    if cells_per_partition < 1:
        raise ValueError("cells_per_partition must be >= 1")
    glyphs = _glyph_map(layout)
    p_width = 1.0 / layout.n_partitions
    cell = p_width / cells_per_partition
    parts: List[str] = []
    for p in range(layout.n_partitions):
        chars = []
        for c in range(cells_per_partition):
            x = p * p_width + (c + 0.5) * cell
            owner = layout.owner_at(x)
            chars.append(glyphs[owner] if owner is not None else _FREE)
        parts.append("".join(chars))
    legend = ", ".join(
        f"{glyphs[sid]}={sid!r}" for sid in sorted(layout.server_ids, key=repr)
    )
    return (
        "|" + "|".join(parts) + f"|   P={layout.n_partitions}, "
        f"mapped={layout.total_mapped:.3f}\n servers: {legend}"
    )


def render_lengths_bar(
    lengths: Dict[object, float], width: int = 50, labels: Optional[Dict[object, str]] = None
) -> str:
    """Horizontal bar chart of region lengths (one line per server)."""
    if width < 1:
        raise ValueError("width must be >= 1")
    if not lengths:
        return "(no servers)"
    peak = max(lengths.values()) or 1.0
    lines = []
    for sid in sorted(lengths, key=repr):
        value = lengths[sid]
        bar = "#" * max(0, round(value / peak * width))
        label = labels.get(sid, repr(sid)) if labels else repr(sid)
        lines.append(f"{label:>10} {value:8.4f} {bar}")
    return "\n".join(lines)
