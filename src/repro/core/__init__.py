"""ANU randomization — the paper's primary contribution.

Adaptive, non-uniform (ANU) randomization tunes hash-based randomized
load placement directly: file sets hash to a unit interval, servers own
non-overlapping regions of that interval summing to half its measure,
and a stateless delegate re-scales regions each tuning interval from
reported latencies.

Public surface:

* :class:`HashFamily` — the agreed family of hash functions
* :class:`IntervalLayout` / :func:`required_partitions` — interval geometry
* :class:`LayoutEngine` — minimal-movement region placement
* :class:`TuningPolicy` / :class:`LatencyReport` — the feedback controller
* :class:`Delegate` / :class:`Decision` — the stateless delegate
* :class:`ANUManager` — the façade gluing it all together
* :class:`MultiChoicePlacer` — optional SIEVE d-choice refinement
"""

from .anu import ANUManager, Reconfiguration, Shed
from .delegate import Decision, Delegate
from .errors import (
    ANUError,
    ConfigurationError,
    InvariantViolation,
    LookupExhaustedError,
    UnknownServerError,
)
from .hashing import DEFAULT_MAX_PROBES, HashFamily
from .interval import (
    EPS,
    IntervalLayout,
    ServerRegion,
    region_difference,
    required_partitions,
)
from .layout import LayoutEngine
from .multichoice import MultiChoicePlacer
from .render import render_layout, render_lengths_bar
from .tuning import (
    AVERAGING_RULES,
    IncompetenceDetector,
    LatencyReport,
    TuningPolicy,
    arithmetic_mean,
    trimmed_mean,
    weighted_mean,
)
from .vector import ProbeMatrix, SegmentTable, batched_locate, fifo_drain

__all__ = [
    "ANUManager",
    "Reconfiguration",
    "Shed",
    "Delegate",
    "Decision",
    "HashFamily",
    "DEFAULT_MAX_PROBES",
    "IntervalLayout",
    "ServerRegion",
    "required_partitions",
    "region_difference",
    "EPS",
    "LayoutEngine",
    "MultiChoicePlacer",
    "render_layout",
    "render_lengths_bar",
    "TuningPolicy",
    "LatencyReport",
    "IncompetenceDetector",
    "AVERAGING_RULES",
    "arithmetic_mean",
    "weighted_mean",
    "trimmed_mean",
    "SegmentTable",
    "ProbeMatrix",
    "batched_locate",
    "fifo_drain",
    "ANUError",
    "InvariantViolation",
    "UnknownServerError",
    "LookupExhaustedError",
    "ConfigurationError",
]
