"""Multiple-choice placement heuristic (SIEVE extension).

The paper's load-balance bound — each server holds ``ceil(m/n + 1)``
file sets with high probability — "depends on several factors including
a multiple choice heuristic that we have not described [5]" (§4). The
heuristic comes from the SIEVE strategy of Brinkmann et al.: instead of
taking the *first* mapped probe, examine the first ``d`` probes that
land in mapped regions and place the item on the least-loaded of those
candidate servers (the classic power-of-d-choices).

This is an *optional* refinement: it tightens balance from the
``m/n + Θ(lg n / lg lg n)`` of one-choice randomization to ``m/n + O(1)``,
at the cost of a small placement table (choices are no longer purely
hash-derivable). The balance-bound bench (A6 in DESIGN.md) measures
both regimes; the main cluster experiments use plain single-choice
lookup, as the paper's evaluation does.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .errors import ConfigurationError, LookupExhaustedError
from .hashing import HashFamily
from .interval import IntervalLayout

__all__ = ["MultiChoicePlacer"]


class MultiChoicePlacer:
    """Places items on the least-loaded of ``d`` mapped probe candidates.

    Parameters
    ----------
    layout:
        The interval layout that defines mapped regions.
    hash_family:
        The shared addressing family.
    d:
        Number of *distinct mapped servers* to consider per item.

    Notes
    -----
    Because the final choice depends on observed load, it cannot be
    re-derived from the hash alone; :attr:`placements` is the extra
    state a deployment would replicate (still O(items placed), and only
    for items whose choice differed from the first probe).
    """

    def __init__(self, layout: IntervalLayout, hash_family: HashFamily, d: int = 2) -> None:
        if d < 1:
            raise ConfigurationError(f"d must be >= 1, got {d}")
        self.layout = layout
        self.hash_family = hash_family
        self.d = int(d)
        #: item name -> chosen server, for items placed so far.
        self.placements: Dict[str, object] = {}
        #: per-server item counts (the load the heuristic balances).
        self.loads: Dict[object, int] = {sid: 0 for sid in layout.server_ids}

    # ------------------------------------------------------------------ #
    def candidates(self, name: str) -> List[object]:
        """First ``d`` *distinct* mapped servers in the probe sequence."""
        found: List[object] = []
        for offset in self.hash_family.probe_sequence(name):
            owner = self.layout.owner_at(offset)
            if owner is not None and owner not in found:
                found.append(owner)
                if len(found) == self.d:
                    return found
        if found:
            # Fewer than d distinct servers are mapped at all (tiny
            # clusters): fall back to however many we found.
            return found
        raise LookupExhaustedError(
            f"no mapped probe for {name!r} within the probe budget"
        )

    def place(self, name: str) -> object:
        """Place ``name`` on the least-loaded candidate; returns the server.

        Idempotent: re-placing a known item returns its recorded server
        without perturbing loads.
        """
        existing = self.placements.get(name)
        if existing is not None:
            return existing
        cands = self.candidates(name)
        # Deterministic tie-break on repr so runs are reproducible.
        chosen = min(cands, key=lambda sid: (self.loads.get(sid, 0), repr(sid)))
        self.placements[name] = chosen
        self.loads[chosen] = self.loads.get(chosen, 0) + 1
        return chosen

    def place_all(self, names: List[str]) -> Dict[object, int]:
        """Place every name; returns the final per-server load counts."""
        for name in names:
            self.place(name)
        return dict(self.loads)

    def table_entries(self) -> int:
        """Extra shared-state entries beyond the hash-derivable choice.

        Only items whose chosen server differs from their first-probe
        server need an explicit table row; everything else is derivable.
        """
        extra = 0
        for name, chosen in self.placements.items():
            for offset in self.hash_family.probe_sequence(name):
                owner = self.layout.owner_at(offset)
                if owner is not None:
                    if owner != chosen:
                        extra += 1
                    break
        return extra
