"""The simulated cluster interconnect.

Cluster control traffic (reports, mappings, shed notifications,
election and heartbeat probes) flows through a :class:`Network` with a
configurable one-way delay. Nodes are registered with an inbox
(:class:`repro.sim.Store`); delivery to a failed node silently drops
the message, which is what the election and heartbeat layers observe
as a timeout.

The network keeps per-kind traffic counters so experiments can report
control-plane cost next to shared-state size (ANU's pitch is small on
*both* axes).

Fault model (the chaos harness's substrate)
-------------------------------------------
Beyond whole-node down/up, the network models the link-level faults a
real interconnect exhibits, all of them deterministic given a seeded
``rng``:

* **partitions** — :meth:`set_partition` splits the nodes into groups
  that cannot exchange messages until :meth:`heal_partition`;
* **message drop / duplication / extra delay** —
  :meth:`set_link_faults` turns on per-message random loss,
  duplication and added latency, drawn from the injected ``rng`` so
  two runs with the same seed perturb the same messages.

:meth:`probe` is the liveness primitive the heartbeat layer uses: it
accounts for the probe/ack traffic and answers whether a round-trip
would currently succeed (destination up, reachable, and neither leg
dropped).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterable, Optional, Sequence

from ..sim import Simulator, Store
from .messages import Message, MessageKind

__all__ = ["Network"]


class Network:
    """Message transport between cluster nodes.

    Parameters
    ----------
    env:
        The simulator.
    delay:
        One-way delivery latency in seconds (LAN-scale default). A
        callable ``delay(msg) -> float`` may be supplied for
        distance-dependent topologies.
    rng:
        Seeded :class:`random.Random` driving the probabilistic link
        faults. Required before :meth:`set_link_faults` may enable a
        non-zero rate; a network without one is perfectly reliable.
    """

    def __init__(
        self,
        env: Simulator,
        delay: float | Callable[[Message], float] = 0.0005,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.env = env
        self._delay = delay
        self._rng = rng
        self._inboxes: Dict[object, Store] = {}
        self._down: set = set()
        # node -> partition group index; empty dict = no partition.
        # Nodes absent from an active partition map share group -1.
        self._partition_of: Dict[object, int] = {}
        # Probabilistic link-fault profile (0.0 = disabled).
        self.drop_rate = 0.0
        self.dup_rate = 0.0
        self.extra_delay = 0.0
        #: messages sent, per kind.
        self.sent_count: Dict[str, int] = {k: 0 for k in MessageKind.ALL}
        #: bytes sent, per kind.
        self.sent_bytes: Dict[str, int] = {k: 0 for k in MessageKind.ALL}
        #: messages dropped (destination down or unknown).
        self.dropped = 0
        #: messages dropped because src and dst were partitioned apart.
        self.partition_dropped = 0
        #: messages lost to random link drop.
        self.chaos_dropped = 0
        #: extra copies delivered by random duplication.
        self.chaos_duplicated = 0

    # ------------------------------------------------------------------ #
    def register(self, node_id: object) -> Store:
        """Attach a node; returns its inbox Store."""
        if node_id in self._inboxes:
            raise ValueError(f"node {node_id!r} already registered")
        inbox = Store(self.env)
        self._inboxes[node_id] = inbox
        return inbox

    def inbox(self, node_id: object) -> Store:
        """The inbox of a registered node."""
        return self._inboxes[node_id]

    @property
    def node_ids(self) -> list:
        """All registered node ids."""
        return list(self._inboxes)

    # -- failure modeling -------------------------------------------------- #
    def set_down(self, node_id: object, down: bool = True) -> None:
        """Mark a node unreachable (messages to it are dropped)."""
        if down:
            self._down.add(node_id)
        else:
            self._down.discard(node_id)

    def is_down(self, node_id: object) -> bool:
        """``True`` if the node is currently unreachable."""
        return node_id in self._down

    def set_partition(self, *groups: Iterable[object]) -> None:
        """Partition the network: nodes in different groups cannot talk.

        Nodes not named in any group form an implicit extra group of
        their own (so ``set_partition([a, b])`` isolates ``{a, b}``
        from everyone else while keeping both sides internally
        connected). Replaces any previous partition.
        """
        mapping: Dict[object, int] = {}
        for idx, group in enumerate(groups):
            for node in group:
                if node in mapping:
                    raise ValueError(f"node {node!r} appears in two partition groups")
                mapping[node] = idx
        self._partition_of = mapping

    def heal_partition(self) -> None:
        """Remove the partition: all nodes can reach each other again."""
        self._partition_of = {}

    @property
    def partitioned(self) -> bool:
        """``True`` while a partition is active."""
        return bool(self._partition_of)

    def reachable(self, src: object, dst: object) -> bool:
        """``True`` if no partition separates ``src`` from ``dst``."""
        part = self._partition_of
        if not part:
            return True
        return part.get(src, -1) == part.get(dst, -1)

    def set_link_faults(
        self,
        drop_rate: float = 0.0,
        dup_rate: float = 0.0,
        extra_delay: float = 0.0,
    ) -> None:
        """Enable probabilistic per-message faults (seeded ``rng`` required).

        ``drop_rate`` / ``dup_rate`` are per-message probabilities in
        ``[0, 1)``; ``extra_delay`` is the maximum uniformly-drawn added
        one-way latency in seconds.
        """
        for name, value in (("drop_rate", drop_rate), ("dup_rate", dup_rate)):
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {value}")
        if extra_delay < 0:
            raise ValueError(f"extra_delay must be >= 0, got {extra_delay}")
        if (drop_rate or dup_rate or extra_delay) and self._rng is None:
            raise ValueError("link faults need a seeded rng (Network(rng=...))")
        self.drop_rate = float(drop_rate)
        self.dup_rate = float(dup_rate)
        self.extra_delay = float(extra_delay)

    def clear_link_faults(self) -> None:
        """Disable all probabilistic link faults."""
        self.drop_rate = self.dup_rate = self.extra_delay = 0.0

    # -- sending ------------------------------------------------------------ #
    def send(self, msg: Message) -> None:
        """Dispatch ``msg``; it arrives after the network delay."""
        msg.sent_at = self.env.now
        self.sent_count[msg.kind] += 1
        self.sent_bytes[msg.kind] += msg.wire_size
        if msg.dst not in self._inboxes or msg.dst in self._down:
            self.dropped += 1
            return
        if not self.reachable(msg.src, msg.dst):
            self.partition_dropped += 1
            self.dropped += 1
            return
        rng = self._rng
        delay = self._delay(msg) if callable(self._delay) else self._delay
        if rng is not None:
            if self.drop_rate and rng.random() < self.drop_rate:
                self.chaos_dropped += 1
                self.dropped += 1
                return
            if self.extra_delay:
                delay += self.extra_delay * rng.random()
            if self.dup_rate and rng.random() < self.dup_rate:
                self.chaos_duplicated += 1
                inbox = self._inboxes[msg.dst]
                self.env.schedule_at(
                    self.env.now + delay, lambda: self._deliver(inbox, msg)
                )
        inbox = self._inboxes[msg.dst]
        self.env.schedule_at(self.env.now + delay, lambda: self._deliver(inbox, msg))

    def _deliver(self, inbox: Store, msg: Message) -> None:
        # Re-check: the node may have died while the message was in flight.
        if msg.dst in self._down:
            self.dropped += 1
            return
        inbox.put(msg)

    def broadcast(self, src: object, kind: str, payload: object, dsts: Optional[Iterable[object]] = None) -> int:
        """Send one message per destination; returns the send count."""
        targets = list(dsts) if dsts is not None else [n for n in self._inboxes if n != src]
        for dst in targets:
            self.send(Message(src=src, dst=dst, kind=kind, payload=payload))
        return len(targets)

    # -- liveness probing ---------------------------------------------------- #
    def probe(self, src: object, dst: object) -> bool:
        """One heartbeat round-trip: ``True`` iff it would succeed now.

        Sends the probe (and, on success, the ack) for traffic
        accounting. A probe fails when the destination is unknown or
        down, a partition separates the pair, or random link drop
        claims either leg of the round trip.
        """
        self.send(Message(src=src, dst=dst, kind=MessageKind.HEARTBEAT))
        if dst not in self._inboxes or dst in self._down:
            return False
        if not self.reachable(src, dst):
            return False
        if self._rng is not None and self.drop_rate:
            # One draw per leg: the probe out, the ack back.
            if self._rng.random() < self.drop_rate or self._rng.random() < self.drop_rate:
                self.chaos_dropped += 1
                return False
        self.send(Message(src=dst, dst=src, kind=MessageKind.HEARTBEAT_ACK))
        return True

    # ------------------------------------------------------------------ #
    @property
    def total_messages(self) -> int:
        """All messages sent so far (delivered or dropped)."""
        return sum(self.sent_count.values())

    @property
    def total_bytes(self) -> int:
        """All bytes sent so far."""
        return sum(self.sent_bytes.values())
