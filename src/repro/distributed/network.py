"""The simulated cluster interconnect.

Cluster control traffic (reports, mappings, shed notifications,
election and heartbeat probes) flows through a :class:`Network` with a
configurable one-way delay. Nodes are registered with an inbox
(:class:`repro.sim.Store`); delivery to a failed node silently drops
the message, which is what the election and heartbeat layers observe
as a timeout.

The network keeps per-kind traffic counters so experiments can report
control-plane cost next to shared-state size (ANU's pitch is small on
*both* axes).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

from ..sim import Simulator, Store
from .messages import Message, MessageKind

__all__ = ["Network"]


class Network:
    """Message transport between cluster nodes.

    Parameters
    ----------
    env:
        The simulator.
    delay:
        One-way delivery latency in seconds (LAN-scale default). A
        callable ``delay(msg) -> float`` may be supplied for
        distance-dependent topologies.
    """

    def __init__(self, env: Simulator, delay: float | Callable[[Message], float] = 0.0005) -> None:
        self.env = env
        self._delay = delay
        self._inboxes: Dict[object, Store] = {}
        self._down: set = set()
        #: messages sent, per kind.
        self.sent_count: Dict[str, int] = {k: 0 for k in MessageKind.ALL}
        #: bytes sent, per kind.
        self.sent_bytes: Dict[str, int] = {k: 0 for k in MessageKind.ALL}
        #: messages dropped (destination down or unknown).
        self.dropped = 0

    # ------------------------------------------------------------------ #
    def register(self, node_id: object) -> Store:
        """Attach a node; returns its inbox Store."""
        if node_id in self._inboxes:
            raise ValueError(f"node {node_id!r} already registered")
        inbox = Store(self.env)
        self._inboxes[node_id] = inbox
        return inbox

    def inbox(self, node_id: object) -> Store:
        """The inbox of a registered node."""
        return self._inboxes[node_id]

    @property
    def node_ids(self) -> list:
        """All registered node ids."""
        return list(self._inboxes)

    # -- failure modeling -------------------------------------------------- #
    def set_down(self, node_id: object, down: bool = True) -> None:
        """Mark a node unreachable (messages to it are dropped)."""
        if down:
            self._down.add(node_id)
        else:
            self._down.discard(node_id)

    def is_down(self, node_id: object) -> bool:
        """``True`` if the node is currently unreachable."""
        return node_id in self._down

    # -- sending ------------------------------------------------------------ #
    def send(self, msg: Message) -> None:
        """Dispatch ``msg``; it arrives after the network delay."""
        msg.sent_at = self.env.now
        self.sent_count[msg.kind] += 1
        self.sent_bytes[msg.kind] += msg.wire_size
        if msg.dst not in self._inboxes or msg.dst in self._down:
            self.dropped += 1
            return
        delay = self._delay(msg) if callable(self._delay) else self._delay
        inbox = self._inboxes[msg.dst]
        self.env.schedule_at(self.env.now + delay, lambda: self._deliver(inbox, msg))

    def _deliver(self, inbox: Store, msg: Message) -> None:
        # Re-check: the node may have died while the message was in flight.
        if msg.dst in self._down:
            self.dropped += 1
            return
        inbox.put(msg)

    def broadcast(self, src: object, kind: str, payload: object, dsts: Optional[Iterable[object]] = None) -> int:
        """Send one message per destination; returns the send count."""
        targets = list(dsts) if dsts is not None else [n for n in self._inboxes if n != src]
        for dst in targets:
            self.send(Message(src=src, dst=dst, kind=kind, payload=payload))
        return len(targets)

    # ------------------------------------------------------------------ #
    @property
    def total_messages(self) -> int:
        """All messages sent so far (delivered or dropped)."""
        return sum(self.sent_count.values())

    @property
    def total_bytes(self) -> int:
        """All bytes sent so far."""
        return sum(self.sent_bytes.values())
