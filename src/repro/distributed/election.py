"""Delegate election.

"each server ... reports it to an elected delegate server ... If the
delegate fails, the next elected delegate runs the same protocol with
the same information." (§4)

The election is a bully-style highest-id rule. Because the delegate is
stateless, the election needs no state transfer — any node that knows
the live membership can take over, which is why the simple rule
suffices and why :func:`elect` is a pure function. The message-level
simulation (:class:`ElectionProtocol`) exists to account for election
traffic and to demonstrate fail-over in the control-plane example.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from .messages import Message, MessageKind
from .network import Network

__all__ = ["elect", "ElectionProtocol"]


def elect(live_ids: Iterable[object]) -> object:
    """The bully rule: the highest-ordered live node is the delegate.

    Deterministic and stateless — every node evaluating the same live
    set picks the same delegate, with no communication needed beyond
    membership knowledge. Ids are compared by ``(type name, repr)`` so
    heterogeneous id types still order totally.
    """
    ids: List[object] = list(live_ids)
    if not ids:
        raise ValueError("cannot elect from an empty membership")
    return max(ids, key=lambda i: (type(i).__name__, repr(i), i if isinstance(i, (int, float, str)) else 0))


class ElectionProtocol:
    """Message-level bully election over the simulated network.

    A node that suspects the delegate sends ELECTION probes to all
    higher-id nodes; nodes that answer (ELECTION_OK) take over the
    candidacy; the winner broadcasts COORDINATOR. The simulation is
    synchronous-round simplified: reachability is evaluated through the
    network's down-set, matching how the probes would resolve.
    """

    def __init__(self, network: Network) -> None:
        self.network = network
        #: Elections run so far.
        self.elections = 0

    def run(self, initiator: object) -> object:
        """Run one election from ``initiator``; returns the new delegate."""
        nodes = sorted(
            (n for n in self.network.node_ids),
            key=lambda i: (type(i).__name__, repr(i)),
        )
        if initiator not in nodes:
            raise ValueError(f"initiator {initiator!r} is not a cluster node")
        self.elections += 1
        live = [n for n in nodes if not self.network.is_down(n)]
        if not live:
            raise ValueError("no live nodes to elect from")
        # Probe phase: initiator contacts every higher node; each live
        # higher node answers and continues the cascade. We simulate the
        # message cost of the cascade explicitly.
        candidate = initiator
        for node in nodes:
            if node <= candidate if _comparable(node, candidate) else repr(node) <= repr(candidate):
                continue
            self.network.send(
                Message(src=candidate, dst=node, kind=MessageKind.ELECTION)
            )
            if not self.network.is_down(node):
                self.network.send(
                    Message(src=node, dst=candidate, kind=MessageKind.ELECTION_OK)
                )
                candidate = node
        winner = elect(live)
        self.network.broadcast(winner, MessageKind.COORDINATOR, winner)
        return winner


def _comparable(a: object, b: object) -> bool:
    try:
        a <= b  # type: ignore[operator]
        return True
    except TypeError:
        return False
