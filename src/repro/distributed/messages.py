"""Control-plane message types.

The ANU control loop exchanges three kinds of messages (§4): servers
*report* interval latencies to the delegate, the delegate *distributes*
the new mapping of servers to the unit interval, and shedding servers
*notify* gainers that they are acquiring workload. Election and
failure detection add their own kinds.

Messages carry an estimated wire size so experiments can account for
control-plane traffic alongside shared-state size.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["Message", "MessageKind"]


class MessageKind:
    """String constants for message kinds (a closed vocabulary)."""

    REPORT = "report"            # server -> delegate: LatencyReport
    MAPPING = "mapping"          # delegate -> all: new interval mapping
    SHED_NOTIFY = "shed-notify"  # releasing server -> acquiring server
    ELECTION = "election"        # election probe
    ELECTION_OK = "election-ok"  # election acknowledgement
    COORDINATOR = "coordinator"  # new delegate announcement
    HEARTBEAT = "heartbeat"      # liveness probe
    HEARTBEAT_ACK = "heartbeat-ack"

    ALL = (
        REPORT,
        MAPPING,
        SHED_NOTIFY,
        ELECTION,
        ELECTION_OK,
        COORDINATOR,
        HEARTBEAT,
        HEARTBEAT_ACK,
    )


_SEQ = itertools.count()

#: Rough wire-size estimates (bytes) per message kind, used for
#: control-traffic accounting. A report is a few numbers; a mapping is
#: O(k) region descriptors (sized at send time); notifications and
#: probes are small fixed-size frames.
_BASE_SIZE = {
    MessageKind.REPORT: 48,
    MessageKind.MAPPING: 24,  # plus 24 per region entry (payload-sized)
    MessageKind.SHED_NOTIFY: 64,
    MessageKind.ELECTION: 16,
    MessageKind.ELECTION_OK: 16,
    MessageKind.COORDINATOR: 16,
    MessageKind.HEARTBEAT: 8,
    MessageKind.HEARTBEAT_ACK: 8,
}


@dataclass
class Message:
    """One control-plane message."""

    src: object
    dst: object
    kind: str
    payload: Any = None
    sent_at: float = 0.0
    seq: int = field(default_factory=lambda: next(_SEQ))

    def __post_init__(self) -> None:
        if self.kind not in MessageKind.ALL:
            raise ValueError(f"unknown message kind {self.kind!r}")

    @property
    def wire_size(self) -> int:
        """Estimated bytes on the wire."""
        size = _BASE_SIZE[self.kind]
        if self.kind == MessageKind.MAPPING and self.payload is not None:
            try:
                size += 24 * sum(len(v) for v in self.payload.values())
            except (TypeError, AttributeError):
                size += 24 * len(self.payload)
        return size

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return f"<Message #{self.seq} {self.kind} {self.src!r}->{self.dst!r}>"
