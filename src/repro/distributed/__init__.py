"""Control plane: messages, network, election, heartbeats, state.

The operational side of §4: latency reports travel to an elected
delegate over a :class:`Network`; the delegate broadcasts the new unit-
interval mapping; heartbeats detect failures; a bully election replaces
a dead delegate with zero state transfer (the delegate is stateless).

:mod:`repro.distributed.state` quantifies the replicated-state
comparison of §5.4/§6 across all schemes.
"""

from .chord import ChordNode, ChordRing
from .control import DistributedTuningService
from .election import ElectionProtocol, elect
from .heartbeat import HeartbeatMonitor
from .messages import Message, MessageKind
from .network import Network
from .state import (
    BYTES_PER_ENTRY,
    StateFootprint,
    anu_footprint,
    chord_ring_footprint,
    lookup_table_footprint,
    simple_footprint,
    state_table,
    virtual_processor_footprint,
)

__all__ = [
    "Message",
    "MessageKind",
    "Network",
    "elect",
    "ElectionProtocol",
    "HeartbeatMonitor",
    "DistributedTuningService",
    "ChordRing",
    "ChordNode",
    "StateFootprint",
    "BYTES_PER_ENTRY",
    "anu_footprint",
    "virtual_processor_footprint",
    "chord_ring_footprint",
    "lookup_table_footprint",
    "simple_footprint",
    "state_table",
]
