"""Chord-style ring addressing — the paper's footnote-1 alternative.

"The addressing information could also be implemented in the
Chord-style ring [35] to avoid replication at the expense of log(n)
probes to the data structure." (§5.4, footnote 1)

A virtual-processor deployment can either replicate the full VP→server
address table everywhere (O(Nv) state per node, 1 probe) or hold the
VPs on a Chord ring where each node keeps only a finger table
(O(log Nv) state, O(log Nv) routing hops per lookup). This module
implements the ring so the trade-off is *measured*, not asserted:

* nodes (the VPs) hash onto the same unit interval the rest of the
  repo uses;
* each node keeps ``ceil(log2 N)`` fingers (successor of
  ``id + 2^-i``);
* :meth:`ChordRing.route` resolves a key's successor, counting hops.

The bench compares measured hops against the log2(N) bound and the
state against the replicated table.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, List, Optional, Tuple

from ..core.hashing import HashFamily

__all__ = ["ChordNode", "ChordRing"]


class ChordNode:
    """One ring member: its position and finger table."""

    __slots__ = ("node_id", "position", "fingers")

    def __init__(self, node_id: object, position: float) -> None:
        self.node_id = node_id
        #: Position on the unit ring, in [0, 1).
        self.position = position
        #: Finger i points at the successor of ``position + 2^-(i+1)``.
        self.fingers: List["ChordNode"] = []

    def state_entries(self) -> int:
        """Routing entries this node holds (its fingers)."""
        return len(self.fingers)

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return f"<ChordNode {self.node_id!r} @ {self.position:.4f}>"


class ChordRing:
    """A consistent-hashing ring with Chord finger routing.

    Parameters
    ----------
    node_ids:
        Ring members (e.g. virtual-processor names).
    hash_family:
        Shared family used to position both nodes and keys — the same
        addressing substrate as ANU, so comparisons are apples to
        apples.
    """

    def __init__(self, node_ids: List[object], hash_family: Optional[HashFamily] = None) -> None:
        if not node_ids:
            raise ValueError("ring needs at least one node")
        if len(set(map(repr, node_ids))) != len(node_ids):
            raise ValueError("duplicate node ids")
        self.hash_family = hash_family or HashFamily()
        self._nodes: List[ChordNode] = sorted(
            (ChordNode(nid, self.hash_family.offset(f"chord-node:{nid!r}")) for nid in node_ids),
            key=lambda n: n.position,
        )
        self._positions: List[float] = [n.position for n in self._nodes]
        self._build_fingers()
        #: Lookup statistics.
        self.total_lookups = 0
        self.total_hops = 0

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> List[ChordNode]:
        """Ring members in position order."""
        return list(self._nodes)

    def successor(self, point: float) -> ChordNode:
        """First node at or clockwise-after ``point`` on the ring."""
        idx = bisect.bisect_left(self._positions, point % 1.0)
        return self._nodes[idx % len(self._nodes)]

    def _build_fingers(self) -> None:
        n_fingers = max(1, math.ceil(math.log2(max(2, len(self._nodes)))))
        for node in self._nodes:
            node.fingers = [
                self.successor((node.position + 2.0 ** -(i + 1)) % 1.0)
                for i in range(n_fingers)
            ]

    # ------------------------------------------------------------------ #
    def owner_of(self, key: str) -> ChordNode:
        """Ground truth: the successor of the key's ring position."""
        return self.successor(self.hash_family.offset(f"chord-key:{key}"))

    def route(self, key: str, start: Optional[ChordNode] = None) -> Tuple[ChordNode, int]:
        """Route a lookup from ``start`` to the key's owner.

        Greedy Chord routing: at each node, follow the finger that gets
        closest to (without passing) the target position; returns
        ``(owner, hops)``. Hops are bounded by O(log N) w.h.p.
        """
        target = self.hash_family.offset(f"chord-key:{key}") % 1.0
        owner = self.successor(target)
        current = start if start is not None else self._nodes[0]
        hops = 0
        limit = 4 * max(1, math.ceil(math.log2(max(2, len(self._nodes))))) + 8
        while current is not owner:
            nxt = self._best_hop(current, target)
            if nxt is current:
                # No finger improves: the owner is the immediate
                # successor — one final hop.
                nxt = owner
            current = nxt
            hops += 1
            if hops > limit:  # pragma: no cover - defensive
                raise RuntimeError("Chord routing failed to converge")
        self.total_lookups += 1
        self.total_hops += hops
        return owner, hops

    def _best_hop(self, current: ChordNode, target: float) -> ChordNode:
        """Finger that travels furthest clockwise without passing target."""
        gap = (target - current.position) % 1.0
        best, best_adv = current, 0.0
        for finger in current.fingers:
            adv = (finger.position - current.position) % 1.0
            if 0.0 < adv < gap and adv > best_adv:
                best, best_adv = finger, adv
        return best

    # ------------------------------------------------------------------ #
    @property
    def mean_hops(self) -> float:
        """Observed mean routing hops per lookup."""
        return self.total_hops / self.total_lookups if self.total_lookups else float("nan")

    def per_node_state(self) -> int:
        """Routing entries each node keeps (finger-table size)."""
        return self._nodes[0].state_entries() if self._nodes else 0

    def load_distribution(self, keys: List[str]) -> Dict[object, int]:
        """Keys owned per node — the ring's (unweighted) balance."""
        loads: Dict[object, int] = {n.node_id: 0 for n in self._nodes}
        for key in keys:
            loads[self.owner_of(key).node_id] += 1
        return loads
