"""The distributed tuning service: ANU's control loop over messages.

The figure experiments drive :class:`~repro.core.ANUManager` directly
(function calls) because the decisions are identical; this module runs
the *same* tuning protocol the way the paper describes it operationally
— reports travel the network to an elected delegate, the delegate
decides, and the new mapping is broadcast — so the reproduction also
demonstrates:

* delegate fail-over mid-run with no decision divergence (the
  statelessness claim of §4, exercised by the control-plane tests);
* control-traffic accounting (reports + mappings per round are O(k)).

Every node holds a replica of the mapping; only the elected delegate
acts on reports. When the delegate dies, heartbeats notice, a new
election runs, and the next round proceeds from the replicated mapping
and fresh reports alone.

The tuning rule itself — which :class:`repro.control.Controller` the
cluster runs, plus any controller state (PI integrators, EWMA filters)
— is part of that replicated state: the manager holds the agreed copy,
and each round's out-of-band divergence check instantiates the fresh
delegate from ``Controller.fork()``, exactly what a newly elected
delegate would reconstruct. Fail-over therefore stays free for every
controller in the family, not just the stateless multiplicative rule.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..core.anu import ANUManager, Reconfiguration
from ..core.delegate import Delegate
from ..core.tuning import LatencyReport
from ..sim import Simulator
from .election import elect
from .messages import Message, MessageKind
from .network import Network

__all__ = ["DistributedTuningService"]


class DistributedTuningService:
    """Runs ANU tuning rounds over the simulated control plane.

    Parameters
    ----------
    env, network:
        Simulation substrate; each server id in ``manager`` is
        registered on the network.
    manager:
        The authoritative ANU manager (in a real deployment every node
        holds a replica; a single object models the agreed state).
    collect_reports:
        Callable returning the current round's reports (the cluster
        hands in its servers' interval reports here).
    """

    def __init__(
        self,
        env: Simulator,
        network: Network,
        manager: ANUManager,
        collect_reports: Callable[[], Sequence[LatencyReport]],
    ) -> None:
        self.env = env
        self.network = network
        self.manager = manager
        self.collect_reports = collect_reports
        for sid in manager.layout.server_ids:
            if sid not in network.node_ids:
                network.register(sid)
        self.delegate_id = elect(
            [s for s in manager.layout.server_ids if not network.is_down(s)]
        )
        #: Reconfigurations produced so far.
        self.history: List[Reconfiguration] = []
        #: Elections that were needed because the delegate was down.
        self.failovers = 0

    # ------------------------------------------------------------------ #
    def run_round(self) -> Reconfiguration:
        """Execute one tuning round over the network.

        1. Re-elect if the current delegate is unreachable (fail-over).
        2. Every live server sends its REPORT to the delegate.
        3. The delegate (stateless: a fresh :class:`Delegate` instance
           every round) decides and broadcasts the MAPPING.
        4. Shedding servers send SHED_NOTIFY to gainers.
        """
        live = [
            s for s in self.manager.layout.server_ids if not self.network.is_down(s)
        ]
        if not live:
            raise RuntimeError("no live servers; cannot tune")
        if self.delegate_id not in live:
            self.delegate_id = elect(live)
            self.failovers += 1
        reports = [r for r in self.collect_reports() if r.server_id in live]
        for report in reports:
            self.network.send(
                Message(
                    src=report.server_id,
                    dst=self.delegate_id,
                    kind=MessageKind.REPORT,
                    payload=report,
                )
            )
        # A *fresh* delegate instance every round, reconstructed from
        # the replicated controller state via fork(): nothing local
        # carries over, so fail-over cannot change decisions (asserted
        # by tests, for stateful controllers too).
        decision = Delegate(controller=self.manager.controller.fork()).decide(
            self.manager.lengths(), reports
        )
        rec = self.manager.tune(reports)
        self.history.append(rec)
        # Broadcast the new mapping — "the only replicated state" (§4).
        self.network.broadcast(
            self.delegate_id,
            MessageKind.MAPPING,
            self.manager.layout.segments(),
        )
        for shed in rec.sheds:
            if shed.source is not None:
                self.network.send(
                    Message(
                        src=shed.source,
                        dst=shed.target,
                        kind=MessageKind.SHED_NOTIFY,
                        payload=shed,
                    )
                )
        # Sanity: the out-of-band Delegate reached the same average —
        # the decision path is pure.
        assert (
            decision.average_latency == rec.average_latency
            or (
                decision.average_latency != decision.average_latency
                and rec.average_latency != rec.average_latency
            )
        ), "delegate decision diverged from manager tuning"
        return rec

    # ------------------------------------------------------------------ #
    def fail_delegate(self) -> object:
        """Kill the current delegate (test/demo hook); returns its id."""
        victim = self.delegate_id
        self.network.set_down(victim, True)
        return victim

    def round_traffic(self) -> Dict[str, int]:
        """Control messages sent so far, by kind."""
        return dict(self.network.sent_count)
