"""Heartbeat failure detection.

The framework "treats commissioning (installing) or decommissioning
servers the same as a recovery or failure" (§4) — but someone has to
*notice* the failure. :class:`HeartbeatMonitor` is that someone: a
process on the observing node that probes peers every ``period``
seconds and declares a peer failed after ``misses`` consecutive
unanswered probes, invoking a callback (typically the membership hook
of the ANU manager plus a delegate re-election if the delegate died).

Recovery is hysteretic: a peer that was declared failed must answer
``recoveries`` *consecutive* probes before it is un-declared. Without
the hysteresis a flapping link (one answered probe among many losses)
would bounce a peer between failed and live every few periods, and
each bounce costs a full reconfiguration — the fail/recover storm the
chaos harness exists to provoke.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

from ..sim import Simulator
from .network import Network

__all__ = ["HeartbeatMonitor"]


class HeartbeatMonitor:
    """Periodic liveness probing of a set of peers.

    Parameters
    ----------
    env, network:
        Simulation substrate.
    observer:
        Node id issuing the probes.
    peers:
        Node ids to watch.
    period:
        Seconds between probe rounds.
    misses:
        Consecutive unanswered probes before declaring failure.
    recoveries:
        Consecutive *answered* probes before un-declaring a failed
        peer (recovery hysteresis; ``1`` restores the legacy
        instant-recovery behavior).
    on_failure / on_recovery:
        Callbacks ``cb(peer_id)`` fired on state transitions. Recovery
        is detected when a previously failed peer answers again.
    """

    def __init__(
        self,
        env: Simulator,
        network: Network,
        observer: object,
        peers: Iterable[object],
        period: float = 1.0,
        misses: int = 3,
        recoveries: int = 2,
        on_failure: Optional[Callable[[object], None]] = None,
        on_recovery: Optional[Callable[[object], None]] = None,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be > 0, got {period}")
        if misses < 1:
            raise ValueError(f"misses must be >= 1, got {misses}")
        if recoveries < 1:
            raise ValueError(f"recoveries must be >= 1, got {recoveries}")
        self.env = env
        self.network = network
        self.observer = observer
        self.peers = list(peers)
        self.period = float(period)
        self.misses = int(misses)
        self.recoveries = int(recoveries)
        self.on_failure = on_failure
        self.on_recovery = on_recovery
        self._miss_count: Dict[object, int] = {p: 0 for p in self.peers}
        self._success_count: Dict[object, int] = {p: 0 for p in self.peers}
        self._declared_failed: set = set()
        #: Failure declarations made so far (flap-storm diagnostic).
        self.failure_declarations = 0
        #: Recovery declarations made so far.
        self.recovery_declarations = 0
        self.process = env.process(self._probe_loop())

    # ------------------------------------------------------------------ #
    @property
    def suspected(self) -> set:
        """Peers currently declared failed."""
        return set(self._declared_failed)

    def watch(self, peer: object) -> None:
        """Add a peer to the probe set (idempotent)."""
        if peer not in self._miss_count:
            self.peers.append(peer)
            self._miss_count[peer] = 0
            self._success_count[peer] = 0

    def _probe_loop(self):
        while True:
            yield self.env.timeout(self.period)
            for peer in self.peers:
                if self.network.probe(self.observer, peer):
                    self._miss_count[peer] = 0
                    if peer in self._declared_failed:
                        self._success_count[peer] += 1
                        if self._success_count[peer] >= self.recoveries:
                            self._declared_failed.discard(peer)
                            self._success_count[peer] = 0
                            self.recovery_declarations += 1
                            if self.on_recovery is not None:
                                self.on_recovery(peer)
                else:
                    self._success_count[peer] = 0
                    self._miss_count[peer] += 1
                    if (
                        self._miss_count[peer] >= self.misses
                        and peer not in self._declared_failed
                    ):
                        self._declared_failed.add(peer)
                        self.failure_declarations += 1
                        if self.on_failure is not None:
                            self.on_failure(peer)

    def detection_latency_bound(self) -> float:
        """Worst-case seconds from crash to declaration."""
        return self.period * (self.misses + 1)

    def recovery_latency_bound(self) -> float:
        """Worst-case seconds from heal to recovery declaration."""
        return self.period * (self.recoveries + 1)
