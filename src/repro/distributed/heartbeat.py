"""Heartbeat failure detection.

The framework "treats commissioning (installing) or decommissioning
servers the same as a recovery or failure" (§4) — but someone has to
*notice* the failure. :class:`HeartbeatMonitor` is that someone: a
process on the observing node that probes peers every ``period``
seconds and declares a peer failed after ``misses`` consecutive
unanswered probes, invoking a callback (typically the membership hook
of the ANU manager plus a delegate re-election if the delegate died).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

from ..sim import Simulator
from .messages import Message, MessageKind
from .network import Network

__all__ = ["HeartbeatMonitor"]


class HeartbeatMonitor:
    """Periodic liveness probing of a set of peers.

    Parameters
    ----------
    env, network:
        Simulation substrate.
    observer:
        Node id issuing the probes.
    peers:
        Node ids to watch.
    period:
        Seconds between probe rounds.
    misses:
        Consecutive unanswered probes before declaring failure.
    on_failure / on_recovery:
        Callbacks ``cb(peer_id)`` fired on state transitions. Recovery
        is detected when a previously failed peer answers again.
    """

    def __init__(
        self,
        env: Simulator,
        network: Network,
        observer: object,
        peers: Iterable[object],
        period: float = 1.0,
        misses: int = 3,
        on_failure: Optional[Callable[[object], None]] = None,
        on_recovery: Optional[Callable[[object], None]] = None,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be > 0, got {period}")
        if misses < 1:
            raise ValueError(f"misses must be >= 1, got {misses}")
        self.env = env
        self.network = network
        self.observer = observer
        self.peers = list(peers)
        self.period = float(period)
        self.misses = int(misses)
        self.on_failure = on_failure
        self.on_recovery = on_recovery
        self._miss_count: Dict[object, int] = {p: 0 for p in self.peers}
        self._declared_failed: set = set()
        self.process = env.process(self._probe_loop())

    # ------------------------------------------------------------------ #
    @property
    def suspected(self) -> set:
        """Peers currently declared failed."""
        return set(self._declared_failed)

    def _probe_loop(self):
        while True:
            yield self.env.timeout(self.period)
            for peer in self.peers:
                # Send the probe (for traffic accounting) and evaluate
                # reachability: a down peer cannot answer.
                self.network.send(
                    Message(src=self.observer, dst=peer, kind=MessageKind.HEARTBEAT)
                )
                if self.network.is_down(peer):
                    self._miss_count[peer] += 1
                    if (
                        self._miss_count[peer] >= self.misses
                        and peer not in self._declared_failed
                    ):
                        self._declared_failed.add(peer)
                        if self.on_failure is not None:
                            self.on_failure(peer)
                else:
                    self.network.send(
                        Message(
                            src=peer, dst=self.observer, kind=MessageKind.HEARTBEAT_ACK
                        )
                    )
                    self._miss_count[peer] = 0
                    if peer in self._declared_failed:
                        self._declared_failed.discard(peer)
                        if self.on_recovery is not None:
                            self.on_recovery(peer)

    def detection_latency_bound(self) -> float:
        """Worst-case seconds from crash to declaration."""
        return self.period * (self.misses + 1)
