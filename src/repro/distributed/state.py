"""Shared-state accounting across placement schemes (§5.4, §6).

The paper's scalability argument is about *replicated state*: what
every node must hold (and re-synchronize on change) to address any
file set.

* **ANU**: the unit-interval map — O(k) region descriptors ("the unit
  interval is the only shared state", §5.4).
* **Virtual processors**: "it is essential to keep the address
  information for each individual virtual processor" — O(Nv) entries
  (footnote 1 notes a Chord-style ring alternative trading replication
  for log(n) probes).
* **Lookup table / bin-packing**: one row per file set — O(m) (§6).
* **Simple randomization**: just the server list — O(k).

:func:`state_table` produces the comparison used by the Figure 8
discussion and the A5 ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.interval import IntervalLayout

__all__ = [
    "BYTES_PER_ENTRY",
    "StateFootprint",
    "anu_footprint",
    "virtual_processor_footprint",
    "lookup_table_footprint",
    "simple_footprint",
    "chord_ring_footprint",
    "state_table",
]

#: Nominal bytes per replicated entry (an id plus an address/offset
#: pair). The absolute constant is immaterial; comparisons are ratios.
BYTES_PER_ENTRY = 24


@dataclass(frozen=True)
class StateFootprint:
    """Replicated-state cost of one scheme.

    ``lookup_probes`` is the expected number of probes to address a
    file set (the other axis of the trade-off: the Chord variant of VP
    shrinks state but pays log(n) probes).
    """

    scheme: str
    entries: int
    lookup_probes: float

    @property
    def bytes(self) -> int:
        """Nominal replicated bytes."""
        return self.entries * BYTES_PER_ENTRY


def anu_footprint(layout: IntervalLayout) -> StateFootprint:
    """ANU's region map: one entry per (server, segment)."""
    return StateFootprint(
        scheme="anu", entries=layout.shared_state_entries(), lookup_probes=2.0
    )


def virtual_processor_footprint(n_virtual: int) -> StateFootprint:
    """Replicated VP address table: one entry per VP."""
    if n_virtual < 1:
        raise ValueError(f"need >= 1 virtual processor, got {n_virtual}")
    return StateFootprint(scheme="virtual", entries=n_virtual, lookup_probes=1.0)


def chord_ring_footprint(n_virtual: int) -> StateFootprint:
    """The footnote-1 alternative: Chord-style ring, log2(Nv) probes."""
    import math

    if n_virtual < 1:
        raise ValueError(f"need >= 1 virtual processor, got {n_virtual}")
    return StateFootprint(
        scheme="virtual-chord",
        entries=max(1, int(math.ceil(math.log2(max(2, n_virtual))))),
        lookup_probes=max(1.0, math.log2(max(2, n_virtual))),
    )


def lookup_table_footprint(n_filesets: int) -> StateFootprint:
    """Bin-packing lookup table: one row per file set."""
    if n_filesets < 1:
        raise ValueError(f"need >= 1 file set, got {n_filesets}")
    return StateFootprint(scheme="table", entries=n_filesets, lookup_probes=1.0)


def simple_footprint(n_servers: int) -> StateFootprint:
    """Simple randomization: the server list only."""
    if n_servers < 1:
        raise ValueError(f"need >= 1 server, got {n_servers}")
    return StateFootprint(scheme="simple", entries=n_servers, lookup_probes=1.0)


def state_table(
    layout: IntervalLayout, n_virtual: int, n_filesets: int
) -> List[StateFootprint]:
    """The full comparison for one cluster configuration."""
    return [
        simple_footprint(layout.n_servers),
        anu_footprint(layout),
        virtual_processor_footprint(n_virtual),
        chord_ring_footprint(n_virtual),
        lookup_table_footprint(n_filesets),
    ]
