"""The load-manager interface shared by ANU and every baseline.

The cluster driver (:mod:`repro.cluster.cluster`) is policy-agnostic:
it routes each request through :meth:`LoadManager.locate`, and at every
tuning interval hands the policy the servers' latency reports plus — for
policies entitled to it — *prescient knowledge* of the upcoming
interval. The four systems of the paper differ only in how they
implement this interface:

========================  ==========  =====================  ============
System                    adapts?     uses knowledge?        shared state
========================  ==========  =====================  ============
simple randomization      no          no                     O(1)
dynamic prescient         每 interval  yes (oracle)           n/a (oracle)
virtual processors        每 interval  yes (oracle)           O(#VP)
ANU randomization         每 interval  no (reports only)      O(k)
========================  ==========  =====================  ============
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..cluster.fileset import FileSetCatalog
from ..core.tuning import LatencyReport

__all__ = [
    "Move",
    "PrescientKnowledge",
    "LazyKnowledge",
    "RebalanceContext",
    "LoadManager",
    "RelocationStats",
]


@dataclass(frozen=True)
class Move:
    """One file set re-assigned from ``source`` to ``target``."""

    fileset: str
    source: Optional[object]
    target: object


@dataclass(frozen=True)
class PrescientKnowledge:
    """Oracle information available to prescient-class policies.

    Attributes
    ----------
    server_powers:
        True service rate of every live server (work units / second).
    upcoming_work:
        Work each file set will offer during the *next* tuning interval
        (work units). This is genuine prescience — it is computed from
        the pre-generated request schedule, which no online system could
        know. Only *dynamic prescient* (the upper bound) reads it.
    average_work:
        Long-run work per tuning interval per file set (rate × interval).
        This is the paper's "perfect knowledge of ... workload
        characteristics" — the characteristic demand, not the future
        arrival schedule. The virtual-processor system uses this view;
        giving it the upcoming schedule would let it dodge individual
        bursts and make it an oracle rather than the paper's baseline.
        ANU reads neither.
    """

    server_powers: Mapping[object, float]
    upcoming_work: Mapping[str, float]
    average_work: Mapping[str, float]


class LazyKnowledge:
    """A :class:`PrescientKnowledge` that is computed on first read.

    Building the oracle costs a full catalog scan plus a
    ``work_between`` pass over the request schedule — every tuning
    round. Policies that never consult the oracle (simple, ANU, table)
    should not pay that price, so the driver hands out this proxy
    instead: the factory runs once, at the first attribute access, and
    not at all if nobody reads it.

    The proxy is intentionally *not* ``None``: policies gate on
    ``ctx.knowledge is None`` to detect "oracle withheld", and a lazy
    oracle is still an oracle.
    """

    __slots__ = ("_factory", "_value")

    def __init__(self, factory) -> None:
        self._factory = factory
        self._value: Optional[PrescientKnowledge] = None

    def _materialize(self) -> PrescientKnowledge:
        value = self._value
        if value is None:
            value = self._value = self._factory()
        return value

    @property
    def materialized(self) -> bool:
        """``True`` once the underlying oracle has been computed."""
        return self._value is not None

    @property
    def server_powers(self) -> Mapping[object, float]:
        return self._materialize().server_powers

    @property
    def upcoming_work(self) -> Mapping[str, float]:
        return self._materialize().upcoming_work

    @property
    def average_work(self) -> Mapping[str, float]:
        return self._materialize().average_work


@dataclass
class RebalanceContext:
    """Everything a policy may consult during one tuning round.

    ``observed_fileset_work`` is the merged per-file-set work the
    servers *measured* over the closing interval — a legitimate online
    observation (each server saw the requests it served), used by the
    bin-packing table baseline. ``knowledge`` is the prescient oracle
    for the *upcoming* interval; only prescient-class policies may read
    it.
    """

    now: float
    round_index: int
    reports: Sequence[LatencyReport]
    knowledge: Optional[PrescientKnowledge] = None
    observed_fileset_work: Optional[Dict[str, float]] = None


class RelocationStats:
    """Per-kind relocation accounting shared by the at-scale policies.

    A *relocation round* is one reconfiguration (tuning round or
    membership change) in which the policy re-resolved some subset of
    its catalog; ``relocated`` counts the names actually re-resolved
    (not the names that changed owner — that is ``total_sheds``).
    ``relocate_fraction`` is relocated work over the total opportunity
    (rounds × catalog size at the time), so a full re-resolution per
    round reads exactly 1.0 and an incremental policy reads the moved
    mass. Mixing policies call :meth:`_init_relocation_stats` in their
    constructor and :meth:`_note_relocation` once per round; the probe
    publishers drain :meth:`consume_last_relocation`.
    """

    #: How reconfigurations re-resolve the catalog. ``full`` = whole
    #: catalog every round; ``incremental`` = only names the epoch
    #: delta can invalidate; ``native`` = the policy's own structure is
    #: already incremental (displacement ledgers, candidate re-picks).
    relocate_mode: str = "native"

    def _init_relocation_stats(self) -> None:
        self.relocated_total = 0
        self.relocation_rounds = 0
        self.relocation_opportunity = 0
        self.relocated_by_kind: Dict[str, int] = {}
        self.reshuffle_seconds = 0.0
        self._last_relocation: Optional[Dict[str, object]] = None

    def _note_relocation(
        self, kind: str, relocated: int, catalog_size: int, seconds: float
    ) -> None:
        self.relocation_rounds += 1
        self.relocated_total += relocated
        self.relocation_opportunity += catalog_size
        self.relocated_by_kind[kind] = self.relocated_by_kind.get(kind, 0) + relocated
        self.reshuffle_seconds += seconds
        self._last_relocation = {
            "kind": kind,
            "relocated": relocated,
            "catalog_size": catalog_size,
            "seconds": seconds,
            "mode": self.relocate_mode,
        }

    def consume_last_relocation(self) -> Optional[Dict[str, object]]:
        """Pop the most recent round's record (``None`` if drained)."""
        info, self._last_relocation = self._last_relocation, None
        return info

    @property
    def relocate_fraction(self) -> float:
        """Relocated names over the total opportunity (0 when no rounds)."""
        if not self.relocation_opportunity:
            return 0.0
        return self.relocated_total / self.relocation_opportunity


class LoadManager(abc.ABC):
    """Abstract placement policy.

    Life cycle: :meth:`initial_placement` once before the simulation
    starts, then :meth:`locate` per request (hot path, must be O(1) or
    near), then :meth:`rebalance` once per tuning interval.
    """

    #: Human-readable policy name (used in reports and figures).
    name: str = "abstract"

    @abc.abstractmethod
    def initial_placement(
        self, catalog: FileSetCatalog, knowledge: Optional[PrescientKnowledge]
    ) -> Dict[str, object]:
        """Assign every file set before t=0; returns name → server."""

    @abc.abstractmethod
    def locate(self, fileset: str) -> object:
        """Server currently responsible for ``fileset``."""

    @abc.abstractmethod
    def rebalance(self, ctx: RebalanceContext) -> List[Move]:
        """Run one tuning round; returns the file sets that moved."""

    @abc.abstractmethod
    def shared_state_entries(self) -> int:
        """Replicated-state size in table entries (paper §5.4 metric).

        Conventions: simple randomization needs only the server list
        (``k`` entries); ANU replicates its region map (O(k) segments);
        virtual processors replicate one address per VP; a lookup-table
        scheme replicates one row per file set. The prescient oracle
        reports the table it would need to distribute (O(m)).
        """

    # -- optional membership hooks (default: unsupported) ----------------- #
    def server_failed(self, server_id: object) -> List[Move]:
        """React to a server failure; returns re-routed file sets."""
        raise NotImplementedError(f"{self.name} does not support membership changes")

    def server_added(self, server_id: object, power_hint: Optional[float] = None) -> List[Move]:
        """React to a server addition/recovery; returns moved file sets."""
        raise NotImplementedError(f"{self.name} does not support membership changes")

    def assignments(self) -> Dict[str, object]:
        """Snapshot of the full file-set → server map (diagnostics)."""
        raise NotImplementedError
