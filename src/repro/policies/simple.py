"""Simple randomization: the static hash baseline.

"Simple randomization employs a pseudo-random hash function to
uniformly assign file sets to servers, allowing us to compare our
system with static, offline randomized policies used in heterogeneous
clusters." (§5.1)

It never rebalances, so it "cannot respond to skew in load placement"
— in Figure 5 "the weakest server's performance keeps degrading during
the simulation and there is unused capacity on more powerful servers".

Shared state is minimal: the server list plus the (seed-derivable)
hash function.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..cluster.fileset import FileSetCatalog
from ..core.hashing import HashFamily
from .base import LoadManager, Move, PrescientKnowledge, RebalanceContext

__all__ = ["SimpleRandomization"]


class SimpleRandomization(LoadManager):
    """Static uniform hash placement over a fixed server list."""

    name = "simple"

    def __init__(self, server_ids: List[object], hash_family: Optional[HashFamily] = None) -> None:
        if not server_ids:
            raise ValueError("need at least one server")
        self.server_ids = list(server_ids)
        self.hash_family = hash_family or HashFamily()
        self._assignment: Dict[str, object] = {}

    # ------------------------------------------------------------------ #
    def initial_placement(
        self, catalog: FileSetCatalog, knowledge: Optional[PrescientKnowledge]
    ) -> Dict[str, object]:
        """Hash every file set uniformly onto the server list."""
        self._assignment = {
            name: self.server_ids[
                self.hash_family.uniform_server_choice(name, len(self.server_ids))
            ]
            for name in catalog.names
        }
        return dict(self._assignment)

    def locate(self, fileset: str) -> object:
        """O(1) table lookup (the table is hash-derivable, not shared)."""
        try:
            return self._assignment[fileset]
        except KeyError:
            # Unregistered names are still addressable by hashing — the
            # whole point of hash-based placement.
            sid = self.server_ids[
                self.hash_family.uniform_server_choice(fileset, len(self.server_ids))
            ]
            self._assignment[fileset] = sid
            return sid

    def rebalance(self, ctx: RebalanceContext) -> List[Move]:
        """Static policy: never moves anything."""
        return []

    def shared_state_entries(self) -> int:
        """Only the server list is replicated (assignments re-derive)."""
        return len(self.server_ids)

    # ------------------------------------------------------------------ #
    def server_failed(self, server_id: object) -> List[Move]:
        """Re-hash the failed server's file sets over the survivors.

        The classic consistent-hashing weakness on display: with a plain
        modulo-style hash the *entire* key space reshuffles; here we do
        the gentler thing (re-hash only the orphans, with per-name probe
        rounds) so the comparison against ANU isolates adaptivity rather
        than a strawman addressing bug.
        """
        if server_id not in self.server_ids:
            raise ValueError(f"unknown server {server_id!r}")
        self.server_ids.remove(server_id)
        moves: List[Move] = []
        for name, sid in self._assignment.items():
            if sid != server_id:
                continue
            # Probe rounds give a deterministic, per-name re-hash.
            for r in range(1, self.hash_family.max_probes):
                idx = int(
                    self.hash_family.offset(name, r) * len(self.server_ids)
                )
                target = self.server_ids[min(idx, len(self.server_ids) - 1)]
                break
            self._assignment[name] = target
            moves.append(Move(name, None, target))
        return moves

    def server_added(self, server_id: object, power_hint: Optional[float] = None) -> List[Move]:
        """Add a server; existing assignments stay put (static policy)."""
        if server_id in self.server_ids:
            raise ValueError(f"server {server_id!r} already present")
        self.server_ids.append(server_id)
        return []

    def assignments(self) -> Dict[str, object]:
        return dict(self._assignment)
