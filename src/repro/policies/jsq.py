"""JSQ(d): join-the-shortest-of-d-queues placement (power of d choices).

The adaptive randomized baseline for the scaling benchmark, after
Mukhopadhyay et al.'s mean-field treatment of JSQ(d) on heterogeneous
servers. Each file set hashes to ``d`` candidate servers (rounds
``0..d-1`` of the shared :class:`~repro.core.hashing.HashFamily`); at
every tuning round it is (re)assigned to whichever candidate reported
the lowest mean latency in the previous interval.

Two deliberate deviations from the queue-length-sampling original,
both forced by the metadata-cluster setting:

* *File sets*, not individual requests, are the placement unit — the
  same granularity every other policy in this repo uses.
* The load signal is the per-interval latency report (one number per
  server per round), so decisions run on interval-stale estimates
  rather than instantaneous queue lengths. The herding this causes
  under coarse feedback is a real phenomenon the benchmark curves are
  meant to expose, not a bug.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Mapping, Optional

import numpy as np

from ..cluster.fileset import FileSetCatalog
from ..core.errors import ConfigurationError
from ..core.hashing import HashFamily
from .base import (
    LoadManager,
    Move,
    PrescientKnowledge,
    RebalanceContext,
    RelocationStats,
)

__all__ = ["JSQd"]


class JSQd(RelocationStats, LoadManager):
    """Power-of-d-choices assignment on interval latency feedback."""

    def __init__(
        self,
        server_ids: List[object],
        hash_family: Optional[HashFamily] = None,
        d: int = 2,
        emit_moves: bool = True,
    ) -> None:
        if d < 1:
            raise ConfigurationError(f"d must be >= 1, got {d}")
        self.server_ids = list(server_ids)
        self.hash_family = hash_family or HashFamily()
        if d > self.hash_family.max_probes:
            raise ConfigurationError(
                f"d={d} exceeds the family's probe budget "
                f"{self.hash_family.max_probes}"
            )
        self.d = int(d)
        self.name = f"jsq{d}"
        self.emit_moves = bool(emit_moves)
        self._slot: Dict[object, int] = {
            sid: i for i, sid in enumerate(self.server_ids)
        }
        self._names: List[str] = []
        self._candidates: Optional[np.ndarray] = None
        self._assign: Optional[np.ndarray] = None
        self._index: Optional[Dict[str, int]] = None
        #: Per-server liveness under churn; dead candidates estimate ∞.
        self._alive = np.ones(len(self.server_ids), dtype=bool)
        #: Last interval's latency estimates (stale between rounds —
        #: deliberately: JSQ(d) decisions run on interval feedback).
        self._estimate = np.zeros(len(self.server_ids), dtype=np.float64)
        self.total_sheds = 0
        self._init_relocation_stats()

    # ------------------------------------------------------------------ #
    def initial_placement(
        self, catalog: FileSetCatalog, knowledge: Optional[PrescientKnowledge]
    ) -> Dict[str, object]:
        self._names = list(catalog.names)
        self._index = None
        m = len(self._names)
        k = len(self.server_ids)
        cand = np.empty((m, self.d), dtype=np.int64)
        for j in range(self.d):
            offsets = self.hash_family.batch_offsets(self._names, j)
            cand[:, j] = np.minimum((offsets * k).astype(np.int64), k - 1)
        self._candidates = cand
        # No feedback yet: take the first choice (uniform hashing).
        self._assign = cand[:, 0].copy()
        return {}

    # ------------------------------------------------------------------ #
    def locate(self, fileset: str) -> object:
        if self._index is None:
            self._index = {name: i for i, name in enumerate(self._names)}
        return self.server_ids[self._assign[self._index[fileset]]]

    def assignment_vector(self, server_slots: Mapping[object, int]) -> np.ndarray:
        translate = np.array(
            [server_slots[sid] for sid in self.server_ids], dtype=np.int64
        )
        return translate[self._assign]

    # ------------------------------------------------------------------ #
    def rebalance(self, ctx: RebalanceContext) -> List[Move]:
        """Re-pick the least-loaded of each file set's d candidates.

        Idle servers (``nan`` mean latency) estimate 0 — an idle queue
        is by definition the shortest.
        """
        estimate = np.zeros(len(self.server_ids), dtype=np.float64)
        for report in ctx.reports:
            slot = self._slot.get(report.server_id)
            if slot is not None and not math.isnan(report.mean_latency):
                estimate[slot] = report.mean_latency
        self._estimate = estimate
        start = time.perf_counter()
        new = self._pick(np.arange(self._assign.shape[0]))
        self._note_relocation(
            "tune", self._assign.shape[0], len(self._names),
            time.perf_counter() - start,
        )
        changed = np.flatnonzero(new != self._assign)
        old = self._assign
        self._assign = new
        self.total_sheds += int(changed.size)
        if not self.emit_moves or changed.size == 0:
            return []
        names = self._names
        sids = self.server_ids
        return [Move(names[i], sids[old[i]], sids[new[i]]) for i in changed]

    def _pick(self, items: np.ndarray) -> np.ndarray:
        """Best live candidate of each item on the latest estimates.

        Dead servers estimate ``inf`` so they are never chosen while a
        live candidate exists; an item whose candidates are *all* dead
        falls back to the globally least-loaded live server (the
        cluster-wide shortest queue — d widens to k under duress).
        First minimum wins on ties (argmin), so rounds replay
        deterministically.
        """
        masked = np.where(self._alive, self._estimate, np.inf)
        cand = self._candidates[items]
        pick = np.argmin(masked[cand], axis=1)
        new = cand[np.arange(items.shape[0]), pick]
        stranded = ~self._alive[new]
        if stranded.any():
            new[stranded] = int(np.argmin(masked))
        return new

    # ------------------------------------------------------------------ #
    # churn (vectorized chaos path)
    # ------------------------------------------------------------------ #
    def server_failed(self, server_id: object) -> List[Move]:
        """Re-pick only the dead server's items among their candidates."""
        slot = self._slot.get(server_id)
        if slot is None or not self._alive[slot]:
            return []
        if int(self._alive.sum()) <= 1:
            return []  # refuse to strand the whole catalog
        self._alive[slot] = False
        start = time.perf_counter()
        items = np.flatnonzero(self._assign == slot)
        if items.size:
            self._assign[items] = self._pick(items)
            self.total_sheds += int(items.size)
        self._note_relocation(
            "fail", int(items.size), len(self._names),
            time.perf_counter() - start,
        )
        return []

    def server_added(self, server_id: object, power_hint=None) -> List[Move]:
        """Unmask a recovered server; items return via normal re-picks."""
        slot = self._slot.get(server_id)
        if slot is not None:
            self._alive[slot] = True
            self._note_relocation("recover", 0, len(self._names), 0.0)
        return []

    def shared_state_entries(self) -> int:
        """One latency estimate per server."""
        return len(self.server_ids)
