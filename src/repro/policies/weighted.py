"""Static capacity-weighted hashing — the "if you knew the powers" baseline.

Related-work context (§2): one family of techniques "take[s] into
account server heterogeneity but require[s] ... knowledge of the
capacity of any given server". The modern common form is weighted
consistent/rendezvous hashing: place each file set on the server whose
capacity-scaled hash score wins. It is static (no tuning traffic, no
movement) and heterogeneity-aware — but it needs the very knowledge ANU
is designed to operate without, and being static it cannot react to
workload skew or hashing variance.

This policy completes the comparison matrix:

===================  ============  ==================
policy               adapts?       needs capacities?
===================  ============  ==================
simple               no            no
weighted (this)      no            yes
anu                  yes           no
prescient/virtual    yes           yes (oracle)
===================  ============  ==================

Placement is weighted rendezvous (highest-random-weight) hashing:
``score(s, f) = -ln(h(s, f)) / weight_s`` minimized over servers —
the standard construction whose expected share is proportional to the
weight and whose placements move minimally on membership change.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from ..cluster.fileset import FileSetCatalog
from ..core.hashing import HashFamily
from .base import LoadManager, Move, PrescientKnowledge, RebalanceContext

__all__ = ["WeightedHashing"]


class WeightedHashing(LoadManager):
    """Weighted rendezvous hashing over known server capacities.

    Parameters
    ----------
    server_weights:
        Server id → capacity weight (> 0). In the paper's cluster these
        are the true powers {1, 3, 5, 7, 9} — knowledge ANU never gets.
    """

    name = "weighted"

    def __init__(
        self,
        server_weights: Dict[object, float],
        hash_family: Optional[HashFamily] = None,
    ) -> None:
        if not server_weights:
            raise ValueError("need at least one server")
        if any(w <= 0 for w in server_weights.values()):
            raise ValueError("weights must be > 0")
        self.weights = dict(server_weights)
        self.hash_family = hash_family or HashFamily()
        self._assignment: Dict[str, object] = {}

    # ------------------------------------------------------------------ #
    def _score(self, server_id: object, fileset: str) -> float:
        """Weighted-rendezvous score; the minimum wins.

        ``-ln(u) / w`` with ``u = h(server, fileset)`` uniform: an
        exponential race where server ``s`` wins with probability
        ``w_s / Σw`` — the textbook weighted rendezvous construction.
        """
        u = self.hash_family.offset(f"{server_id!r}\x00{fileset}")
        u = min(max(u, 1e-18), 1.0 - 1e-18)
        return -math.log(u) / self.weights[server_id]

    def _place(self, fileset: str) -> object:
        return min(
            self.weights,
            key=lambda sid: (self._score(sid, fileset), repr(sid)),
        )

    # ------------------------------------------------------------------ #
    def initial_placement(
        self, catalog: FileSetCatalog, knowledge: Optional[PrescientKnowledge]
    ) -> Dict[str, object]:
        """Weight-proportional static placement (no oracle needed)."""
        self._assignment = {name: self._place(name) for name in catalog.names}
        return dict(self._assignment)

    def locate(self, fileset: str) -> object:
        sid = self._assignment.get(fileset)
        if sid is None:
            sid = self._place(fileset)
            self._assignment[fileset] = sid
        return sid

    def rebalance(self, ctx: RebalanceContext) -> List[Move]:
        """Static policy: never moves anything."""
        return []

    def shared_state_entries(self) -> int:
        """The weight vector is the only replicated state: O(k)."""
        return len(self.weights)

    # ------------------------------------------------------------------ #
    def server_failed(self, server_id: object) -> List[Move]:
        """Rendezvous property: only the victim's file sets move."""
        if server_id not in self.weights:
            raise ValueError(f"unknown server {server_id!r}")
        del self.weights[server_id]
        if not self.weights:
            raise ValueError("no surviving servers")
        moves: List[Move] = []
        for name, sid in self._assignment.items():
            if sid == server_id:
                new = self._place(name)
                self._assignment[name] = new
                moves.append(Move(name, None, new))
        return moves

    def server_added(self, server_id: object, power_hint: Optional[float] = None) -> List[Move]:
        """Adding a server steals exactly its weight share of file sets."""
        if server_id in self.weights:
            raise ValueError(f"server {server_id!r} already present")
        self.weights[server_id] = float(power_hint) if power_hint else 1.0
        moves: List[Move] = []
        for name, sid in self._assignment.items():
            new = self._place(name)
            if new != sid:
                self._assignment[name] = new
                moves.append(Move(name, sid, new))
        return moves

    def assignments(self) -> Dict[str, object]:
        return dict(self._assignment)
