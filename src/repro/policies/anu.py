"""ANU randomization as a :class:`LoadManager` — the system under test.

A thin adapter over :class:`repro.core.ANUManager`. Note what it does
*not* use: ``ctx.knowledge`` (the prescient oracle) is ignored — ANU
adapts purely from the servers' latency reports, which is the paper's
central claim ("achieves load balance without a-priori knowledge of
heterogeneity", §5.2.2).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..cluster.fileset import FileSetCatalog
from ..core.anu import ANUManager
from ..core.hashing import HashFamily
from ..core.tuning import TuningPolicy
from .base import LoadManager, Move, PrescientKnowledge, RebalanceContext

__all__ = ["ANURandomization"]


class ANURandomization(LoadManager):
    """Adaptive, non-uniform randomized placement."""

    name = "anu"

    def __init__(
        self,
        server_ids: List[object],
        hash_family: Optional[HashFamily] = None,
        policy: Optional[TuningPolicy] = None,
        controller: Optional[object] = None,
    ) -> None:
        self.manager = ANUManager(
            server_ids=server_ids,
            hash_family=hash_family,
            policy=policy,
            controller=controller,
        )
        #: Servers flagged incompetent so far (paper §5.2.2: "ANU
        #: randomization identifies such incompetent components and
        #: notifies administrators").
        self.incompetent: List[object] = []

    # ------------------------------------------------------------------ #
    def initial_placement(
        self, catalog: FileSetCatalog, knowledge: Optional[PrescientKnowledge]
    ) -> Dict[str, object]:
        """Equal regions + hashing; the oracle is deliberately unused."""
        return self.manager.register_filesets(catalog.names)

    def locate(self, fileset: str) -> object:
        return self.manager.assignment_of(fileset)

    def rebalance(self, ctx: RebalanceContext) -> List[Move]:
        """One delegate tuning round driven only by latency reports."""
        rec = self.manager.tune(list(ctx.reports))
        self.incompetent.extend(rec.newly_incompetent)
        return [Move(s.fileset, s.source, s.target) for s in rec.sheds]

    def use_controller(self, controller: object) -> None:
        """Swap the tuning rule in at assembly time (see ANUManager)."""
        self.manager.use_controller(controller)

    @property
    def controller(self) -> object:
        """The active tuning rule (a :class:`repro.control.Controller`)."""
        return self.manager.controller

    def shared_state_entries(self) -> int:
        """O(k) region descriptors — "the unit interval is the only
        shared state" (§5.4)."""
        return self.manager.shared_state_entries()

    # ------------------------------------------------------------------ #
    def server_failed(self, server_id: object) -> List[Move]:
        rec = self.manager.fail_server(server_id)
        return [Move(s.fileset, s.source, s.target) for s in rec.sheds]

    def server_added(self, server_id: object, power_hint: Optional[float] = None) -> List[Move]:
        rec = self.manager.add_server(server_id)
        return [Move(s.fileset, s.source, s.target) for s in rec.sheds]

    def assignments(self) -> Dict[str, object]:
        return self.manager.assignments

    @property
    def region_lengths(self) -> Dict[object, float]:
        """Current mapped-region length per server (diagnostics)."""
        return self.manager.lengths()
