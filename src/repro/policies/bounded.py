"""Consistent hashing with bounded loads (Mirrokni et al., 2018).

The modern static baseline the scaling benchmark compares ANU against:
file sets hash onto a replica ring; each is placed on the first
clockwise server whose load is still below ``ceil(c · m / n)`` items
(``c`` = :attr:`capacity_factor`). The bound caps the maximum load at
``c×`` the mean regardless of hash skew — but it is *static*: capacity
counts items, not work, and never adapts to server heterogeneity, which
is exactly the axis ANU tunes on.

This is an order-invariant batch variant: rather than inserting items
one at a time (where placement depends on arrival order), round ``r``
offers every still-unplaced item to the ``r``-th server on its
clockwise walk, admitting per server in hash-offset order up to the
remaining capacity. Deterministic in the name set alone, which is what
a reproducible benchmark needs; the load bound is enforced exactly.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..cluster.fileset import FileSetCatalog
from ..core.errors import ConfigurationError
from ..core.hashing import HashFamily
from .base import (
    LoadManager,
    Move,
    PrescientKnowledge,
    RebalanceContext,
    RelocationStats,
)

__all__ = ["BoundedLoadConsistentHashing"]


class BoundedLoadConsistentHashing(RelocationStats, LoadManager):
    """Static consistent-hash placement with a per-server load bound."""

    name = "chbl"

    def __init__(
        self,
        server_ids: List[object],
        hash_family: Optional[HashFamily] = None,
        capacity_factor: float = 1.25,
        replicas: int = 64,
    ) -> None:
        if capacity_factor <= 1.0:
            raise ConfigurationError(
                f"capacity_factor must be > 1, got {capacity_factor}"
            )
        if replicas < 1:
            raise ConfigurationError(f"replicas must be >= 1, got {replicas}")
        self.server_ids = list(server_ids)
        self.hash_family = hash_family or HashFamily()
        self.capacity_factor = float(capacity_factor)
        self.replicas = int(replicas)
        self._slot: Dict[object, int] = {
            sid: i for i, sid in enumerate(self.server_ids)
        }
        # The replica ring: `replicas` points per server on the unit
        # circle, from the same hash family the items use.
        ring_names = [
            f"chbl/{sid!r}/{j}" for sid in self.server_ids for j in range(self.replicas)
        ]
        owners = np.repeat(np.arange(len(self.server_ids)), self.replicas)
        points = self.hash_family.batch_offsets(ring_names, 0)
        order = np.argsort(points, kind="stable")
        self._ring_points = points[order]
        self._ring_owner = owners[order]
        self._names: List[str] = []
        self._assign: Optional[np.ndarray] = None
        self._index: Optional[Dict[str, int]] = None
        self.capacity = 0
        #: Per-server liveness under churn (a dead server owns no ring
        #: arcs until re-admitted).
        self._alive = np.ones(len(self.server_ids), dtype=bool)
        #: Original home of each displaced item (-1 = at home). First
        #: home wins: an item bounced through several refuges still
        #: returns to its original owner on that owner's recovery.
        self._displaced_from: Optional[np.ndarray] = None
        #: Offsets of every item (kept for deterministic churn order).
        self._offsets: Optional[np.ndarray] = None
        self.total_sheds = 0
        self._init_relocation_stats()

    # ------------------------------------------------------------------ #
    def initial_placement(
        self, catalog: FileSetCatalog, knowledge: Optional[PrescientKnowledge]
    ) -> Dict[str, object]:
        self._names = list(catalog.names)
        self._index = None
        m = len(self._names)
        k = len(self.server_ids)
        ring_size = self._ring_points.size
        self.capacity = max(1, math.ceil(self.capacity_factor * m / k))
        offsets = self.hash_family.batch_offsets(self._names, 0)
        self._offsets = offsets
        self._base = np.searchsorted(
            self._ring_points, offsets, side="right"
        ) % ring_size
        assign = np.full(m, -1, dtype=np.int64)
        load = np.zeros(k, dtype=np.int64)
        self._place(np.arange(m), assign, load)
        self._assign = assign
        self.load = load
        self._displaced_from = np.full(m, -1, dtype=np.int64)
        return {}

    def _place(
        self, unplaced: np.ndarray, assign: np.ndarray, load: np.ndarray
    ) -> None:
        """Round-based bounded admission of ``unplaced`` onto the ring.

        Dead servers (``_alive`` false) have zero remaining capacity,
        so the clockwise walk skips them — the churn path reuses the
        exact initial-placement admission order.
        """
        k = len(self.server_ids)
        ring_size = self._ring_points.size
        offsets = self._offsets
        base = self._base
        avail_cap = np.where(self._alive, self.capacity, 0)
        for step in range(ring_size):
            if unplaced.size == 0:
                break
            cand = self._ring_owner[(base[unplaced] + step) % ring_size]
            # Admission order within the round: by (candidate, offset) —
            # pure in the name set, independent of catalog order.
            order = np.lexsort((offsets[unplaced], cand))
            items = unplaced[order]
            cand = cand[order]
            group_start = np.flatnonzero(np.r_[True, cand[1:] != cand[:-1]])
            sizes = np.diff(np.r_[group_start, cand.size])
            position = np.arange(cand.size) - np.repeat(group_start, sizes)
            admitted = position < np.maximum(avail_cap - load, 0)[cand]
            assign[items[admitted]] = cand[admitted]
            load += np.bincount(cand[admitted], minlength=k)
            unplaced = items[~admitted]
        # A round admits bounded batches, so with extreme skew a few
        # items can outlast the walk; spill them to the least-loaded
        # live server in offset order (deterministic, still
        # bound-respecting because total capacity exceeds m).
        if unplaced.size:
            live = np.flatnonzero(self._alive)
            for i in unplaced[np.argsort(offsets[unplaced], kind="stable")]:
                slot = int(live[np.argmin(load[live])])
                assign[i] = slot
                load[slot] += 1

    # ------------------------------------------------------------------ #
    def locate(self, fileset: str) -> object:
        if self._index is None:
            self._index = {name: i for i, name in enumerate(self._names)}
        return self.server_ids[self._assign[self._index[fileset]]]

    def assignment_vector(self, server_slots: Mapping[object, int]) -> np.ndarray:
        translate = np.array(
            [server_slots[sid] for sid in self.server_ids], dtype=np.int64
        )
        return translate[self._assign]

    def rebalance(self, ctx: RebalanceContext) -> List[Move]:
        """Static placement: tuning rounds change nothing."""
        return []

    # ------------------------------------------------------------------ #
    # churn (vectorized chaos path)
    # ------------------------------------------------------------------ #
    def _recompute_capacity(self) -> None:
        k_alive = int(self._alive.sum())
        if k_alive:
            self.capacity = max(
                1, math.ceil(self.capacity_factor * len(self._names) / k_alive)
            )

    def server_failed(self, server_id: object) -> List[Move]:
        """Displace a dead server's items clockwise to live servers.

        The bound rescales to the surviving count (``ceil(c·m/k_alive)``)
        and the displaced items continue their own ring walks — the
        minimal-disruption property of consistent hashing: nothing
        already on a live server moves.
        """
        slot = self._slot.get(server_id)
        if slot is None or not self._alive[slot]:
            return []
        if int(self._alive.sum()) <= 1:
            return []  # refuse to displace onto an empty cluster
        self._alive[slot] = False
        self._recompute_capacity()
        start = time.perf_counter()
        items = np.flatnonzero(self._assign == slot)
        if items.size:
            # First home wins: only record a home for items that were
            # not already refugees from an earlier crash.
            fresh = self._displaced_from[items] == -1
            self._displaced_from[items[fresh]] = slot
            self.load[slot] -= items.size
            self._assign[items] = -1
            self._place(items, self._assign, self.load)
            self.total_sheds += int(items.size)
        self._note_relocation(
            "fail", int(items.size), len(self._names),
            time.perf_counter() - start,
        )
        return []

    def server_added(self, server_id: object, power_hint=None) -> List[Move]:
        """Return a recovered server's displaced items to their home.

        Exactly the items the crash displaced move back (their original
        placement respected the original, tighter bound); everything
        else stays put, and the bound relaxes back toward the full-
        cluster capacity.
        """
        slot = self._slot.get(server_id)
        if slot is None or self._alive[slot]:
            return []
        self._alive[slot] = True
        self._recompute_capacity()
        start = time.perf_counter()
        home = np.flatnonzero(self._displaced_from == slot)
        if home.size:
            refuge = self._assign[home]
            self.load -= np.bincount(refuge, minlength=self.load.size)
            self._assign[home] = slot
            self.load[slot] += home.size
            self._displaced_from[home] = -1
            self.total_sheds += int(home.size)
        self._note_relocation(
            "recover", int(home.size), len(self._names),
            time.perf_counter() - start,
        )
        return []

    def shared_state_entries(self) -> int:
        """The ring plus one load counter per server."""
        return self._ring_points.size + len(self.server_ids)
