"""The virtual-processor baseline.

"The virtual processor system first randomly distributes file sets
into Nv virtual processors where N is the number of physical servers
and v is a scaling factor chosen from interval [1,10] ... By default,
we set the value of v to be 5. The system then utilizes perfect
knowledge about server capabilities and virtual processor workload
characteristics to map virtual processors to servers in a way that
minimizes average latency." (§5.1)

The file-set → VP map is a *static* hash (VPs are fixed buckets); only
the VP → server map is re-optimized each interval, with the same
optimizer as dynamic prescient but VPs as the indivisible items. The
coarser the VPs (small ``Nv``), the worse the achievable balance —
Figure 8's trade-off — while shared state grows with ``Nv`` (one
address entry per VP; §5.4 and footnote 1).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..cluster.fileset import FileSetCatalog
from ..core.hashing import HashFamily
from .base import LoadManager, Move, PrescientKnowledge, RebalanceContext
from .optimizer import balance_items

__all__ = ["VirtualProcessorSystem"]


class VirtualProcessorSystem(LoadManager):
    """Static file-set→VP hash + prescient VP→server remapping.

    Parameters
    ----------
    server_ids:
        Physical servers (``N``).
    n_virtual:
        Total virtual processors (``Nv``); the paper default is
        ``v = 5`` → ``n_virtual = 5 * N``.
    """

    name = "virtual"

    def __init__(
        self,
        server_ids: List[object],
        n_virtual: Optional[int] = None,
        v: float = 5.0,
        hash_family: Optional[HashFamily] = None,
        tuning_interval: float = 120.0,
    ) -> None:
        if not server_ids:
            raise ValueError("need at least one server")
        self.server_ids = list(server_ids)
        if n_virtual is None:
            n_virtual = int(round(v * len(server_ids)))
        if n_virtual < 1:
            raise ValueError(f"need at least one virtual processor, got {n_virtual}")
        self.n_virtual = n_virtual
        self.hash_family = hash_family or HashFamily()
        self.tuning_interval = float(tuning_interval)
        # Static bucket map: file set -> VP index.
        self._vp_of: Dict[str, int] = {}
        # Dynamic map: VP index -> server id.
        self._server_of_vp: Dict[int, object] = {}

    # ------------------------------------------------------------------ #
    def _vp(self, fileset: str) -> int:
        vp = self._vp_of.get(fileset)
        if vp is None:
            vp = self.hash_family.uniform_server_choice(fileset, self.n_virtual)
            self._vp_of[fileset] = vp
        return vp

    def _vp_work(self, fileset_work: Dict[str, float]) -> Dict[str, float]:
        """Aggregate per-file-set work to per-VP work (keys are str ids)."""
        agg = {f"vp{v}": 0.0 for v in range(self.n_virtual)}
        for name, work in fileset_work.items():
            agg[f"vp{self._vp(name)}"] += work
        return agg

    # ------------------------------------------------------------------ #
    def initial_placement(
        self, catalog: FileSetCatalog, knowledge: Optional[PrescientKnowledge]
    ) -> Dict[str, object]:
        """Hash file sets to VPs, then optimally map VPs to servers."""
        if knowledge is None:
            raise ValueError("the virtual-processor system requires the oracle")
        for name in catalog.names:
            self._vp(name)
        items = self._vp_work(
            {
                name: knowledge.average_work.get(name, 0.0)
                or catalog.get(name).total_work * 1e-9
                for name in catalog.names
            }
        )
        vp_map = balance_items(items, dict(knowledge.server_powers), self.tuning_interval)
        self._server_of_vp = {int(k[2:]): sid for k, sid in vp_map.items()}
        return self.assignments()

    def locate(self, fileset: str) -> object:
        return self._server_of_vp[self._vp(fileset)]

    def rebalance(self, ctx: RebalanceContext) -> List[Move]:
        """Re-map VPs to servers against the upcoming interval's work."""
        if ctx.knowledge is None:
            raise ValueError("the virtual-processor system requires the oracle")
        items = self._vp_work(dict(ctx.knowledge.average_work))
        current = {f"vp{v}": sid for v, sid in self._server_of_vp.items()}
        new = balance_items(
            items,
            dict(ctx.knowledge.server_powers),
            self.tuning_interval,
            current=current,
        )
        moves: List[Move] = []
        new_map = {int(k[2:]): sid for k, sid in new.items()}
        for name, vp in self._vp_of.items():
            old_sid = self._server_of_vp.get(vp)
            new_sid = new_map[vp]
            if old_sid != new_sid:
                moves.append(Move(name, old_sid, new_sid))
        self._server_of_vp = new_map
        return moves

    def shared_state_entries(self) -> int:
        """One replicated address entry per virtual processor (§5.4)."""
        return self.n_virtual

    # ------------------------------------------------------------------ #
    def server_failed(self, server_id: object) -> List[Move]:
        """Re-map the failed server's VPs across survivors (even spread)."""
        if server_id not in self.server_ids:
            raise ValueError(f"unknown server {server_id!r}")
        self.server_ids.remove(server_id)
        if not self.server_ids:
            raise ValueError("no surviving servers")
        moves: List[Move] = []
        i = 0
        remap: Dict[int, object] = {}
        for vp, sid in self._server_of_vp.items():
            if sid == server_id:
                remap[vp] = self.server_ids[i % len(self.server_ids)]
                i += 1
        self._server_of_vp.update(remap)
        for name, vp in self._vp_of.items():
            if vp in remap:
                moves.append(Move(name, None, remap[vp]))
        return moves

    def server_added(self, server_id: object, power_hint: Optional[float] = None) -> List[Move]:
        """Admit a server; the next round's optimizer assigns it VPs."""
        if server_id in self.server_ids:
            raise ValueError(f"server {server_id!r} already present")
        self.server_ids.append(server_id)
        return []

    def assignments(self) -> Dict[str, object]:
        return {name: self._server_of_vp[vp] for name, vp in self._vp_of.items()}

    def vp_populations(self) -> Dict[int, int]:
        """File sets per VP (diagnostic for the Figure 8 analysis)."""
        pops = {v: 0 for v in range(self.n_virtual)}
        for vp in self._vp_of.values():
            pops[vp] += 1
        return pops
