"""Lookup-table bin-packing baseline (related-work comparator).

The conclusion compares ANU against "bin-packing load balancing
schemes [36, 43] ... in which any workload unit can be placed onto any
server. To locate file sets, each computer must maintain a table that
maps file sets to a particular server. This can represent a large
amount of state" (§6). This policy realizes that family so the
shared-state bench (A5) has a concrete O(m) point, and so the latency
comparison has an *online, non-oracle* adaptive reference.

It is a legitimate online system: it observes only what servers
measured (interval latency reports and per-file-set served work) and
greedily moves the hottest file sets from over-average-latency servers
to under-average ones — the Utopia/Zhu-style "transfer from heavily
loaded to lightly loaded" discipline, with an estimated-capacity model
learned from observations.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from ..cluster.fileset import FileSetCatalog
from ..core.hashing import HashFamily
from .base import LoadManager, Move, PrescientKnowledge, RebalanceContext

__all__ = ["TableBinPacking"]


class TableBinPacking(LoadManager):
    """Observation-driven greedy rebalancing over an explicit table.

    Parameters
    ----------
    server_ids:
        Cluster membership.
    move_budget:
        Maximum file sets moved per tuning round (keeps the policy from
        thrashing; bin-packing schemes in the literature throttle
        migration similarly).
    """

    name = "table"

    def __init__(
        self,
        server_ids: List[object],
        hash_family: Optional[HashFamily] = None,
        move_budget: int = 5,
    ) -> None:
        if not server_ids:
            raise ValueError("need at least one server")
        if move_budget < 1:
            raise ValueError(f"move_budget must be >= 1, got {move_budget}")
        self.server_ids = list(server_ids)
        self.hash_family = hash_family or HashFamily()
        self.move_budget = int(move_budget)
        self._table: Dict[str, object] = {}
        # Learned estimate of each server's service rate (work/s),
        # updated from observed throughput when the server is busy.
        self._rate_estimate: Dict[object, float] = {}

    # ------------------------------------------------------------------ #
    def initial_placement(
        self, catalog: FileSetCatalog, knowledge: Optional[PrescientKnowledge]
    ) -> Dict[str, object]:
        """Uniform initial spread (no knowledge assumed)."""
        self._table = {
            name: self.server_ids[
                self.hash_family.uniform_server_choice(name, len(self.server_ids))
            ]
            for name in catalog.names
        }
        return dict(self._table)

    def locate(self, fileset: str) -> object:
        try:
            return self._table[fileset]
        except KeyError:
            raise KeyError(f"file set {fileset!r} not in table") from None

    # ------------------------------------------------------------------ #
    def rebalance(self, ctx: RebalanceContext) -> List[Move]:
        """Move hottest file sets from slow servers to fast ones."""
        reports = [r for r in ctx.reports if not r.is_idle]
        if len(reports) < 2 or not ctx.observed_fileset_work:
            return []
        latencies = {r.server_id: r.mean_latency for r in reports}
        counts = {r.server_id: r.request_count for r in reports}
        total = sum(counts.values())
        avg = sum(latencies[s] * counts[s] for s in latencies) / total
        if avg <= 0 or math.isnan(avg):
            return []
        overloaded = sorted(
            (s for s, lat in latencies.items() if lat > 1.5 * avg),
            key=lambda s: -latencies[s],
        )
        underloaded = sorted(
            (s for s, lat in latencies.items() if lat < 0.75 * avg),
            key=lambda s: latencies[s],
        )
        # Idle servers are maximally underloaded.
        idle = [r.server_id for r in ctx.reports if r.is_idle]
        underloaded.extend(s for s in idle if s in self.server_ids)
        if not overloaded or not underloaded:
            return []
        moves: List[Move] = []
        budget = self.move_budget
        for src in overloaded:
            if budget <= 0:
                break
            mine = sorted(
                (
                    (ctx.observed_fileset_work.get(name, 0.0), name)
                    for name, sid in self._table.items()
                    if sid == src
                ),
                reverse=True,
            )
            for work, name in mine:
                if budget <= 0 or work <= 0:
                    break
                dst = underloaded[len(moves) % len(underloaded)]
                self._table[name] = dst
                moves.append(Move(name, src, dst))
                budget -= 1
        return moves

    def shared_state_entries(self) -> int:
        """The full table is replicated: one entry per file set (O(m))."""
        return len(self._table)

    # ------------------------------------------------------------------ #
    def server_failed(self, server_id: object) -> List[Move]:
        """Spread the failed server's file sets round-robin."""
        if server_id not in self.server_ids:
            raise ValueError(f"unknown server {server_id!r}")
        self.server_ids.remove(server_id)
        if not self.server_ids:
            raise ValueError("no surviving servers")
        moves: List[Move] = []
        i = 0
        for name, sid in self._table.items():
            if sid == server_id:
                dst = self.server_ids[i % len(self.server_ids)]
                self._table[name] = dst
                moves.append(Move(name, None, dst))
                i += 1
        return moves

    def server_added(self, server_id: object, power_hint: Optional[float] = None) -> List[Move]:
        if server_id in self.server_ids:
            raise ValueError(f"server {server_id!r} already present")
        self.server_ids.append(server_id)
        return []

    def assignments(self) -> Dict[str, object]:
        return dict(self._table)
