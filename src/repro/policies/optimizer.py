"""Assignment optimizer shared by the prescient-class policies.

Dynamic prescient "realizes the optimal load balance through
identifying the permutation of file sets onto servers that minimizes
average latency" (§5.1); the virtual-processor system runs the same
procedure with VPs as the items. This module implements that search:

* an **estimated-average-latency objective** under an M/M/1-style
  queueing model per server (service rate = power, offered rate = the
  items' work), with a steep-but-finite penalty above a utilization
  cap so overloaded configurations compare monotonically;
* **LPT greedy seeding** (largest item first onto the server where the
  objective grows least) when no warm start exists;
* **local search** (single-item moves, then pairwise swaps) to a local
  optimum, warm-started from the incumbent assignment so optimal
  placements that are already optimal do not churn items.

Everything is deterministic: ties break on item/server order.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = ["estimated_average_latency", "balance_items"]

#: Utilization above which the queueing estimate switches to a linear
#: penalty (an M/M/1 latency diverges at ρ=1; a finite steep slope keeps
#: the search space totally ordered).
_RHO_CAP = 0.95
_PENALTY_SLOPE = 400.0


def estimated_average_latency(
    loads: Mapping[object, float],
    powers: Mapping[object, float],
    interval: float = 1.0,
) -> float:
    """Estimated mean request latency of an assignment.

    ``loads[i]`` is the work (units) offered to server ``i`` over
    ``interval`` seconds; ``powers[i]`` its service rate. Each server is
    modeled as an M/M/1 queue in units of work: utilization
    ``ρ = load / (power * interval)`` and a request's expected response
    time scales as ``1 / (power * (1 - ρ))``. The returned value is the
    work-weighted average over servers — the latency the average request
    would see — so minimizing it is the paper's objective.
    """
    total = sum(loads.values())
    if total <= 0:
        return 0.0
    acc = 0.0
    for sid, load in loads.items():
        if load <= 0:
            continue
        power = powers[sid]
        rho = load / (power * interval)
        if rho < _RHO_CAP:
            t = 1.0 / (power * (1.0 - rho))
        else:
            t = 1.0 / (power * (1.0 - _RHO_CAP)) + _PENALTY_SLOPE * (rho - _RHO_CAP) / power
        acc += load * t
    return acc / total


def balance_items(
    items: Mapping[str, float],
    powers: Mapping[object, float],
    interval: float = 1.0,
    current: Optional[Mapping[str, object]] = None,
    max_passes: int = 30,
) -> Dict[str, object]:
    """Assign items to servers minimizing estimated average latency.

    Parameters
    ----------
    items:
        Item name → offered work over the interval. Zero-work items stay
        on their current server (nothing to gain by moving them, and
        moving is never free).
    powers:
        Server id → service rate. Must be non-empty.
    interval:
        Length of the interval over which ``items`` offer their work.
    current:
        Warm-start assignment. Items on dead servers (ids absent from
        ``powers``) are treated as unassigned.
    max_passes:
        Local-search pass budget; the search almost always converges in
        a handful of passes for paper-scale instances (50 items × 5
        servers).

    Returns
    -------
    dict
        Item name → server id, a local optimum of the objective.
    """
    if not powers:
        raise ValueError("no servers to assign to")
    server_order: List[object] = list(powers)
    assignment: Dict[str, object] = {}
    loads: Dict[object, float] = {sid: 0.0 for sid in server_order}

    # Seed: warm start where valid, LPT for the rest.
    unplaced: List[Tuple[str, float]] = []
    for name, work in items.items():
        sid = current.get(name) if current else None
        if sid is not None and sid in loads:
            assignment[name] = sid
            loads[sid] += work
        else:
            unplaced.append((name, work))
    unplaced.sort(key=lambda kv: (-kv[1], kv[0]))
    for name, work in unplaced:
        best_sid, best_val = None, None
        for sid in server_order:
            loads[sid] += work
            val = estimated_average_latency(loads, powers, interval)
            loads[sid] -= work
            if best_val is None or val < best_val - 1e-15:
                best_sid, best_val = sid, val
        assignment[name] = best_sid
        loads[best_sid] += work

    # Local search: moves, then swaps, until a full quiet pass. The
    # acceptance margin must scale with the objective: candidate loads
    # are maintained incrementally, so a mathematically-equal
    # configuration (e.g. swapping items between equal-power servers)
    # re-evaluates with rounding noise proportional to the score's
    # magnitude, and an absolute epsilon would accept it as an
    # "improvement" and churn a local optimum forever.
    item_order = sorted(items, key=lambda n: (-items[n], n))
    movable = [n for n in item_order if items[n] > 0]
    for _ in range(max_passes):
        improved = False
        score = estimated_average_latency(loads, powers, interval)
        margin = 1e-9 * (score if score > 1.0 else 1.0)
        # single-item moves
        for name in movable:
            work = items[name]
            src = assignment[name]
            for dst in server_order:
                if dst == src:
                    continue
                loads[src] -= work
                loads[dst] += work
                val = estimated_average_latency(loads, powers, interval)
                if val < score - margin:
                    assignment[name] = dst
                    score = val
                    margin = 1e-9 * (score if score > 1.0 else 1.0)
                    src = dst
                    improved = True
                else:
                    loads[src] += work
                    loads[dst] -= work
        # pairwise swaps (catch what moves cannot: exchanging unequal items)
        for i, a in enumerate(movable):
            for b in movable[i + 1 :]:
                sa, sb = assignment[a], assignment[b]
                if sa == sb:
                    continue
                wa, wb = items[a], items[b]
                loads[sa] += wb - wa
                loads[sb] += wa - wb
                val = estimated_average_latency(loads, powers, interval)
                if val < score - margin:
                    assignment[a], assignment[b] = sb, sa
                    score = val
                    margin = 1e-9 * (score if score > 1.0 else 1.0)
                    improved = True
                else:
                    loads[sa] -= wb - wa
                    loads[sb] -= wa - wb
        if not improved:
            break
    return assignment
