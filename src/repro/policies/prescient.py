"""Dynamic prescient: the perfect-knowledge upper bound.

"Dynamic prescient realizes the optimal load balance through
identifying the permutation of file sets onto servers that minimizes
average latency, because it has perfect knowledge of server
capabilities and workload properties. It provides the upper bound of
load balancing." (§5.1)

Every tuning interval it re-solves the file-set → server assignment
against the oracle's *upcoming* per-file-set work, warm-started from
the incumbent assignment (an already-optimal placement therefore does
not churn). It is an experimental yardstick, not a deployable system:
the oracle reads the pre-generated request schedule.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..cluster.fileset import FileSetCatalog
from .base import LoadManager, Move, PrescientKnowledge, RebalanceContext
from .optimizer import balance_items

__all__ = ["DynamicPrescient"]


class DynamicPrescient(LoadManager):
    """Re-optimizes the full file-set assignment each interval."""

    name = "prescient"

    def __init__(self, server_ids: List[object], tuning_interval: float = 120.0) -> None:
        if not server_ids:
            raise ValueError("need at least one server")
        self.server_ids = list(server_ids)
        self.tuning_interval = float(tuning_interval)
        self._assignment: Dict[str, object] = {}
        self._catalog: Optional[FileSetCatalog] = None

    # ------------------------------------------------------------------ #
    def initial_placement(
        self, catalog: FileSetCatalog, knowledge: Optional[PrescientKnowledge]
    ) -> Dict[str, object]:
        """Optimal placement before t=0 — balanced "from the very beginning"."""
        if knowledge is None:
            raise ValueError("dynamic prescient requires the oracle")
        self._catalog = catalog
        # Perfect knowledge of "workload properties" = characteristic
        # per-interval demand (rates), the quantity a placement can
        # actually balance. (Balancing against the raw upcoming arrival
        # schedule instead makes the system chase bursts: it re-homes
        # file sets every round, pays the §5.3 movement costs each time,
        # and ends up *worse* — measured in the A1/A2 ablations.)
        items = {
            name: knowledge.average_work.get(name, 0.0)
            or catalog.get(name).total_work * 1e-9
            for name in catalog.names
        }
        self._assignment = balance_items(
            items, dict(knowledge.server_powers), self.tuning_interval
        )
        return dict(self._assignment)

    def locate(self, fileset: str) -> object:
        try:
            return self._assignment[fileset]
        except KeyError:
            raise KeyError(f"file set {fileset!r} was never placed") from None

    def rebalance(self, ctx: RebalanceContext) -> List[Move]:
        """Re-solve against the oracle's characteristic demand."""
        if ctx.knowledge is None:
            raise ValueError("dynamic prescient requires the oracle each round")
        items = {name: ctx.knowledge.average_work.get(name, 0.0) for name in self._assignment}
        new = balance_items(
            items,
            dict(ctx.knowledge.server_powers),
            self.tuning_interval,
            current=self._assignment,
        )
        moves = [
            Move(name, self._assignment[name], sid)
            for name, sid in new.items()
            if sid != self._assignment[name]
        ]
        self._assignment = new
        return moves

    def shared_state_entries(self) -> int:
        """The oracle distributes a full file-set table: O(m) entries."""
        return len(self._assignment)

    # ------------------------------------------------------------------ #
    def server_failed(self, server_id: object) -> List[Move]:
        """Drop the server and re-optimize its orphans onto survivors."""
        if server_id not in self.server_ids:
            raise ValueError(f"unknown server {server_id!r}")
        self.server_ids.remove(server_id)
        if self._catalog is None:
            return []
        powers_less = {sid: 1.0 for sid in self.server_ids}
        # Without a fresh oracle at the failure instant, fall back to
        # whole-run work shares (still perfect knowledge of workload
        # properties, just coarser in time).
        items = {name: self._catalog.get(name).total_work for name in self._assignment}
        survivors_current = {
            name: sid
            for name, sid in self._assignment.items()
            if sid != server_id
        }
        new = balance_items(items, powers_less, current=survivors_current)
        moves = [
            Move(name, self._assignment[name] if self._assignment[name] != server_id else None, sid)
            for name, sid in new.items()
            if sid != self._assignment.get(name)
        ]
        self._assignment = new
        return moves

    def server_added(self, server_id: object, power_hint: Optional[float] = None) -> List[Move]:
        """Admit a server; the next tuning round re-optimizes onto it."""
        if server_id in self.server_ids:
            raise ValueError(f"server {server_id!r} already present")
        self.server_ids.append(server_id)
        return []

    def assignments(self) -> Dict[str, object]:
        return dict(self._assignment)
