"""Placement policies: ANU and the paper's baselines.

All five implement :class:`LoadManager`, so the cluster driver runs
any of them interchangeably:

* :class:`SimpleRandomization` — static uniform hash (§5.1)
* :class:`DynamicPrescient` — perfect-knowledge optimum (§5.1)
* :class:`VirtualProcessorSystem` — Nv VPs, prescient VP→server map (§5.1)
* :class:`ANURandomization` — the paper's system (§4)
* :class:`TableBinPacking` — O(m) lookup-table comparator (§6)
"""

from .anu import ANURandomization
from .base import LazyKnowledge, LoadManager, Move, PrescientKnowledge, RebalanceContext
from .bounded import BoundedLoadConsistentHashing
from .jsq import JSQd
from .optimizer import balance_items, estimated_average_latency
from .prescient import DynamicPrescient
from .simple import SimpleRandomization
from .table import TableBinPacking
from .vector import VectorANU
from .virtual import VirtualProcessorSystem
from .weighted import WeightedHashing

__all__ = [
    "LoadManager",
    "Move",
    "PrescientKnowledge",
    "LazyKnowledge",
    "RebalanceContext",
    "SimpleRandomization",
    "DynamicPrescient",
    "VirtualProcessorSystem",
    "ANURandomization",
    "VectorANU",
    "BoundedLoadConsistentHashing",
    "JSQd",
    "TableBinPacking",
    "WeightedHashing",
    "balance_items",
    "estimated_average_latency",
]
