"""ANU randomization with array-backed assignment — the at-scale policy.

:class:`VectorANU` runs the same control loop as
:class:`~repro.policies.anu.ANURandomization` — the identical
:class:`repro.control.Controller` tuning rule over the identical
:class:`~repro.core.interval.IntervalLayout` geometry (the scalar/
vector parity tests pin this per controller) — but
keeps the file-set → server assignment as one integer array instead of
a dict, and re-resolves it per reconfiguration with the batched
kernels of :mod:`repro.core.vector`.

Reconfigurations are **incremental by default** (epoch-delta
relocation): each round patches the :class:`SegmentTable` from the
changed servers' spans, computes the exact set of intervals whose
effective owner differs between the epochs
(:func:`~repro.core.vector.segment_delta`), and re-resolves only the
names whose materialized probe columns at rounds ``<= used`` intersect
that delta — every other name provably keeps its ``(owner, used)``
resolution, so per-round work is proportional to the *moved mass*
instead of the catalog. ``REPRO_VECTOR_RELOCATE=full`` (or
``relocate_mode="full"``) restores whole-catalog re-resolution; the
two modes are pinned bit-for-bit equivalent (assignments, sheds,
moves, chaos fingerprints) by hypothesis and golden tests.

Differences from the scalar adapter, by design:

* ``emit_moves=False`` skips materializing :class:`Move` objects on
  rebalance (at planet scale an early round can shed hundreds of
  thousands of file sets; building the objects costs more than the
  round). Shed *counts* are still tracked in :attr:`total_sheds`.
* No incompetence detector (report-driven diagnostics stay on the
  scalar path).
"""

from __future__ import annotations

import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..cluster.fileset import FileSetCatalog
from ..control import as_controller
from ..core.hashing import HashFamily
from ..core.interval import IntervalLayout
from ..core.layout import LayoutEngine
from ..core.tuning import TuningPolicy
from ..core.vector import ProbeMatrix, SegmentTable, batched_locate, segment_delta
from ..knobs import env_choice, register_knob
from .base import (
    LoadManager,
    Move,
    PrescientKnowledge,
    RebalanceContext,
    RelocationStats,
)

__all__ = ["VectorANU", "RELOCATE_MODES", "relocate_mode_from_env"]

#: Valid values of ``REPRO_VECTOR_RELOCATE`` / ``relocate_mode=``.
RELOCATE_MODES: Tuple[str, ...] = ("incremental", "full")

register_knob(
    "REPRO_VECTOR_RELOCATE",
    kind="choice",
    default="incremental",
    help="relocation strategy for the vectorized ANU path",
    choices=RELOCATE_MODES,
)


def relocate_mode_from_env() -> str:
    """Relocation mode from ``REPRO_VECTOR_RELOCATE`` (default incremental).

    The variable must name a known mode; anything else raises a
    :class:`ValueError` naming the variable and the offending value — a
    silently ignored typo here would quietly change what every sweep
    measures.
    """
    mode = env_choice("REPRO_VECTOR_RELOCATE", RELOCATE_MODES, default="incremental")
    assert mode is not None  # default is non-None
    return mode


class VectorANU(RelocationStats, LoadManager):
    """Adaptive non-uniform randomization over array assignments."""

    name = "anu"

    def __init__(
        self,
        server_ids: List[object],
        hash_family: Optional[HashFamily] = None,
        policy: Optional[object] = None,
        n_partitions: Optional[int] = None,
        emit_moves: bool = True,
        controller: Optional[object] = None,
        relocate_mode: Optional[str] = None,
    ) -> None:
        self.server_ids = list(server_ids)
        self.hash_family = hash_family or HashFamily()
        self.controller = as_controller(
            controller if controller is not None else policy
        )
        #: Back-compat view: the wrapped TuningPolicy when the rule is
        #: the multiplicative one, else ``None``.
        self.policy: Optional[TuningPolicy] = getattr(
            self.controller, "policy", None
        )
        self.engine = LayoutEngine(floor_length=self.controller.floor_length)
        self.layout = IntervalLayout.initial(list(self.server_ids), n_partitions)
        self.emit_moves = bool(emit_moves)
        self._slot: Dict[object, int] = {
            sid: i for i, sid in enumerate(self.server_ids)
        }
        self._names: List[str] = []
        self._probes: Optional[ProbeMatrix] = None
        self._assign: Optional[np.ndarray] = None
        self._index: Optional[Dict[str, int]] = None
        #: Reconfiguration epoch (bumps on every rebalance/churn).
        self.epoch = 0
        self._vector_cache: Optional[Tuple[int, np.ndarray]] = None
        #: Slots currently evicted from the layout (churn); probes are
        #: blocked from resolving into them even transiently.
        self._blocked = np.zeros(len(self.server_ids), dtype=bool)
        self.total_sheds = 0
        self.total_lookups = 0
        self.total_probes = 0
        if relocate_mode is None:
            relocate_mode = relocate_mode_from_env()
        elif relocate_mode not in RELOCATE_MODES:
            raise ValueError(
                f"relocate_mode must be one of {RELOCATE_MODES}, got {relocate_mode!r}"
            )
        self.relocate_mode = relocate_mode
        self._init_relocation_stats()
        # Snapshots of the epoch the current assignment was resolved
        # against — the baseline an incremental round diffs from.
        self._table: Optional[SegmentTable] = None
        self._table_blocked: Optional[np.ndarray] = None
        self._table_partitions = 0
        self._used: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    def initial_placement(
        self, catalog: FileSetCatalog, knowledge: Optional[PrescientKnowledge]
    ) -> Dict[str, object]:
        """Equal regions + batched hashing; the oracle is unused."""
        self._names = list(catalog.names)
        self._probes = ProbeMatrix(self._names, self.hash_family)
        self._index = None
        self._relocate()
        # Hash a few rounds past the deepest probe used so far, while we
        # are still in setup: later reconfigurations shrink regions and
        # probe deeper, and hashing a million names mid-run would show
        # up as a throughput stall in the drive phase.
        headroom = min(
            self._probes.rounds_materialized + 4, self.hash_family.max_probes
        )
        for round_ in range(headroom):
            self._probes.column(round_)
            if self.relocate_mode == "incremental":
                # The delta scan reads the per-round sorted index; warm
                # it here for the same reason — an argsort of a million
                # names per probe round would otherwise land inside the
                # first tuning round's reshuffle timing.
                self._probes.sorted_column(round_)
        return {}

    def _relocate(self) -> None:
        """Full re-resolution of the catalog (initial placement, and
        every round in ``full`` mode)."""
        table = SegmentTable.from_layout(self.layout, self._slot)
        blocked_mask = self._blocked.copy()
        blocked = blocked_mask if blocked_mask.any() else None
        self._assign, self._used = batched_locate(self._probes, table, blocked=blocked)
        self._table = table
        self._table_blocked = blocked_mask
        self._table_partitions = self.layout.n_partitions
        self.total_lookups += len(self._names)
        self.total_probes += int(self._used.sum())

    def _relocate_delta(
        self, changed_sids: Optional[Sequence[object]]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Incremental re-resolution against the epoch delta.

        Patches the segment table from the changed servers' spans,
        sweeps the exact set of intervals whose effective owner changed
        (:func:`segment_delta`), and re-resolves only the names with a
        materialized probe at rounds ``<= used`` inside those
        intervals. Returns ``(invalidated indices, their old owners)``
        — everything else provably resolves identically: at rounds
        before its resolving probe a kept name's offsets were
        effectively unmapped and still are (no delta hit), and at the
        resolving round its owner is unchanged.
        """
        old_table = self._table
        old_blocked = self._table_blocked
        new_blocked = self._blocked.copy()
        if changed_sids is None or self.layout.n_partitions != self._table_partitions:
            # Unknown change set, or a repartition rewrote every
            # region's representation: rebuild the table, keep the
            # delta-based invalidation (it diffs tables, not layouts).
            new_table = SegmentTable.from_layout(self.layout, self._slot)
        else:
            members = set(self.layout.server_ids)
            n_partitions = self.layout.n_partitions
            changed = {
                self._slot[sid]: (
                    self.layout.region(sid).segments(n_partitions)
                    if sid in members
                    else []
                )
                for sid in changed_sids
            }
            new_table = SegmentTable.patched(old_table, changed)
        d_starts, d_ends = segment_delta(
            old_table, new_table, old_blocked, new_blocked
        )
        invalid: np.ndarray
        if d_starts.size == 0:
            invalid = np.empty(0, dtype=np.int64)
        else:
            used = self._used
            max_used = int(used.max()) if used.size else 0
            chunks = []
            for round_ in range(max_used):
                vals, order = self._probes.sorted_column(round_)
                lo = np.searchsorted(vals, d_starts, side="left")
                hi = np.searchsorted(vals, d_ends, side="left")
                hits = [order[a:b] for a, b in zip(lo, hi) if b > a]
                if not hits:
                    continue
                cand = np.concatenate(hits)
                cand = cand[used[cand] >= round_ + 1]
                if cand.size:
                    chunks.append(cand)
            invalid = (
                np.unique(np.concatenate(chunks))
                if chunks
                else np.empty(0, dtype=np.int64)
            )
        old_owner = self._assign[invalid].copy()
        if invalid.size:
            blocked = new_blocked if new_blocked.any() else None
            owner_sub, used_sub = batched_locate(
                self._probes, new_table, blocked=blocked, subset=invalid
            )
            self._assign[invalid] = owner_sub
            self._used[invalid] = used_sub
            self.total_lookups += int(invalid.size)
            self.total_probes += int(used_sub.sum())
        self._table = new_table
        self._table_blocked = new_blocked
        self._table_partitions = self.layout.n_partitions
        return invalid, old_owner

    # ------------------------------------------------------------------ #
    def locate(self, fileset: str) -> object:
        if self._index is None:
            self._index = {name: i for i, name in enumerate(self._names)}
        return self.server_ids[self._assign[self._index[fileset]]]

    def assignment_vector(self, server_slots: Mapping[object, int]) -> np.ndarray:
        """Current assignment as driver-slot indices (cached per epoch)."""
        cache = self._vector_cache
        if cache is not None and cache[0] == self.epoch:
            return cache[1]
        translate = np.array(
            [server_slots[sid] for sid in self.server_ids], dtype=np.int64
        )
        vec = translate[self._assign]
        self._vector_cache = (self.epoch, vec)
        return vec

    # ------------------------------------------------------------------ #
    def rebalance(self, ctx: RebalanceContext) -> List[Move]:
        """One tuning round: scale regions, re-resolve the catalog."""
        before = self.layout.lengths()
        members = set(self.layout.server_ids)
        # Under churn a partition-evicted server keeps reporting (its
        # data plane is up) — the controller only understands layout
        # members, so filter rather than raise mid-run.
        reports = [r for r in ctx.reports if r.server_id in members]
        targets = self.controller.observe(before, reports)
        self.engine.apply_targets(self.layout, targets)
        # apply_targets only touches servers with a non-trivial delta,
        # and a touched server's mapped length always changes — so the
        # length diff is exactly the changed-region set.
        after = self.layout.lengths()
        changed_sids = [sid for sid, length in after.items() if before[sid] != length]
        return self._reshuffle("tune", changed_sids)

    def use_controller(self, controller: object) -> None:
        """Swap the tuning rule in at assembly time (see ANUManager)."""
        self.controller = as_controller(controller)
        self.policy = getattr(self.controller, "policy", None)
        self.engine = LayoutEngine(floor_length=self.controller.floor_length)

    def _reshuffle(
        self,
        kind: str = "tune",
        changed_sids: Optional[Sequence[object]] = None,
    ) -> List[Move]:
        """Re-resolve the catalog against the current layout.

        ``changed_sids`` is the set of servers whose regions the caller
        just touched (``None`` = unknown → table rebuild); ``kind``
        labels the round in the relocation counters. Both modes produce
        identical assignments, shed counts, and :class:`Move` lists —
        the incremental path just skips re-resolving names the epoch
        delta cannot invalidate.
        """
        old = self._assign
        self.epoch += 1
        self._vector_cache = None
        start = time.perf_counter()
        if self.relocate_mode == "incremental" and self._table is not None:
            invalid, old_owner = self._relocate_delta(changed_sids)
            moved = self._assign[invalid] != old_owner
            changed = invalid[moved]
            changed_old = old_owner[moved]
            relocated = int(invalid.size)
        else:
            self._relocate()
            changed = np.flatnonzero(old != self._assign)
            changed_old = old[changed]
            relocated = len(self._names)
        seconds = time.perf_counter() - start
        self._note_relocation(kind, relocated, len(self._names), seconds)
        self.total_sheds += int(changed.size)
        if not self.emit_moves or changed.size == 0:
            return []
        names = self._names
        sids = self.server_ids
        new = self._assign
        return [
            Move(names[i], sids[o], sids[new[i]])
            for i, o in zip(changed, changed_old)
        ]

    # ------------------------------------------------------------------ #
    # churn (vectorized chaos path)
    # ------------------------------------------------------------------ #
    def server_failed(self, server_id: object) -> List[Move]:
        """Evict a declared-failed server and re-resolve its regions.

        The survivors' regions rescale proportionally (no full
        rebuild); only file sets that probed into the victim's regions
        move, which is what the movement-on-churn metric measures.
        """
        if server_id not in self.layout.server_ids or self.layout.n_servers <= 1:
            return []
        self.engine.evict(self.layout, server_id)
        self._blocked[self._slot[server_id]] = True
        # Eviction rescales every survivor and empties the victim.
        changed_sids = list(self.layout.server_ids) + [server_id]
        return self._reshuffle("fail", changed_sids)

    def server_added(self, server_id: object, power_hint=None) -> List[Move]:
        """Re-admit a recovered server with a fresh default region."""
        if server_id in self.layout.server_ids:
            return []
        self.engine.admit(self.layout, server_id)
        self._blocked[self._slot[server_id]] = False
        # Admission rescales every incumbent to make room; a triggered
        # repartition is caught by the partition-count snapshot.
        return self._reshuffle("recover", list(self.layout.server_ids))

    # ------------------------------------------------------------------ #
    def shared_state_entries(self) -> int:
        """O(k) region descriptors, identical to the scalar adapter."""
        return self.layout.shared_state_entries()

    @property
    def mean_probes(self) -> float:
        """Observed mean probes per resolution (≈ 2 at half occupancy)."""
        return (
            self.total_probes / self.total_lookups
            if self.total_lookups
            else float("nan")
        )

    @property
    def region_lengths(self) -> Dict[object, float]:
        """Current mapped-region length per server (diagnostics)."""
        return self.layout.lengths()
