"""ANU randomization with array-backed assignment — the at-scale policy.

:class:`VectorANU` runs the same control loop as
:class:`~repro.policies.anu.ANURandomization` — the identical
:class:`repro.control.Controller` tuning rule over the identical
:class:`~repro.core.interval.IntervalLayout` geometry (the scalar/
vector parity tests pin this per controller) — but
keeps the file-set → server assignment as one integer array instead of
a dict, and re-resolves the whole catalog per reconfiguration with the
batched kernels of :mod:`repro.core.vector`. At a million file sets a
reconfiguration costs two or three ``searchsorted`` passes rather than
a million dict lookups.

Differences from the scalar adapter, by design:

* ``emit_moves=False`` skips materializing :class:`Move` objects on
  rebalance (at planet scale an early round can shed hundreds of
  thousands of file sets; building the objects costs more than the
  round). Shed *counts* are still tracked in :attr:`total_sheds`.
* No incompetence detector (report-driven diagnostics stay on the
  scalar path).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..cluster.fileset import FileSetCatalog
from ..control import as_controller
from ..core.hashing import HashFamily
from ..core.interval import IntervalLayout
from ..core.layout import LayoutEngine
from ..core.tuning import TuningPolicy
from ..core.vector import ProbeMatrix, SegmentTable, batched_locate
from .base import LoadManager, Move, PrescientKnowledge, RebalanceContext

__all__ = ["VectorANU"]


class VectorANU(LoadManager):
    """Adaptive non-uniform randomization over array assignments."""

    name = "anu"

    def __init__(
        self,
        server_ids: List[object],
        hash_family: Optional[HashFamily] = None,
        policy: Optional[object] = None,
        n_partitions: Optional[int] = None,
        emit_moves: bool = True,
        controller: Optional[object] = None,
    ) -> None:
        self.server_ids = list(server_ids)
        self.hash_family = hash_family or HashFamily()
        self.controller = as_controller(
            controller if controller is not None else policy
        )
        #: Back-compat view: the wrapped TuningPolicy when the rule is
        #: the multiplicative one, else ``None``.
        self.policy: Optional[TuningPolicy] = getattr(
            self.controller, "policy", None
        )
        self.engine = LayoutEngine(floor_length=self.controller.floor_length)
        self.layout = IntervalLayout.initial(list(self.server_ids), n_partitions)
        self.emit_moves = bool(emit_moves)
        self._slot: Dict[object, int] = {
            sid: i for i, sid in enumerate(self.server_ids)
        }
        self._names: List[str] = []
        self._probes: Optional[ProbeMatrix] = None
        self._assign: Optional[np.ndarray] = None
        self._index: Optional[Dict[str, int]] = None
        #: Reconfiguration epoch (bumps on every rebalance/churn).
        self.epoch = 0
        self._vector_cache: Optional[Tuple[int, np.ndarray]] = None
        #: Slots currently evicted from the layout (churn); probes are
        #: blocked from resolving into them even transiently.
        self._blocked = np.zeros(len(self.server_ids), dtype=bool)
        self.total_sheds = 0
        self.total_lookups = 0
        self.total_probes = 0

    # ------------------------------------------------------------------ #
    def initial_placement(
        self, catalog: FileSetCatalog, knowledge: Optional[PrescientKnowledge]
    ) -> Dict[str, object]:
        """Equal regions + batched hashing; the oracle is unused."""
        self._names = list(catalog.names)
        self._probes = ProbeMatrix(self._names, self.hash_family)
        self._index = None
        self._relocate()
        # Hash a few rounds past the deepest probe used so far, while we
        # are still in setup: later reconfigurations shrink regions and
        # probe deeper, and hashing a million names mid-run would show
        # up as a throughput stall in the drive phase.
        headroom = min(
            self._probes.rounds_materialized + 4, self.hash_family.max_probes
        )
        for round_ in range(headroom):
            self._probes.column(round_)
        return {}

    def _relocate(self) -> None:
        table = SegmentTable.from_layout(self.layout, self._slot)
        blocked = self._blocked if self._blocked.any() else None
        self._assign, used = batched_locate(self._probes, table, blocked=blocked)
        self.total_lookups += len(self._names)
        self.total_probes += int(used.sum())

    # ------------------------------------------------------------------ #
    def locate(self, fileset: str) -> object:
        if self._index is None:
            self._index = {name: i for i, name in enumerate(self._names)}
        return self.server_ids[self._assign[self._index[fileset]]]

    def assignment_vector(self, server_slots: Mapping[object, int]) -> np.ndarray:
        """Current assignment as driver-slot indices (cached per epoch)."""
        cache = self._vector_cache
        if cache is not None and cache[0] == self.epoch:
            return cache[1]
        translate = np.array(
            [server_slots[sid] for sid in self.server_ids], dtype=np.int64
        )
        vec = translate[self._assign]
        self._vector_cache = (self.epoch, vec)
        return vec

    # ------------------------------------------------------------------ #
    def rebalance(self, ctx: RebalanceContext) -> List[Move]:
        """One tuning round: scale regions, re-resolve the catalog."""
        before = self.layout.lengths()
        members = set(self.layout.server_ids)
        # Under churn a partition-evicted server keeps reporting (its
        # data plane is up) — the controller only understands layout
        # members, so filter rather than raise mid-run.
        reports = [r for r in ctx.reports if r.server_id in members]
        targets = self.controller.observe(before, reports)
        self.engine.apply_targets(self.layout, targets)
        return self._reshuffle()

    def use_controller(self, controller: object) -> None:
        """Swap the tuning rule in at assembly time (see ANUManager)."""
        self.controller = as_controller(controller)
        self.policy = getattr(self.controller, "policy", None)
        self.engine = LayoutEngine(floor_length=self.controller.floor_length)

    def _reshuffle(self) -> List[Move]:
        """Re-resolve the catalog against the current layout."""
        old = self._assign
        self.epoch += 1
        self._vector_cache = None
        self._relocate()
        changed = np.flatnonzero(old != self._assign)
        self.total_sheds += int(changed.size)
        if not self.emit_moves or changed.size == 0:
            return []
        names = self._names
        sids = self.server_ids
        new = self._assign
        return [Move(names[i], sids[old[i]], sids[new[i]]) for i in changed]

    # ------------------------------------------------------------------ #
    # churn (vectorized chaos path)
    # ------------------------------------------------------------------ #
    def server_failed(self, server_id: object) -> List[Move]:
        """Evict a declared-failed server and re-resolve its regions.

        The survivors' regions rescale proportionally (no full
        rebuild); only file sets that probed into the victim's regions
        move, which is what the movement-on-churn metric measures.
        """
        if server_id not in self.layout.server_ids or self.layout.n_servers <= 1:
            return []
        self.engine.evict(self.layout, server_id)
        self._blocked[self._slot[server_id]] = True
        return self._reshuffle()

    def server_added(self, server_id: object, power_hint=None) -> List[Move]:
        """Re-admit a recovered server with a fresh default region."""
        if server_id in self.layout.server_ids:
            return []
        self.engine.admit(self.layout, server_id)
        self._blocked[self._slot[server_id]] = False
        return self._reshuffle()

    # ------------------------------------------------------------------ #
    def shared_state_entries(self) -> int:
        """O(k) region descriptors, identical to the scalar adapter."""
        return self.layout.shared_state_entries()

    @property
    def mean_probes(self) -> float:
        """Observed mean probes per resolution (≈ 2 at half occupancy)."""
        return (
            self.total_probes / self.total_lookups
            if self.total_lookups
            else float("nan")
        )

    @property
    def region_lengths(self) -> Dict[object, float]:
        """Current mapped-region length per server (diagnostics)."""
        return self.layout.lengths()
