"""repro — reproduction of Wu & Burns, HPDC 2004.

"Achieving Performance Consistency in Heterogeneous Clusters":
ANU (adaptive, non-uniform) randomization for load management in
heterogeneous shared-disk clusters, evaluated against simple
randomization, a dynamic prescient optimum, and virtual processors on
a discrete-event cluster simulator.

Subpackages
-----------
``repro.sim``
    Discrete-event simulation kernel (the YACSIM substitute).
``repro.core``
    ANU randomization: hashing, interval geometry, tuning, delegate.
``repro.cluster``
    Shared-disk cluster model: file sets, heterogeneous servers, caches.
``repro.distributed``
    Control plane: messages, delegate election, heartbeats.
``repro.policies``
    Load managers: ANU + the paper's three baselines (+ a table-based
    reference for shared-state accounting).
``repro.workloads``
    Synthetic (Pareto) and trace-shaped workload generators.
``repro.metrics`` / ``repro.analysis``
    Measurement collection and statistical/bound analysis.
``repro.experiments``
    The figure-by-figure reproduction harness.
"""

__version__ = "1.0.0"

from . import analysis, cluster, core, distributed, experiments, metrics, policies, sim, workloads

__all__ = [
    "analysis",
    "cluster",
    "core",
    "distributed",
    "experiments",
    "metrics",
    "policies",
    "sim",
    "workloads",
    "__version__",
]
