"""repro — reproduction of Wu & Burns, HPDC 2004.

"Achieving Performance Consistency in Heterogeneous Clusters":
ANU (adaptive, non-uniform) randomization for load management in
heterogeneous shared-disk clusters, evaluated against simple
randomization, a dynamic prescient optimum, and virtual processors on
a discrete-event cluster simulator.

Subpackages (loaded lazily on first attribute access, so importing one
layer never drags in the ones above it)
-----------
``repro.sim``
    Discrete-event simulation kernel (the YACSIM substitute).
``repro.core``
    ANU randomization: hashing, interval geometry, tuning, delegate.
``repro.engine``
    The composable experiment engine: control-plane / client-path /
    fault layers assembled by ``SimulationBuilder``, instrumented
    through one probe bus.
``repro.cluster``
    Shared-disk cluster model: file sets, heterogeneous servers, caches
    (and the deprecated ``ClusterSimulation`` shims).
``repro.distributed``
    Control plane: messages, delegate election, heartbeats.
``repro.faults``
    Fault schedules, injection, invariants (and the deprecated
    ``ChaosClusterSimulation`` shim).
``repro.policies``
    Load managers: ANU + the paper's three baselines (+ a table-based
    reference for shared-state accounting).
``repro.workloads``
    Synthetic (Pareto) and trace-shaped workload generators.
``repro.metrics`` / ``repro.analysis``
    Measurement collection and statistical/bound analysis.
``repro.experiments``
    The figure-by-figure reproduction harness.
``repro.control``
    The pluggable tuning-control layer shared by scalar and vector
    engines (and the live service's epoch batcher).
``repro.knobs``
    The strict ``REPRO_*`` environment-knob validators and registry.
``repro.service``
    ANU as a live placement service: asyncio locator, echo file
    servers, multi-process load generation, digital-twin parity.
"""

from __future__ import annotations

import importlib

__version__ = "1.0.0"

_SUBPACKAGES = (
    "analysis",
    "cluster",
    "control",
    "core",
    "distributed",
    "engine",
    "experiments",
    "faults",
    "knobs",
    "metrics",
    "policies",
    "service",
    "sim",
    "workloads",
)

__all__ = list(_SUBPACKAGES) + ["__version__"]


def __getattr__(name: str):
    """Import subpackages on first access (PEP 562 lazy re-export)."""
    if name in _SUBPACKAGES:
        return importlib.import_module(f".{name}", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_SUBPACKAGES))
