"""Statistical helpers for experiment analysis.

Multi-seed experiment repetitions need uncertainty quantification: the
bench harness reports bootstrap confidence intervals on latency means
and uses a distribution-shape test to confirm the synthetic workload's
heavy tail.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy import stats as sps

__all__ = [
    "ConfidenceInterval",
    "bootstrap_mean_ci",
    "mean_sem",
    "pareto_tail_index",
    "is_heavy_tailed",
]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A point estimate with a two-sided confidence interval."""

    estimate: float
    low: float
    high: float
    level: float

    @property
    def half_width(self) -> float:
        """Half the interval width (symmetric-equivalent error bar)."""
        return (self.high - self.low) / 2.0


def bootstrap_mean_ci(
    values: Sequence[float],
    level: float = 0.95,
    n_boot: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile-bootstrap CI for the mean of ``values``."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return ConfidenceInterval(math.nan, math.nan, math.nan, level)
    if arr.size == 1:
        return ConfidenceInterval(float(arr[0]), float(arr[0]), float(arr[0]), level)
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, arr.size, size=(n_boot, arr.size))
    boots = arr[idx].mean(axis=1)
    alpha = (1.0 - level) / 2.0
    lo, hi = np.quantile(boots, [alpha, 1.0 - alpha])
    return ConfidenceInterval(float(arr.mean()), float(lo), float(hi), level)


def mean_sem(values: Sequence[float]) -> Tuple[float, float]:
    """Mean and standard error of the mean."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return math.nan, math.nan
    if arr.size == 1:
        return float(arr[0]), 0.0
    return float(arr.mean()), float(arr.std(ddof=1) / math.sqrt(arr.size))


def pareto_tail_index(values: Sequence[float], tail_fraction: float = 0.1) -> float:
    """Hill estimator of the tail index α over the top ``tail_fraction``.

    For inter-arrival gaps drawn Pareto(α), the estimate converges to α;
    the workload tests use it to verify the generator's advertised
    heavy tail actually materializes in the schedule.
    """
    arr = np.sort(np.asarray(values, dtype=np.float64))
    if arr.size < 10:
        raise ValueError("need at least 10 values for a tail estimate")
    k = max(2, int(arr.size * tail_fraction))
    tail = arr[-k:]
    x_k = arr[-k - 1] if arr.size > k else arr[0]
    if x_k <= 0:
        raise ValueError("tail estimator requires positive values")
    logs = np.log(tail / x_k)
    return float(1.0 / logs.mean())


def is_heavy_tailed(values: Sequence[float], alpha_threshold: float = 2.0) -> bool:
    """``True`` when the Hill tail index is below ``alpha_threshold``.

    α < 2 means infinite variance — the operational definition of
    "heavy-tailed" for the paper's Pareto arrivals.
    """
    return pareto_tail_index(values) < alpha_threshold
