"""Fixed-point analysis of the tuning controller.

The delegate's multiplicative update has a predictable equilibrium: at
the fixed point every active server reports the system-average latency,
and under an M/M/1 latency model that pins each server's share of the
mapped interval. This module computes

* the **equilibrium region lengths** for a given power vector and
  offered load (:func:`equilibrium_lengths`), and
* a **deterministic iteration** of the controller against the queueing
  model (:func:`iterate_controller`) that predicts how many rounds the
  real system needs to converge.

The analysis tests check the predictions against simulation: predicted
equilibria must match the simulator's converged region lengths within
the model error, which both validates the controller implementation and
documents *why* it converges (each iteration is a damped fixed-point
step; gain < 1 and the step clamp make it a contraction away from
saturation).

Model: server ``i`` with power ``p_i`` and mapped length ``L_i``
receives offered work rate ``λ·(L_i / Σ_j L_j)`` (re-hashing
renormalizes over mapped measure), giving utilization
``ρ_i = λ·s_i / p_i`` with share ``s_i`` and M/M/1 latency
``T_i = 1 / (p_i − λ·s_i)`` in work-unit time. Equal latencies across
active servers yield ``λ·s_i = p_i − c`` for a constant ``c`` fixed by
``Σ s_i = 1`` — capability-proportional shares shifted by a common
slack. Servers whose power is below the slack go idle (the paper's
incompetent-server regime), and the equilibrium is recomputed over the
survivors — a small water-filling problem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..control import as_controller
from ..core.interval import HALF
from ..core.tuning import LatencyReport, TuningPolicy

__all__ = ["equilibrium_lengths", "ControllerTrace", "iterate_controller"]


def equilibrium_lengths(
    powers: Mapping[object, float], offered_rate: float
) -> Dict[object, float]:
    """Equal-latency equilibrium mapped lengths (water-filling).

    Parameters
    ----------
    powers:
        Server service rates (work units / second).
    offered_rate:
        Total offered work rate λ (work units / second); must be below
        total capacity.

    Returns
    -------
    dict
        Server → mapped length (summing to 1/2). Servers that the
        equal-latency condition would drive negative are parked at 0 —
        the analytical counterpart of the paper's idle weak servers.
    """
    if offered_rate <= 0:
        raise ValueError(f"offered_rate must be > 0, got {offered_rate}")
    total_power = sum(powers.values())
    if offered_rate >= total_power:
        raise ValueError(
            f"offered rate {offered_rate} saturates capacity {total_power}"
        )
    active = dict(powers)
    while True:
        # Equal latency: λ s_i = p_i - c with Σ_{active} s_i = 1
        # → c = (Σ p_i - λ) / n_active.
        n = len(active)
        slack = (sum(active.values()) - offered_rate) / n
        weakest = min(active, key=lambda sid: active[sid])
        if active[weakest] <= slack and len(active) > 1:
            # This server's share would be negative: it sits idle.
            del active[weakest]
            continue
        shares = {sid: (p - slack) / offered_rate for sid, p in active.items()}
        break
    lengths = {sid: 0.0 for sid in powers}
    for sid, share in shares.items():
        lengths[sid] = share * HALF
    return lengths


@dataclass
class ControllerTrace:
    """History of a deterministic controller iteration."""

    lengths: List[Dict[object, float]]
    latencies: List[Dict[object, float]]

    @property
    def rounds(self) -> int:
        """Iterations performed."""
        return len(self.lengths) - 1

    def converged_round(self, tolerance: float = 0.05) -> Optional[int]:
        """First round after which max relative length change < tolerance."""
        for r in range(1, len(self.lengths)):
            prev, cur = self.lengths[r - 1], self.lengths[r]
            deltas = [
                abs(cur[sid] - prev[sid]) / max(prev[sid], 1e-9)
                for sid in cur
                if max(prev[sid], cur[sid]) > 1e-6
            ]
            if deltas and max(deltas) < tolerance:
                return r
        return None

    @property
    def final_lengths(self) -> Dict[object, float]:
        """Lengths after the last iteration."""
        return dict(self.lengths[-1])


def _model_latency(power: float, rate: float) -> float:
    """M/M/1 response time at service rate ``power``, arrival work rate
    ``rate`` (work-units queue); linearized past ρ = 0.98 so the
    iteration stays finite through transients."""
    rho = rate / power
    if rho < 0.98:
        return 1.0 / (power - rate)
    return 1.0 / (power * 0.02) + (rho - 0.98) * 100.0 / power


def iterate_controller(
    powers: Mapping[object, float],
    offered_rate: float,
    policy: Optional[TuningPolicy] = None,
    rounds: int = 60,
    controller: Optional[object] = None,
) -> ControllerTrace:
    """Iterate the *actual* tuning rule against the queueing model.

    Starts from equal lengths (ANU's cold start) and alternates
    model-predicted latencies with real ``Controller.observe`` calls
    (any :class:`repro.control.Controller`; the paper's multiplicative
    rule by default, or the wrapped form of ``policy``). No randomness:
    this is the deterministic skeleton of the simulated dynamics,
    usable to predict convergence-round counts and equilibria.
    """
    ctrl = as_controller(controller if controller is not None else policy)
    k = len(powers)
    lengths: Dict[object, float] = {sid: HALF / k for sid in powers}
    trace = ControllerTrace(lengths=[dict(lengths)], latencies=[])
    prev_lat: Dict[object, float] = {}
    for _ in range(rounds):
        total = sum(lengths.values())
        lat: Dict[object, float] = {}
        reports: List[LatencyReport] = []
        for sid, power in powers.items():
            share = lengths[sid] / total if total > 0 else 0.0
            rate = offered_rate * share
            if rate <= 1e-12:
                reports.append(
                    LatencyReport(sid, float("nan"), request_count=0, idle_rounds=1)
                )
                continue
            t = _model_latency(power, rate)
            lat[sid] = t
            reports.append(
                LatencyReport(
                    sid,
                    t,
                    request_count=max(1, int(rate * 1000)),
                    prev_mean_latency=prev_lat.get(sid, float("nan")),
                )
            )
        prev_lat = lat
        targets = ctrl.observe(lengths, reports)
        norm = HALF / sum(targets.values())
        lengths = {sid: v * norm for sid, v in targets.items()}
        trace.lengths.append(dict(lengths))
        trace.latencies.append(lat)
    return trace
