"""Theoretical load-balance bounds (§4, last paragraph).

"Load balance in this scheme is within a small constant factor of
optimal. For n servers and m file sets, each server contains load
``ceil(m/n + 1)`` with high probability. This result depends on several
factors including a multiple choice heuristic ... This variance is as
small as any known bound for randomized placement and compares
favorably to simple randomization in which load is bounded by
``ceil(m/n + Θ(lg n / lg lg n) + 1)``."

This module gives both bounds as functions and the empirical
machinery (balls-into-bins Monte Carlo over the actual hash family) to
check them — the A6 bench reports measured max-load against both
curves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..core.hashing import HashFamily
from ..core.interval import IntervalLayout
from ..core.multichoice import MultiChoicePlacer

__all__ = [
    "anu_balance_bound",
    "simple_randomization_bound",
    "BalanceSample",
    "measure_balance",
]


def anu_balance_bound(m: int, n: int) -> int:
    """ANU's w.h.p. per-server load bound: ``ceil(m/n + 1)``."""
    if m < 0 or n < 1:
        raise ValueError(f"need m >= 0, n >= 1; got m={m}, n={n}")
    return math.ceil(m / n + 1)


def simple_randomization_bound(m: int, n: int, c: float = 1.0) -> float:
    """Single-choice bound: ``m/n + c·(lg n / lg lg n) + 1``.

    The Θ constant is not pinned by the paper; ``c = 1`` draws the
    classic balls-into-bins curve (exact for m = n up to lower-order
    terms, conservative for m >> n where the deviation is
    ``Θ(sqrt(m lg n / n))`` — we report both regimes in the bench).
    """
    if n < 2:
        return float(m) + 1.0
    lg_n = math.log2(n)
    lglg_n = math.log2(max(lg_n, 2.0))
    return m / n + c * (lg_n / lglg_n) + 1.0


@dataclass(frozen=True)
class BalanceSample:
    """One Monte Carlo measurement of placement balance."""

    scheme: str
    m: int
    n: int
    max_load: int
    min_load: int
    mean_load: float

    @property
    def overshoot(self) -> float:
        """``max_load - m/n``: the quantity the bounds constrain."""
        return self.max_load - self.m / self.n


def measure_balance(
    m: int,
    n: int,
    trials: int = 20,
    d: int = 2,
    seed: int = 0,
) -> Dict[str, List[BalanceSample]]:
    """Empirical balance of three schemes over ``trials`` hash seeds.

    Schemes measured (equal-capacity servers, ``m`` unit file sets):

    * ``single`` — first mapped probe on an equal-share ANU layout
      (one-choice randomized placement over the interval);
    * ``multi`` — the SIEVE d-choice heuristic on the same layout (the
      configuration the paper's ``m/n + 1`` bound describes);
    * ``uniform`` — plain hash-mod-n (classic balls into bins).
    """
    if trials < 1:
        raise ValueError(f"need >= 1 trial, got {trials}")
    out: Dict[str, List[BalanceSample]] = {"single": [], "multi": [], "uniform": []}
    server_ids = list(range(n))
    names = [f"item-{i}" for i in range(m)]
    for t in range(trials):
        family = HashFamily(seed=seed + t)
        layout = IntervalLayout.initial(server_ids)

        # single choice over the interval
        loads = {sid: 0 for sid in server_ids}
        for name in names:
            for off in family.probe_sequence(name):
                owner = layout.owner_at(off)
                if owner is not None:
                    loads[owner] += 1
                    break
        out["single"].append(_sample("single", m, n, loads))

        # d-choice over the interval
        placer = MultiChoicePlacer(layout, family, d=d)
        loads_mc = placer.place_all(names)
        out["multi"].append(_sample("multi", m, n, loads_mc))

        # plain uniform hashing
        loads_u = {sid: 0 for sid in server_ids}
        for name in names:
            loads_u[family.uniform_server_choice(name, n)] += 1
        out["uniform"].append(_sample("uniform", m, n, loads_u))
    return out


def _sample(scheme: str, m: int, n: int, loads: Dict[object, int]) -> BalanceSample:
    vals = np.array(list(loads.values()), dtype=np.int64)
    return BalanceSample(
        scheme=scheme,
        m=m,
        n=n,
        max_load=int(vals.max()),
        min_load=int(vals.min()),
        mean_load=float(vals.mean()),
    )
