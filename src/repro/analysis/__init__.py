"""Statistical and theoretical analysis utilities.

* :mod:`repro.analysis.bounds` — the §4 load-balance bounds and the
  balls-into-bins Monte Carlo that checks them (bench A6)
* :mod:`repro.analysis.stats` — bootstrap CIs, Hill tail-index
  estimation for the heavy-tail verification
"""

from .convergence import (
    ControllerTrace,
    equilibrium_lengths,
    iterate_controller,
)
from .bounds import (
    BalanceSample,
    anu_balance_bound,
    measure_balance,
    simple_randomization_bound,
)
from .stats import (
    ConfidenceInterval,
    bootstrap_mean_ci,
    is_heavy_tailed,
    mean_sem,
    pareto_tail_index,
)

__all__ = [
    "anu_balance_bound",
    "equilibrium_lengths",
    "iterate_controller",
    "ControllerTrace",
    "simple_randomization_bound",
    "measure_balance",
    "BalanceSample",
    "ConfidenceInterval",
    "bootstrap_mean_ci",
    "mean_sem",
    "pareto_tail_index",
    "is_heavy_tailed",
]
