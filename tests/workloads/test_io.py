"""Trace file round-tripping."""

from __future__ import annotations

import io

import pytest

from repro.workloads import (
    SyntheticConfig,
    generate_synthetic,
    load_trace,
    save_trace,
)
from repro.workloads.io import TRACE_MAGIC


@pytest.fixture
def workload():
    return generate_synthetic(
        SyntheticConfig(n_filesets=5, duration=300.0, target_requests=200),
        seed=11,
    )


class TestRoundTrip:
    def test_file_roundtrip(self, workload, tmp_path):
        path = tmp_path / "trace.tsv"
        save_trace(workload, path)
        loaded = load_trace(path)
        assert len(loaded) == len(workload)
        assert loaded.duration == workload.duration
        assert loaded.name == workload.name
        for a, b in zip(workload.requests, loaded.requests):
            assert a.fileset == b.fileset
            assert a.arrival == b.arrival
            assert a.work == b.work

    def test_catalog_reconstructed(self, workload, tmp_path):
        path = tmp_path / "trace.tsv"
        save_trace(workload, path)
        loaded = load_trace(path)
        assert set(loaded.catalog.names) == set(workload.catalog.names)
        for name in workload.catalog.names:
            assert loaded.catalog.get(name).total_work == pytest.approx(
                workload.catalog.get(name).total_work
            )
            assert loaded.catalog.get(name).n_requests == workload.catalog.get(name).n_requests

    def test_stream_roundtrip(self, workload):
        buf = io.StringIO()
        save_trace(workload, buf)
        buf.seek(0)
        loaded = load_trace(buf)
        assert len(loaded) == len(workload)


class TestErrors:
    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("not a trace\n1.0\t/a\t1.0\n")
        with pytest.raises(ValueError, match="not a repro-trace"):
            load_trace(path)

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text(f"{TRACE_MAGIC}\n1.0\t/a\n")
        with pytest.raises(ValueError, match="line 2"):
            load_trace(path)

    def test_negative_values_rejected(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text(f"{TRACE_MAGIC}\n-1.0\t/a\t1.0\n")
        with pytest.raises(ValueError):
            load_trace(path)

    def test_empty_trace_rejected(self, tmp_path):
        path = tmp_path / "empty.tsv"
        path.write_text(f"{TRACE_MAGIC}\n")
        with pytest.raises(ValueError, match="no requests"):
            load_trace(path)

    def test_duration_inferred_when_missing(self, tmp_path):
        path = tmp_path / "noheader.tsv"
        path.write_text(f"{TRACE_MAGIC}\n10.0\t/a\t1.0\n")
        loaded = load_trace(path)
        assert loaded.duration >= 10.0
