"""Synthetic and trace-shaped workload generators + calibration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads import (
    SyntheticConfig,
    TraceConfig,
    generate_synthetic,
    generate_trace_shaped,
    offered_utilization,
    request_work_for_utilization,
    scaling_factor_c,
    weakest_server_overloaded,
)


class TestSyntheticGenerator:
    def test_paper_scale_aggregates(self):
        wl = generate_synthetic(SyntheticConfig(), seed=0)
        # "66,401 requests against 50 file sets in ... two hundred minutes"
        assert len(wl.catalog) == 50
        assert abs(len(wl) - 66_401) < 300  # rounding of per-set budgets
        assert wl.duration == 12_000.0
        assert all(r.arrival < wl.duration for r in wl.requests)

    def test_utilization_calibrated(self):
        cfg = SyntheticConfig(utilization=0.6, total_capacity=25.0)
        wl = generate_synthetic(cfg, seed=0)
        assert offered_utilization(wl, 25.0) == pytest.approx(0.6, rel=0.02)

    def test_deterministic_in_seed(self):
        a = generate_synthetic(SyntheticConfig(n_filesets=5, target_requests=500), seed=9)
        b = generate_synthetic(SyntheticConfig(n_filesets=5, target_requests=500), seed=9)
        assert len(a) == len(b)
        assert all(
            ra.arrival == rb.arrival and ra.fileset == rb.fileset
            for ra, rb in zip(a.requests, b.requests)
        )

    def test_different_seeds_differ(self):
        a = generate_synthetic(SyntheticConfig(n_filesets=5, target_requests=500), seed=1)
        b = generate_synthetic(SyntheticConfig(n_filesets=5, target_requests=500), seed=2)
        assert any(ra.arrival != rb.arrival for ra, rb in zip(a.requests, b.requests))

    def test_fileset_sizes_follow_x_weights(self):
        """Request budget per file set spans roughly the X ~ U[1,10] range."""
        wl = generate_synthetic(SyntheticConfig(), seed=0)
        counts = sorted(fs.n_requests for fs in wl.catalog)
        assert counts[-1] / counts[0] > 3  # spread consistent with [1,10]

    def test_weakest_server_would_overload_uniformly(self):
        """The Figure 5 premise: uniform placement kills server 0."""
        wl = generate_synthetic(SyntheticConfig(), seed=0)
        assert weakest_server_overloaded(wl, weakest_power=1.0, uniform_share=0.2)

    def test_requests_sorted(self):
        wl = generate_synthetic(SyntheticConfig(n_filesets=5, target_requests=300), seed=0)
        arr = [r.arrival for r in wl.requests]
        assert arr == sorted(arr)

    def test_catalog_totals_match_requests(self):
        wl = generate_synthetic(SyntheticConfig(n_filesets=8, target_requests=400), seed=0)
        by_fs = {}
        for r in wl.requests:
            by_fs[r.fileset] = by_fs.get(r.fileset, 0.0) + r.work
        for fs in wl.catalog:
            assert by_fs[fs.name] == pytest.approx(fs.total_work)

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticConfig(n_filesets=0)
        with pytest.raises(ValueError):
            SyntheticConfig(n_filesets=10, target_requests=5)
        with pytest.raises(ValueError):
            SyntheticConfig(x_low=5.0, x_high=1.0)


class TestTraceGenerator:
    def test_paper_aggregates(self):
        wl = generate_trace_shaped(TraceConfig(), seed=0)
        # "21 file sets and 112,590 requests" over one hour
        assert len(wl.catalog) == 21
        assert abs(len(wl) - 112_590) < 300
        assert wl.duration == 3_600.0

    def test_zipf_skew_present(self):
        wl = generate_trace_shaped(TraceConfig(), seed=0)
        counts = sorted((fs.n_requests for fs in wl.catalog), reverse=True)
        # hot subtree dominates: top set >> median set
        assert counts[0] > 4 * counts[len(counts) // 2]

    def test_deterministic(self):
        cfg = TraceConfig(n_filesets=5, target_requests=1000)
        a = generate_trace_shaped(cfg, seed=3)
        b = generate_trace_shaped(cfg, seed=3)
        assert [r.arrival for r in a.requests[:50]] == [
            r.arrival for r in b.requests[:50]
        ]


class TestWorkloadOracle:
    def test_work_between_sums_to_total(self):
        wl = generate_synthetic(SyntheticConfig(n_filesets=6, target_requests=600), seed=0)
        full = wl.work_between(0.0, wl.duration + 1.0)
        assert sum(full.values()) == pytest.approx(wl.total_work)

    def test_work_between_window_additivity(self):
        wl = generate_synthetic(SyntheticConfig(n_filesets=6, target_requests=600), seed=0)
        mid = wl.duration / 2
        a = wl.work_between(0.0, mid)
        b = wl.work_between(mid, wl.duration + 1.0)
        for name in wl.catalog.names:
            assert a[name] + b[name] == pytest.approx(
                wl.work_between(0.0, wl.duration + 1.0)[name]
            )

    def test_work_matrix_matches_work_between(self):
        wl = generate_synthetic(SyntheticConfig(n_filesets=6, target_requests=600), seed=0)
        m = wl.work_matrix(120.0)
        w0 = wl.work_between(0.0, 120.0)
        np.testing.assert_allclose(m[0], [w0[n] for n in wl.catalog.names])

    def test_rate_per_fileset(self):
        wl = generate_synthetic(SyntheticConfig(n_filesets=4, target_requests=400), seed=0)
        rates = wl.rate_per_fileset()
        for name, rate in rates.items():
            assert rate == pytest.approx(wl.catalog.get(name).total_work / wl.duration)


class TestCalibrate:
    def test_request_work_formula(self):
        w = request_work_for_utilization(1000, 100.0, 25.0, 0.5)
        assert 1000 * w / (100.0 * 25.0) == pytest.approx(0.5)

    def test_scaling_factor(self):
        assert scaling_factor_c(total_work=550.0, sum_x=275.0) == 2.0

    @pytest.mark.parametrize(
        "args",
        [
            (0, 1.0, 1.0, 0.5),
            (10, 0.0, 1.0, 0.5),
            (10, 1.0, 1.0, 1.5),
        ],
    )
    def test_validation(self, args):
        with pytest.raises(ValueError):
            request_work_for_utilization(*args)
