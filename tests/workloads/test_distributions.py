"""Workload distribution primitives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import pareto_tail_index
from repro.workloads import (
    arrival_times_from_gaps,
    lognormal_work,
    pareto_gaps,
    zipf_weights,
)


class TestParetoGaps:
    def test_positive_and_count(self):
        rng = np.random.default_rng(0)
        gaps = pareto_gaps(rng, 1000, alpha=1.5)
        assert gaps.shape == (1000,)
        assert (gaps >= 1.0).all()  # scale xm = 1

    def test_tail_index_matches_alpha(self):
        rng = np.random.default_rng(1)
        gaps = pareto_gaps(rng, 200_000, alpha=1.5)
        est = pareto_tail_index(gaps, tail_fraction=0.01)
        assert est == pytest.approx(1.5, rel=0.15)

    def test_heavier_alpha_means_heavier_tail(self):
        rng = np.random.default_rng(2)
        heavy = pareto_gaps(np.random.default_rng(2), 50_000, alpha=1.2)
        light = pareto_gaps(np.random.default_rng(2), 50_000, alpha=2.5)
        assert heavy.max() > light.max()

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            pareto_gaps(rng, 0, 1.5)
        with pytest.raises(ValueError):
            pareto_gaps(rng, 10, 1.0)


class TestArrivalTimes:
    def test_span_and_monotone(self):
        rng = np.random.default_rng(3)
        gaps = pareto_gaps(rng, 500, 1.5)
        arrivals = arrival_times_from_gaps(gaps, duration=1000.0, span_fraction=0.95)
        assert (np.diff(arrivals) > 0).all()
        assert arrivals[-1] == pytest.approx(950.0)
        assert arrivals[0] > 0

    def test_burst_structure_preserved(self):
        """Rescaling preserves gap ratios exactly."""
        gaps = np.array([1.0, 10.0, 1.0, 1.0])
        arrivals = arrival_times_from_gaps(gaps, duration=130.0, span_fraction=1.0)
        rescaled_gaps = np.diff(np.concatenate([[0.0], arrivals]))
        ratios = rescaled_gaps / gaps
        assert np.allclose(ratios, ratios[0])

    def test_bad_span(self):
        with pytest.raises(ValueError):
            arrival_times_from_gaps(np.ones(3), 10.0, span_fraction=0.0)


class TestZipf:
    def test_normalized_and_decreasing(self):
        w = zipf_weights(20, s=1.0)
        assert w.sum() == pytest.approx(1.0)
        assert (np.diff(w) < 0).all()

    def test_s_zero_is_uniform(self):
        w = zipf_weights(10, s=0.0)
        assert np.allclose(w, 0.1)

    def test_larger_s_more_skew(self):
        flat = zipf_weights(10, 0.5)
        steep = zipf_weights(10, 2.0)
        assert steep[0] > flat[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(5, s=-1.0)


class TestLognormalWork:
    def test_mean_matches_target(self):
        rng = np.random.default_rng(4)
        works = lognormal_work(rng, 100_000, mean=2.5, sigma=0.25)
        assert works.mean() == pytest.approx(2.5, rel=0.02)
        assert (works > 0).all()

    def test_sigma_zero_is_constant(self):
        rng = np.random.default_rng(0)
        works = lognormal_work(rng, 10, mean=3.0, sigma=0.0)
        assert np.allclose(works, 3.0)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            lognormal_work(rng, 10, mean=0.0)
        with pytest.raises(ValueError):
            lognormal_work(rng, 10, mean=1.0, sigma=-0.1)
