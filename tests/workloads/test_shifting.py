"""The non-stationary (hot-spot) workload generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads import ShiftConfig, SyntheticConfig, generate_shifting


class TestShiftConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"shift_at_fraction": 0.0},
            {"shift_at_fraction": 1.0},
            {"hot_boost": 0.5},
            {"n_hot": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ShiftConfig(**kwargs)


class TestGenerate:
    @pytest.fixture(scope="class")
    def generated(self):
        cfg = ShiftConfig(
            base=SyntheticConfig(
                n_filesets=20, duration=2000.0, target_requests=4000
            ),
            n_hot=2,
            hot_boost=10.0,
        )
        return generate_shifting(cfg, seed=5), cfg

    def test_hot_sets_actually_heat_up(self, generated):
        (wl, hot), cfg = generated
        t_shift = cfg.base.duration * cfg.shift_at_fraction
        pre = wl.work_between(0.0, t_shift)
        post = wl.work_between(t_shift, wl.duration + 1)
        for name in hot:
            assert post[name] > 3 * pre[name], name

    def test_total_load_stays_calibrated(self, generated):
        (wl, _), cfg = generated
        t_shift = cfg.base.duration * cfg.shift_at_fraction
        pre_total = sum(wl.work_between(0.0, t_shift).values())
        post_total = sum(wl.work_between(t_shift, wl.duration + 1).values())
        # both phases offer comparable totals (only the mix shifts)
        assert post_total == pytest.approx(pre_total, rel=0.1)

    def test_hot_sets_were_coldest_before(self, generated):
        (wl, hot), cfg = generated
        t_shift = cfg.base.duration * cfg.shift_at_fraction
        pre = wl.work_between(0.0, t_shift)
        cold_threshold = float(np.median(list(pre.values())))
        for name in hot:
            assert pre[name] <= cold_threshold

    def test_requests_sorted_and_within_duration(self, generated):
        (wl, _), _ = generated
        arr = [r.arrival for r in wl.requests]
        assert arr == sorted(arr)
        assert arr[-1] < wl.duration

    def test_deterministic(self):
        cfg = ShiftConfig(
            base=SyntheticConfig(n_filesets=10, duration=1000.0, target_requests=1000)
        )
        (a, hot_a) = generate_shifting(cfg, seed=3)
        (b, hot_b) = generate_shifting(cfg, seed=3)
        assert hot_a == hot_b
        assert [r.arrival for r in a.requests[:100]] == [
            r.arrival for r in b.requests[:100]
        ]

    def test_catalog_covers_both_phases(self, generated):
        (wl, _), _ = generated
        by_fs = {}
        for r in wl.requests:
            by_fs[r.fileset] = by_fs.get(r.fileset, 0.0) + r.work
        for fs in wl.catalog:
            assert by_fs.get(fs.name, 0.0) == pytest.approx(fs.total_work)
